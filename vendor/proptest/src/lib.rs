//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest's API its test suites use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`], the [`strategy::Strategy`]
//! trait with `prop_map`, integer-range and tuple strategies, and
//! [`collection::vec`] / [`collection::hash_set`].
//!
//! Semantics: each property runs for a fixed number of deterministic
//! random cases (default 64, seeded per test name), with **no shrinking**
//! — a failing case panics with the generated values left to the assert
//! message. That trades minimal counterexamples for zero dependencies.

pub mod test_runner {
    //! Run configuration and the deterministic case generator.

    /// Number of cases to run per property.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator driving value production (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream determined by the test name and case number.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            (self.next_u64() as u128) % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Produces one value from the generator stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u128 - self.start as u128;
                    (self.start as u128 + rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = *self.end() as u128 - *self.start() as u128 + 1;
                    (*self.start() as u128 + rng.below(span)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with up to a `size`-drawn number of draws
    /// (duplicates collapse, as in proptest).
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `HashSet<S::Value>`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let draws = self.size.clone().generate(rng);
            (0..draws).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $crate::__proptest_bind! { rng, $($args)* }
                // Bodies may `return Ok(())` early, as in real proptest;
                // the closure gives that `return` its scope.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed: {message}", stringify!($name));
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strategy:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_vecs(items in crate::collection::vec((0u8..5, 10u64..20), 1..9)) {
            prop_assert!(!items.is_empty() && items.len() < 9);
            for (a, b) in items {
                prop_assert!(a < 5);
                prop_assert!((10..20).contains(&b));
            }
        }

        #[test]
        fn mapped_strategies(v in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v <= 8);
        }

        #[test]
        fn hash_sets_respect_element_range(s in crate::collection::hash_set(0usize..10, 0..30)) {
            prop_assert!(s.len() <= 10);
            for v in s {
                prop_assert!(v < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honoured(_x in 0u8..255) {
            // Five cases, no assertion needed beyond not panicking.
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
