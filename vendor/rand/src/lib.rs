//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the `rand` API it actually uses: a seedable
//! [`rngs::StdRng`], integer [`RngExt::random_range`], and slice
//! [`IndexedRandom::choose`]. Streams are deterministic per seed, which is
//! all the workspace's generators require (reproducible schemes and
//! placements), but the exact streams differ from upstream `rand`.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, the `Rng`/`RngExt` surface the workspace uses.
pub trait RngExt: RngCore + Sized {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<G: RngCore + Sized> RngExt for G {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Integer types supported by [`SampleRange`].
pub trait UniformInt: Copy {
    /// Widens to `u128` for span arithmetic.
    fn to_u128(self) -> u128;
    /// Narrows from `u128`; the value is guaranteed in range.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(lo < hi, "cannot sample from an empty range");
        let span = hi - lo;
        // Modulo bias is negligible for the small spans used here.
        T::from_u128(lo + (rng.next_u64() as u128) % span)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi - lo + 1;
        T::from_u128(lo + (rng.next_u64() as u128) % span)
    }
}

/// Uniform selection from slices.
pub trait IndexedRandom {
    /// Element type of the collection.
    type Item;
    /// Uniformly chooses one element, or `None` if empty.
    fn choose<G: RngCore>(&self, rng: &mut G) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;
    fn choose<G: RngCore>(&self, rng: &mut G) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (the construction recommended by its authors).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{IndexedRandom, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: u64 = rng.random_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn range_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn choose_none_on_empty_some_on_filled() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: &[u8] = &[];
        assert!(empty.choose(&mut rng).is_none());
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(items.as_slice().choose(&mut rng).unwrap()));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.random_range(5..5);
    }
}
