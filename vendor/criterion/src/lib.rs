//! Vendored, dependency-free stand-in for the `criterion` bench harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group` / `bench_with_input` / `bench_function`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple but honest wall-clock timing: each bench warms
//! up, calibrates an iteration count to a fixed sample duration, then
//! reports the median over `sample_size` samples. Good enough to compare
//! implementations on the same machine; not a statistics suite.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(120);
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
const DEFAULT_SAMPLE_SIZE: usize = 24;

/// Top-level bench context; one per `criterion_group!`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's CLI filtering loosely: the first free argument
        // restricts which bench ids run (cargo bench passes `--bench`).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benches a closure under a bare id (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, DEFAULT_SAMPLE_SIZE, self.filter.as_deref(), f);
        self
    }
}

/// A group of benches sharing a name prefix and sampling config.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per bench (criterion compat; min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benches `f` with a borrowed input, labelled `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(
            &full,
            self.sample_size,
            self.criterion.filter.as_deref(),
            |b| f(b, input),
        );
        self
    }

    /// Benches a closure labelled `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(&full, self.sample_size, self.criterion.filter.as_deref(), f);
        self
    }

    /// Ends the group (criterion compat; drop does the work).
    pub fn finish(self) {}
}

/// A bench identifier, `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    sample_size: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Measures `f`: warm-up, calibration, then the median per-iteration
    /// time over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, which also calibrates iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((SAMPLE_TARGET.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, filter: Option<&str>, mut f: F) {
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let mut bencher = Bencher {
        sample_size,
        median: None,
    };
    f(&mut bencher);
    match bencher.median {
        Some(m) => println!("{id:<48} time: [{}]", format_duration(m)),
        None => println!("{id:<48} (no measurement: closure never called iter)"),
    }
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("solve", 64).id, "solve/64");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn format_duration_picks_unit() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with('s'));
    }
}
