//! Trace-driven replay equivalence for the sharded fluid backend: a
//! battery of parsed `netbw-trace` text traces runs end-to-end through
//! the simulator (placement, MPI send/recv/any-source/barrier semantics,
//! eager and rendezvous messages) against the default heap engine and the
//! component-sharded engine. The reports must be bit-for-bit identical —
//! same task finish times, same per-message windows — and the sharded
//! backend must surface its cache and timeline counters aggregated across
//! shards through the [`NetworkBackend`] trait.

use netbw_core::{GigabitEthernetModel, MyrinetModel, PenaltyModel};
use netbw_fluid::{FluidNetwork, NetworkParams};
use netbw_graph::NodeId;
use netbw_sim::{ClusterSpec, NetworkBackend, Placement, PlacementPolicy, SimReport, Simulator};
use netbw_trace::parse_trace;

/// Four disjoint task pairs exchange (four conflict components under RRN
/// placement), then — after a barrier — pair 0 bridges into pair 1: the
/// sharded backend merges those two shards mid-run.
const PAIRS_THEN_BRIDGE: &str = "\
tasks 8
t0 send 1 2097152
t1 recv 0 2097152
t2 send 3 1048576
t3 recv 2 1048576
t4 send 5 1572864
t5 recv 4 1572864
t6 send 7 524288
t7 recv 6 524288
t0 barrier
t1 barrier
t2 barrier
t3 barrier
t4 barrier
t5 barrier
t6 barrier
t7 barrier
t1 send 2 1048576
t2 recv 1 1048576
";

/// A compute-staggered ring with any-source receives: one conflict
/// component whose population churns as sends drain at different times.
/// Even ranks send before receiving, odd ranks receive first — the usual
/// alternation that keeps a rendezvous ring deadlock-free.
const STAGGERED_RING: &str = "\
tasks 6
t0 compute 0.05
t0 send 1 1048576
t0 recv any 262144
t1 compute 0.1
t1 recv 0 1048576
t1 send 2 786432
t2 compute 0.15
t2 send 3 1048576
t2 recv any 786432
t3 compute 0.2
t3 recv 2 1048576
t3 send 4 262144
t4 compute 0.25
t4 send 5 1048576
t4 recv any 262144
t5 compute 0.3
t5 recv 4 1048576
t5 send 0 262144
";

/// A fan-in (everyone sends to rank 0) with small eager-sized messages
/// riding beside large rendezvous ones, closed by a barrier.
const FAN_IN: &str = "\
tasks 5
t1 compute 0.02
t1 send 0 4096
t2 compute 0.04
t2 send 0 2097152
t3 compute 0.06
t3 send 0 4096
t4 compute 0.08
t4 send 0 1048576
t0 recv any 4096
t0 recv any 2097152
t0 recv any 4096
t0 recv any 1048576
t0 barrier
t1 barrier
t2 barrier
t3 barrier
t4 barrier
";

fn battery() -> Vec<(&'static str, &'static str)> {
    vec![
        ("pairs_then_bridge", PAIRS_THEN_BRIDGE),
        ("staggered_ring", STAGGERED_RING),
        ("fan_in", FAN_IN),
    ]
}

fn replay<M: PenaltyModel>(
    trace_text: &str,
    cluster: ClusterSpec,
    policy: &PlacementPolicy,
    backend: FluidNetwork<M>,
) -> SimReport {
    let trace = parse_trace(trace_text).expect("battery traces parse");
    let placement = Placement::assign(policy, trace.len(), &cluster);
    Simulator::new(&trace, cluster, placement, backend)
        .run()
        .expect("battery traces replay")
}

fn assert_reports_bitwise_equal(heap: &SimReport, sharded: &SimReport, label: &str) {
    assert_eq!(heap.tasks.len(), sharded.tasks.len(), "{label}");
    for (i, (a, b)) in heap.tasks.iter().zip(&sharded.tasks).enumerate() {
        assert_eq!(
            a.finish.to_bits(),
            b.finish.to_bits(),
            "{label}: task {i} finish {} vs {}",
            a.finish,
            b.finish
        );
        assert_eq!(a.send_time.to_bits(), b.send_time.to_bits(), "{label}: {i}");
        assert_eq!(a.recv_time.to_bits(), b.recv_time.to_bits(), "{label}: {i}");
        assert_eq!(
            a.barrier_time.to_bits(),
            b.barrier_time.to_bits(),
            "{label}: {i}"
        );
        assert_eq!(a.bytes_sent, b.bytes_sent, "{label}: task {i}");
    }
    assert_eq!(heap.messages.len(), sharded.messages.len(), "{label}");
    for (a, b) in heap.messages.iter().zip(&sharded.messages) {
        assert_eq!(
            (a.src_task, a.dst_task, a.bytes, a.intra_node, a.eager),
            (b.src_task, b.dst_task, b.bytes, b.intra_node, b.eager),
            "{label}"
        );
        assert_eq!(a.start.to_bits(), b.start.to_bits(), "{label}: {a:?}");
        assert_eq!(a.end.to_bits(), b.end.to_bits(), "{label}: {a:?}");
    }
}

#[test]
fn parsed_trace_battery_replays_bitwise_on_the_sharded_backend() {
    let params = NetworkParams::new(2.0, 0.25);
    for (label, text) in battery() {
        let cluster = ClusterSpec::smp(8);
        let policy = PlacementPolicy::RoundRobinNode;
        let heap = replay(
            text,
            cluster,
            &policy,
            FluidNetwork::new(MyrinetModel::default(), params),
        );
        let sharded = replay(
            text,
            cluster,
            &policy,
            FluidNetwork::new(MyrinetModel::default(), params).with_sharded(),
        );
        assert!(heap.makespan() > 0.0, "{label}: trace must do work");
        assert_reports_bitwise_equal(&heap, &sharded, label);

        let heap = replay(
            text,
            cluster,
            &policy,
            FluidNetwork::new(GigabitEthernetModel::default(), params),
        );
        let sharded = replay(
            text,
            cluster,
            &policy,
            FluidNetwork::new(GigabitEthernetModel::default(), params).with_sharded(),
        );
        assert_reports_bitwise_equal(&heap, &sharded, label);
    }
}

#[test]
fn explicit_placement_with_intra_node_pairs_replays_bitwise() {
    // Pairs 0-1 and 2-3 share a node each (intra-node messages bypass the
    // network entirely), pairs 4-5 and 6-7 cross the fabric, and the
    // post-barrier bridge crosses nodes: the sharded backend only ever
    // sees the inter-node flows and must still agree with the heap.
    let params = NetworkParams::new(1.0, 0.1);
    let cluster = ClusterSpec::smp(6).with_cores(2);
    let nodes: Vec<NodeId> = [0u32, 0, 1, 1, 2, 3, 4, 5].map(NodeId).to_vec();
    let policy = PlacementPolicy::Explicit(nodes);
    let heap = replay(
        PAIRS_THEN_BRIDGE,
        cluster,
        &policy,
        FluidNetwork::new(MyrinetModel::default(), params),
    );
    let sharded = replay(
        PAIRS_THEN_BRIDGE,
        cluster,
        &policy,
        FluidNetwork::new(MyrinetModel::default(), params).with_sharded(),
    );
    assert!(
        heap.messages.iter().any(|m| m.intra_node),
        "placement must exercise intra-node messages"
    );
    assert!(
        heap.messages.iter().any(|m| !m.intra_node),
        "placement must exercise the fabric too"
    );
    assert_reports_bitwise_equal(&heap, &sharded, "explicit placement");
}

#[test]
fn sharded_backend_aggregates_stats_across_shards() {
    // Replay the multi-component trace with the simulator holding the
    // backend by `&mut`, then read the counters off the network itself:
    // the per-shard caches and timelines must aggregate into the trait's
    // stats (rebuild per shard, every flow anchored in some shard's heap)
    // even though the fully drained slab has quiesced the partition —
    // retired shards leave their counters behind.
    let trace = parse_trace(PAIRS_THEN_BRIDGE).expect("trace parses");
    let cluster = ClusterSpec::smp(8);
    let placement = Placement::assign(&PlacementPolicy::RoundRobinNode, trace.len(), &cluster);
    let mut net =
        FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(2.0, 0.25)).with_sharded();
    let report = Simulator::new(&trace, cluster, placement, &mut net)
        .run()
        .expect("trace replays");
    let inter_node = report.messages.iter().filter(|m| !m.intra_node).count();
    assert_eq!(inter_node, 5, "four pair flows plus the bridge");
    assert_eq!(
        net.shard_count(),
        0,
        "a fully drained replay quiesces the partition"
    );
    let cache = NetworkBackend::cache_stats(&&mut net).expect("fluid backends expose cache stats");
    assert!(
        cache.scratch_rebuilds >= 4,
        "each shard rebuilds its scratch once: {cache:?}"
    );
    assert!(cache.model_queries > 0, "{cache:?}");
    let timeline =
        NetworkBackend::timeline_stats(&&mut net).expect("fluid backends expose timeline stats");
    assert!(
        timeline.heap_pushes >= inter_node as u64,
        "every fabric flow anchors in some shard's heap: {timeline:?}"
    );
    assert!(timeline.rescans >= 4, "one rescan per shard: {timeline:?}");
}
