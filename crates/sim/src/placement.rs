//! Task-to-node scheduling policies (§VI.D).

use crate::cluster::ClusterSpec;
use netbw_graph::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How MPI tasks are assigned to cluster nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum PlacementPolicy {
    /// RRN — Round-Robin per Node: "MPI tasks are assigned cyclically
    /// between each nodes" (task `i` → node `i mod nodes`).
    RoundRobinNode,
    /// RRP — Round-Robin per Processor: "MPI tasks are assigned filling
    /// first the nodes" (task `i` → node `i / cores`).
    RoundRobinProcessor,
    /// Random: a seeded random assignment of tasks to free core slots.
    Random(u64),
    /// Explicit node per task.
    Explicit(Vec<NodeId>),
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementPolicy::RoundRobinNode => f.write_str("RRN"),
            PlacementPolicy::RoundRobinProcessor => f.write_str("RRP"),
            PlacementPolicy::Random(seed) => write!(f, "Random({seed})"),
            PlacementPolicy::Explicit(_) => f.write_str("Explicit"),
        }
    }
}

/// A concrete task → node mapping.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    task_to_node: Vec<NodeId>,
}

impl Placement {
    /// Assigns `tasks` tasks onto `cluster` using `policy`.
    ///
    /// # Panics
    /// If the cluster has insufficient capacity, or an explicit placement
    /// has the wrong length / exceeds a node's core count.
    pub fn assign(policy: &PlacementPolicy, tasks: usize, cluster: &ClusterSpec) -> Placement {
        cluster.validate();
        assert!(
            tasks <= cluster.capacity(),
            "{tasks} tasks exceed cluster capacity {}",
            cluster.capacity()
        );
        let map: Vec<NodeId> = match policy {
            PlacementPolicy::RoundRobinNode => (0..tasks)
                .map(|i| NodeId((i % cluster.nodes) as u32))
                .collect(),
            PlacementPolicy::RoundRobinProcessor => (0..tasks)
                .map(|i| NodeId((i / cluster.cores_per_node) as u32))
                .collect(),
            PlacementPolicy::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(*seed);
                // shuffle all (node, core) slots, take the first `tasks`
                let mut slots: Vec<u32> = (0..cluster.capacity())
                    .map(|s| (s / cluster.cores_per_node) as u32)
                    .collect();
                for i in (1..slots.len()).rev() {
                    let j = rng.random_range(0..=i);
                    slots.swap(i, j);
                }
                slots.truncate(tasks);
                slots.into_iter().map(NodeId).collect()
            }
            PlacementPolicy::Explicit(map) => {
                assert_eq!(map.len(), tasks, "explicit placement length mismatch");
                map.clone()
            }
        };
        // capacity check per node
        let mut load = vec![0usize; cluster.nodes];
        for n in &map {
            assert!(
                n.idx() < cluster.nodes,
                "placement references node {n} out of range"
            );
            load[n.idx()] += 1;
            assert!(
                load[n.idx()] <= cluster.cores_per_node,
                "node {n} oversubscribed by placement"
            );
        }
        Placement { task_to_node: map }
    }

    /// The node hosting task `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.task_to_node[rank]
    }

    /// Number of placed tasks.
    pub fn len(&self) -> usize {
        self.task_to_node.len()
    }

    /// True when no task is placed.
    pub fn is_empty(&self) -> bool {
        self.task_to_node.is_empty()
    }

    /// The full mapping.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.task_to_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrn_cycles_nodes() {
        let c = ClusterSpec::smp(4);
        let p = Placement::assign(&PlacementPolicy::RoundRobinNode, 8, &c);
        assert_eq!(
            p.as_slice().iter().map(|n| n.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 0, 1, 2, 3]
        );
    }

    #[test]
    fn rrp_fills_nodes_first() {
        let c = ClusterSpec::smp(4);
        let p = Placement::assign(&PlacementPolicy::RoundRobinProcessor, 8, &c);
        assert_eq!(
            p.as_slice().iter().map(|n| n.0).collect::<Vec<_>>(),
            vec![0, 0, 1, 1, 2, 2, 3, 3]
        );
    }

    #[test]
    fn random_is_reproducible_and_capacity_safe() {
        let c = ClusterSpec::smp(4);
        let a = Placement::assign(&PlacementPolicy::Random(1), 8, &c);
        let b = Placement::assign(&PlacementPolicy::Random(1), 8, &c);
        assert_eq!(a, b);
        let other = Placement::assign(&PlacementPolicy::Random(2), 8, &c);
        assert_ne!(a, other);
        // all 8 slots used, 2 per node
        let mut load = [0usize; 4];
        for n in a.as_slice() {
            load[n.idx()] += 1;
        }
        assert_eq!(load, [2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "exceed cluster capacity")]
    fn rejects_overflow() {
        Placement::assign(&PlacementPolicy::RoundRobinNode, 9, &ClusterSpec::smp(4));
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn rejects_oversubscribed_explicit() {
        let c = ClusterSpec::smp(2);
        Placement::assign(
            &PlacementPolicy::Explicit(vec![NodeId(0), NodeId(0), NodeId(0)]),
            3,
            &c,
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(PlacementPolicy::RoundRobinNode.to_string(), "RRN");
        assert_eq!(PlacementPolicy::RoundRobinProcessor.to_string(), "RRP");
        assert_eq!(PlacementPolicy::Random(3).to_string(), "Random(3)");
    }
}
