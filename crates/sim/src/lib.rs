//! Trace-driven cluster simulator (the paper's §VI.A simulator).
//!
//! Inputs:
//!
//! * one or more applications as event traces (`netbw-trace`): compute and
//!   communication events per MPI task;
//! * a cluster definition ([`ClusterSpec`]): node count, cores per node,
//!   base network parameters;
//! * a task-to-node scheduling policy ([`PlacementPolicy`]): Round-Robin
//!   per Node (RRN), Round-Robin per Processor (RRP), Random, or explicit;
//! * a network backend: either a predictive penalty model over the fluid
//!   solver (**predicted** times) or a packet-level fabric (**measured**
//!   times) — the same engine replays the trace against both, which is how
//!   Figs. 8 and 9 compare `Sp` against `Sm` per task.
//!
//! The engine replays MPI semantics: blocking sends (rendezvous above the
//! eager threshold), source-specific or `MPI_ANY_SOURCE` receives matched
//! in posted order, and barriers. Intra-node messages use the node's
//! memory bandwidth and never touch the NIC.

pub mod backend;
pub mod cluster;
pub mod engine;
pub mod placement;
pub mod report;

pub use backend::NetworkBackend;
pub use cluster::ClusterSpec;
pub use engine::{SimError, Simulator};
pub use placement::{Placement, PlacementPolicy};
pub use report::{MessageRecord, SimReport, TaskReport};
