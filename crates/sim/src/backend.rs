//! The network abstraction the engine replays traces against.
//!
//! Two implementations ship with the workspace:
//!
//! * [`netbw_fluid::FluidNetwork`] over a penalty model — the **predicted**
//!   side of the paper's evaluation;
//! * [`netbw_packet::PacketNetwork`] — the simulated hardware, the
//!   **measured** side.

use netbw_graph::Communication;

/// An inter-node transfer service: transfers are keyed, started at given
/// times, and complete asynchronously.
pub trait NetworkBackend {
    /// Starts transfer `key` at absolute time `start`.
    fn add(&mut self, key: u64, comm: Communication, start: f64);
    /// The next instant at which the backend's state changes, if any.
    fn next_event_time(&self) -> Option<f64>;
    /// Advances to `t`, returning `(key, completion_time)` for transfers
    /// completing in `(previous, t]`.
    fn advance_to(&mut self, t: f64) -> Vec<(u64, f64)>;
}

impl<M: netbw_core::PenaltyModel> NetworkBackend for netbw_fluid::FluidNetwork<M> {
    fn add(&mut self, key: u64, comm: Communication, start: f64) {
        netbw_fluid::FluidNetwork::add(self, key, comm, start);
    }

    fn next_event_time(&self) -> Option<f64> {
        netbw_fluid::FluidNetwork::next_event_time(self)
    }

    fn advance_to(&mut self, t: f64) -> Vec<(u64, f64)> {
        netbw_fluid::FluidNetwork::advance_to(self, t)
            .into_iter()
            .map(|c| (c.key, c.completion))
            .collect()
    }
}

impl NetworkBackend for netbw_packet::PacketNetwork {
    fn add(&mut self, key: u64, comm: Communication, start: f64) {
        netbw_packet::PacketNetwork::add(self, key, comm, start);
    }

    fn next_event_time(&self) -> Option<f64> {
        netbw_packet::PacketNetwork::next_event_time(self)
    }

    fn advance_to(&mut self, t: f64) -> Vec<(u64, f64)> {
        netbw_packet::PacketNetwork::advance_to(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::baseline::LinearModel;
    use netbw_fluid::{FluidNetwork, NetworkParams};
    use netbw_packet::{FabricConfig, PacketNetwork};

    #[test]
    fn fluid_backend_round_trips() {
        let mut b: Box<dyn NetworkBackend> =
            Box::new(FluidNetwork::new(LinearModel, NetworkParams::unit()));
        b.add(7, Communication::new(0u32, 1u32, 100), 0.0);
        assert!(b.next_event_time().is_some());
        let done = b.advance_to(200.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        assert!((done[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn packet_backend_round_trips() {
        let mut b: Box<dyn NetworkBackend> =
            Box::new(PacketNetwork::new(FabricConfig::gige(), 2));
        b.add(3, Communication::new(0u32, 1u32, 1_000_000), 0.0);
        let mut done = Vec::new();
        while let Some(t) = b.next_event_time() {
            done.extend(b.advance_to(t));
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 3);
        assert!(done[0].1 > 0.0);
    }
}
