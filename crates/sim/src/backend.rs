//! The network abstraction the engine replays traces against.
//!
//! Two implementations ship with the workspace:
//!
//! * [`netbw_fluid::FluidNetwork`] over a penalty model — the **predicted**
//!   side of the paper's evaluation;
//! * [`netbw_packet::PacketNetwork`] — the simulated hardware, the
//!   **measured** side.

use netbw_fluid::{CacheStats, ShardStats, TimelineStats};
use netbw_graph::Communication;

/// An inter-node transfer service: transfers are keyed, started at given
/// times, and complete asynchronously.
///
/// The engine probes [`NetworkBackend::next_event_time`] on every
/// scheduling step, so implementations should make repeated probes cheap
/// — the fluid backend serves them from its [`CacheStats`]-instrumented
/// penalty cache. Each population change is forwarded to the model as a
/// positional delta (simultaneous arrival+departure batches included, as
/// chained mixed deltas), and the cache owns the model's per-cache
/// scratch state: [`CacheStats::delta_queries`] counts the settles that
/// *offered* the model a delta, [`CacheStats::patched_queries`] the
/// settles the model actually answered with an O(affected) patch, and
/// [`CacheStats::scratch_rebuilds`] / [`CacheStats::budget_fallbacks`]
/// expose scratch rebuilds and Myrinet's Moon–Moser budget refusals.
pub trait NetworkBackend {
    /// Starts transfer `key` at absolute time `start`.
    fn add(&mut self, key: u64, comm: Communication, start: f64);
    /// The next instant at which the backend's state changes, if any.
    fn next_event_time(&self) -> Option<f64>;
    /// Advances to `t`, returning `(key, completion_time)` for transfers
    /// completing in `(previous, t]`.
    fn advance_to(&mut self, t: f64) -> Vec<(u64, f64)>;
    /// Penalty-cache counters, for backends driven by a predictive model
    /// (`None` for measured/packet backends, which have no model to query).
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
    /// Event-timeline counters (completion-heap pushes, stale entries
    /// discarded on pop, gate-heap traffic, full-population rescans), for
    /// backends with an event-driven timeline (`None` for packet backends,
    /// which walk their own per-packet event queue).
    fn timeline_stats(&self) -> Option<TimelineStats> {
        None
    }
    /// Partition-shape counters (live shard count, splits, merges, budget
    /// collapses/un-collapses), for backends that shard their population
    /// by conflict component (`None` otherwise).
    fn shard_stats(&self) -> Option<ShardStats> {
        None
    }
}

/// Mutable references forward, so a caller can keep the backend (and its
/// counters) after handing it to a `Simulator` by `&mut`.
impl<B: NetworkBackend + ?Sized> NetworkBackend for &mut B {
    fn add(&mut self, key: u64, comm: Communication, start: f64) {
        (**self).add(key, comm, start);
    }

    fn next_event_time(&self) -> Option<f64> {
        (**self).next_event_time()
    }

    fn advance_to(&mut self, t: f64) -> Vec<(u64, f64)> {
        (**self).advance_to(t)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        (**self).cache_stats()
    }

    fn timeline_stats(&self) -> Option<TimelineStats> {
        (**self).timeline_stats()
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        (**self).shard_stats()
    }
}

impl<M: netbw_core::PenaltyModel> NetworkBackend for netbw_fluid::FluidNetwork<M> {
    fn add(&mut self, key: u64, comm: Communication, start: f64) {
        netbw_fluid::FluidNetwork::add(self, key, comm, start);
    }

    fn next_event_time(&self) -> Option<f64> {
        netbw_fluid::FluidNetwork::next_event_time(self)
    }

    fn advance_to(&mut self, t: f64) -> Vec<(u64, f64)> {
        netbw_fluid::FluidNetwork::advance_to(self, t)
            .into_iter()
            .map(|c| (c.key, c.completion))
            .collect()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(netbw_fluid::FluidNetwork::cache_stats(self))
    }

    fn timeline_stats(&self) -> Option<TimelineStats> {
        Some(netbw_fluid::FluidNetwork::timeline_stats(self))
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        Some(netbw_fluid::FluidNetwork::shard_stats(self))
    }
}

impl NetworkBackend for netbw_packet::PacketNetwork {
    fn add(&mut self, key: u64, comm: Communication, start: f64) {
        netbw_packet::PacketNetwork::add(self, key, comm, start);
    }

    fn next_event_time(&self) -> Option<f64> {
        netbw_packet::PacketNetwork::next_event_time(self)
    }

    fn advance_to(&mut self, t: f64) -> Vec<(u64, f64)> {
        netbw_packet::PacketNetwork::advance_to(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::baseline::LinearModel;
    use netbw_fluid::{FluidNetwork, NetworkParams};
    use netbw_packet::{FabricConfig, PacketNetwork};

    #[test]
    fn fluid_backend_round_trips() {
        let mut b: Box<dyn NetworkBackend> =
            Box::new(FluidNetwork::new(LinearModel, NetworkParams::unit()));
        b.add(7, Communication::new(0u32, 1u32, 100), 0.0);
        assert!(b.next_event_time().is_some());
        let done = b.advance_to(200.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        assert!((done[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fluid_backend_serves_repeated_probes_from_cache() {
        let mut b: Box<dyn NetworkBackend> =
            Box::new(FluidNetwork::new(LinearModel, NetworkParams::unit()));
        b.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        let first = b.next_event_time();
        let queries_after_first = b.cache_stats().expect("fluid exposes stats").model_queries;
        for _ in 0..10 {
            assert_eq!(b.next_event_time(), first);
        }
        let stats = b.cache_stats().unwrap();
        assert_eq!(
            stats.model_queries, queries_after_first,
            "probes must not re-query the model: {stats:?}"
        );
        assert!(stats.reuses >= 10);
    }

    #[test]
    fn fluid_backend_surfaces_patch_observability() {
        // The scratch-era counters (patches performed, scratch rebuilds,
        // budget fallbacks) must be visible through the backend trait:
        // three staggered arrivals = first settle rebuilds the scratch,
        // later settles patch.
        use netbw_core::MyrinetModel;
        let mut b: Box<dyn NetworkBackend> = Box::new(FluidNetwork::new(
            MyrinetModel::default(),
            NetworkParams::unit(),
        ));
        for k in 0..3u64 {
            b.add(k, Communication::new(0u32, 1 + k as u32, 100), k as f64);
        }
        while let Some(t) = b.next_event_time() {
            b.advance_to(t);
        }
        let stats = b.cache_stats().expect("fluid exposes stats");
        assert_eq!(stats.scratch_rebuilds, 1, "{stats:?}");
        assert!(stats.patched_queries > 0, "{stats:?}");
        assert_eq!(stats.patched_queries, stats.delta_queries, "{stats:?}");
        assert_eq!(stats.budget_fallbacks, 0, "{stats:?}");
    }

    #[test]
    fn sharded_fluid_backend_aggregates_stats_through_the_trait() {
        // The component-sharded engine keeps one cache and one timeline
        // per shard; the backend trait must hand back the aggregate, so
        // the simulator's reporting is oblivious to the partition.
        use netbw_core::MyrinetModel;
        let mut b: Box<dyn NetworkBackend> = Box::new(
            FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit()).with_sharded(),
        );
        b.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        b.add(1, Communication::new(2u32, 3u32, 150), 0.0); // disjoint component
        while let Some(t) = b.next_event_time() {
            b.advance_to(t);
        }
        let cache = b.cache_stats().expect("sharded fluid exposes cache stats");
        assert_eq!(
            cache.scratch_rebuilds, 2,
            "one scratch rebuild per shard: {cache:?}"
        );
        let tl = b
            .timeline_stats()
            .expect("sharded fluid exposes timeline stats");
        assert!(tl.heap_pushes >= 2, "{tl:?}");
        assert_eq!(tl.rescans, 2, "one first-settle rescan per shard: {tl:?}");
        let shape = b.shard_stats().expect("sharded fluid exposes shard stats");
        assert_eq!(shape.merges, 0, "components stay disjoint: {shape:?}");
        assert_eq!(shape.splits, 0, "{shape:?}");
        assert!(!shape.collapsed, "{shape:?}");
    }

    #[test]
    fn unsharded_fluid_backend_reports_trivial_partition() {
        // A fused (unsharded) fluid backend still answers `shard_stats`,
        // with the trivial single-cell shape, so reporting code can tell
        // "no partition machinery" (packet) apart from "one cell" (fused).
        let mut b: Box<dyn NetworkBackend> =
            Box::new(FluidNetwork::new(LinearModel, NetworkParams::unit()));
        b.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        let shape = b.shard_stats().expect("fluid exposes shard stats");
        assert_eq!(shape.splits, 0, "{shape:?}");
    }

    #[test]
    fn packet_backend_has_no_model_stats() {
        let b: Box<dyn NetworkBackend> = Box::new(PacketNetwork::new(FabricConfig::gige(), 2));
        assert!(b.cache_stats().is_none());
        assert!(b.timeline_stats().is_none());
        assert!(b.shard_stats().is_none());
    }

    #[test]
    fn fluid_backend_surfaces_timeline_stats() {
        use netbw_core::MyrinetModel;
        let mut b: Box<dyn NetworkBackend> = Box::new(FluidNetwork::new(
            MyrinetModel::default(),
            NetworkParams::new(1.0, 0.5),
        ));
        for k in 0..3u64 {
            b.add(k, Communication::new(0u32, 1 + k as u32, 100), k as f64);
        }
        while let Some(t) = b.next_event_time() {
            b.advance_to(t);
        }
        let stats = b.timeline_stats().expect("fluid exposes timeline stats");
        assert!(stats.heap_pushes >= 3, "{stats:?}");
        assert!(stats.lazy_pops <= stats.heap_pushes, "{stats:?}");
        assert_eq!(
            stats.gate_pushes, 3,
            "all gates are in the future: {stats:?}"
        );
        assert_eq!(stats.gate_heap_hits, 3, "{stats:?}");
        assert_eq!(stats.rescans, 1, "only the first settle rescans: {stats:?}");
    }

    #[test]
    fn packet_backend_round_trips() {
        let mut b: Box<dyn NetworkBackend> = Box::new(PacketNetwork::new(FabricConfig::gige(), 2));
        b.add(3, Communication::new(0u32, 1u32, 1_000_000), 0.0);
        let mut done = Vec::new();
        while let Some(t) = b.next_event_time() {
            done.extend(b.advance_to(t));
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 3);
        assert!(done[0].1 > 0.0);
    }
}
