//! Cluster definition.

/// A homogeneous cluster of SMP nodes (the paper's three test clusters are
/// all 2-processor nodes; §VII mentions 8- and 16-core extensions, which
/// [`ClusterSpec::cores_per_node`] covers).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores (task slots) per node.
    pub cores_per_node: usize,
    /// Intra-node (shared-memory) transfer bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Messages at or below this size use the eager protocol: the sender
    /// does not wait for the receiver; larger messages rendezvous.
    pub eager_threshold: u64,
}

impl ClusterSpec {
    /// A cluster like the paper's: `nodes` 2-core nodes, 1.5 GB/s memory
    /// copies, 64 KiB eager threshold (MPICH default era).
    pub fn smp(nodes: usize) -> Self {
        ClusterSpec {
            nodes,
            cores_per_node: 2,
            mem_bandwidth: 1.5e9,
            eager_threshold: 64 * 1024,
        }
    }

    /// Total task capacity.
    pub fn capacity(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Validates the specification.
    ///
    /// # Panics
    /// On degenerate values.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "need at least one node");
        assert!(self.cores_per_node >= 1, "need at least one core per node");
        assert!(
            self.mem_bandwidth > 0.0,
            "memory bandwidth must be positive"
        );
    }

    /// With a different core count (the §VII extension studies).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores_per_node = cores;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_validation() {
        let c = ClusterSpec::smp(8);
        c.validate();
        assert_eq!(c.capacity(), 16);
        assert_eq!(c.with_cores(8).capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_zero_nodes() {
        ClusterSpec {
            nodes: 0,
            ..ClusterSpec::smp(1)
        }
        .validate();
    }
}
