//! Simulation results.

/// One message's lifecycle as replayed by the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageRecord {
    /// Sending rank.
    pub src_task: usize,
    /// Receiving rank.
    pub dst_task: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// When the sender posted `MPI_Send`.
    pub post_send: f64,
    /// When the receiver posted the matching receive.
    pub post_recv: f64,
    /// When payload transfer began (rendezvous: the later of the posts;
    /// eager: the send post).
    pub start: f64,
    /// When the payload was fully delivered.
    pub end: f64,
    /// True when both endpoints shared a node (no NIC involved).
    pub intra_node: bool,
    /// True when the eager protocol applied.
    pub eager: bool,
}

impl MessageRecord {
    /// The communication time as seen at the source — the paper's `T` for
    /// a task's communication (blocking `MPI_Send` duration; eager sends
    /// count their local copy time).
    pub fn send_duration(&self) -> f64 {
        if self.eager {
            // the sender only paid the local copy; it did not block
            0.0f64.max(self.start - self.post_send)
        } else {
            self.end - self.post_send
        }
    }
}

/// Per-task accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TaskReport {
    /// Task completion time (when its trace ran out).
    pub finish: f64,
    /// Total declared compute time executed.
    pub compute_time: f64,
    /// Total time blocked in `MPI_Send` (plus eager copy costs).
    pub send_time: f64,
    /// Total time blocked in receives.
    pub recv_time: f64,
    /// Total time waiting at barriers.
    pub barrier_time: f64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
}

impl TaskReport {
    /// Total communication time attributed to this task (sends + receives),
    /// the quantity summed into the paper's `Sm`/`Sp`.
    pub fn comm_time(&self) -> f64 {
        self.send_time + self.recv_time
    }
}

/// Full result of replaying a trace.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Per-task accounting, indexed by rank.
    pub tasks: Vec<TaskReport>,
    /// Every message, in send-post order.
    pub messages: Vec<MessageRecord>,
}

impl SimReport {
    /// Application makespan (last task finish).
    pub fn makespan(&self) -> f64 {
        self.tasks.iter().map(|t| t.finish).fold(0.0, f64::max)
    }

    /// The paper's per-task sum of *send* communication times (`Sm`/`Sp`
    /// in §VI.B are computed over the task's communications, measured at
    /// the source like the §IV.B methodology).
    pub fn task_send_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.tasks.len()];
        for m in &self.messages {
            sums[m.src_task] += m.send_duration();
        }
        sums
    }

    /// Average of per-message effective bandwidth (diagnostics).
    pub fn mean_message_duration(&self) -> f64 {
        if self.messages.is_empty() {
            return 0.0;
        }
        self.messages.iter().map(|m| m.end - m.start).sum::<f64>() / self.messages.len() as f64
    }

    /// Effective penalty of each inter-node message relative to an
    /// uncontended transfer at `ref_bandwidth` bytes/s — the paper
    /// simulator's per-communication penalty output. Intra-node messages
    /// report 1.
    pub fn message_penalties(&self, ref_bandwidth: f64) -> Vec<f64> {
        assert!(ref_bandwidth > 0.0, "reference bandwidth must be positive");
        self.messages
            .iter()
            .map(|m| {
                if m.intra_node || m.bytes == 0 {
                    1.0
                } else {
                    let tref = m.bytes as f64 / ref_bandwidth;
                    ((m.end - m.start) / tref).max(1.0)
                }
            })
            .collect()
    }

    /// Mean effective penalty of each task's sent messages (the "average
    /// penality" column of the paper's simulator output, §VI.A). Tasks
    /// that send nothing report 1.
    pub fn task_mean_penalties(&self, ref_bandwidth: f64) -> Vec<f64> {
        let per_msg = self.message_penalties(ref_bandwidth);
        let mut sum = vec![0.0; self.tasks.len()];
        let mut count = vec![0usize; self.tasks.len()];
        for (m, p) in self.messages.iter().zip(&per_msg) {
            if !m.intra_node {
                sum[m.src_task] += p;
                count[m.src_task] += 1;
            }
        }
        sum.iter()
            .zip(&count)
            .map(|(&s, &c)| if c == 0 { 1.0 } else { s / c as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_sums_attribute_to_sources() {
        let report = SimReport {
            tasks: vec![TaskReport::default(); 2],
            messages: vec![
                MessageRecord {
                    src_task: 0,
                    dst_task: 1,
                    bytes: 10,
                    post_send: 0.0,
                    post_recv: 0.0,
                    start: 0.0,
                    end: 2.0,
                    intra_node: false,
                    eager: false,
                },
                MessageRecord {
                    src_task: 1,
                    dst_task: 0,
                    bytes: 10,
                    post_send: 1.0,
                    post_recv: 0.5,
                    start: 1.0,
                    end: 1.5,
                    intra_node: false,
                    eager: false,
                },
            ],
        };
        let sums = report.task_send_sums();
        assert_eq!(sums, vec![2.0, 0.5]);
    }

    #[test]
    fn eager_send_duration_is_copy_only() {
        let m = MessageRecord {
            src_task: 0,
            dst_task: 1,
            bytes: 10,
            post_send: 1.0,
            post_recv: 5.0,
            start: 1.0,
            end: 9.0,
            intra_node: false,
            eager: true,
        };
        assert_eq!(m.send_duration(), 0.0);
    }

    #[test]
    fn penalties_from_message_records() {
        let report = SimReport {
            tasks: vec![TaskReport::default(); 2],
            messages: vec![
                MessageRecord {
                    src_task: 0,
                    dst_task: 1,
                    bytes: 100,
                    post_send: 0.0,
                    post_recv: 0.0,
                    start: 0.0,
                    end: 2.0, // 100 B in 2 s at ref 100 B/s → penalty 2
                    intra_node: false,
                    eager: false,
                },
                MessageRecord {
                    src_task: 0,
                    dst_task: 1,
                    bytes: 100,
                    post_send: 2.0,
                    post_recv: 2.0,
                    start: 2.0,
                    end: 3.0, // penalty 1
                    intra_node: false,
                    eager: false,
                },
                MessageRecord {
                    src_task: 1,
                    dst_task: 0,
                    bytes: 100,
                    post_send: 0.0,
                    post_recv: 0.0,
                    start: 0.0,
                    end: 9.0,
                    intra_node: true, // intra-node → penalty 1 regardless
                    eager: false,
                },
            ],
        };
        let p = report.message_penalties(100.0);
        assert_eq!(p, vec![2.0, 1.0, 1.0]);
        let task_means = report.task_mean_penalties(100.0);
        assert_eq!(task_means[0], 1.5);
        assert_eq!(task_means[1], 1.0); // only an intra-node send
    }

    #[test]
    fn makespan_is_last_finish() {
        let r = SimReport {
            tasks: vec![
                TaskReport {
                    finish: 3.0,
                    ..Default::default()
                },
                TaskReport {
                    finish: 5.0,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.makespan(), 5.0);
    }
}
