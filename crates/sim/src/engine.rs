//! The trace-replay engine: MPI blocking semantics over a network backend.

use crate::backend::NetworkBackend;
use crate::cluster::ClusterSpec;
use crate::placement::Placement;
use crate::report::{MessageRecord, SimReport, TaskReport};
use netbw_graph::Communication;
use netbw_trace::{Event, Trace};

/// Engine failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No task can make progress but the application has not finished.
    Deadlock {
        /// Time at which progress stopped.
        at: f64,
        /// Human-readable blocked-task descriptions.
        blocked: Vec<String>,
    },
    /// The trace is inconsistent with the cluster or itself.
    InvalidTrace(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(f, "deadlock at t={at}: {}", blocked.join("; "))
            }
            SimError::InvalidTrace(m) => write!(f, "invalid trace: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Clone, Copy, Debug, PartialEq)]
enum TaskState {
    Running,
    BlockedSend(usize),
    BlockedRecv,
    InBarrier,
    Done,
}

#[derive(Debug)]
struct Msg {
    src_task: usize,
    dst_task: usize,
    bytes: u64,
    post_send: f64,
    post_recv: f64,
    start: f64,
    end: f64,
    intra: bool,
    eager: bool,
    /// Transfer finished (payload delivered).
    arrived: bool,
    /// A receive has been bound to this message.
    bound: bool,
}

#[derive(Debug)]
struct PendingRecv {
    src: Option<usize>,
    bytes: u64,
    posted: f64,
}

/// The trace-driven simulator. Replays a [`Trace`] over a cluster,
/// placement and network backend, producing per-task timings.
pub struct Simulator<'a, B> {
    trace: &'a Trace,
    cluster: ClusterSpec,
    placement: Placement,
    backend: B,
}

impl<'a, B: NetworkBackend> Simulator<'a, B> {
    /// Builds a simulator.
    ///
    /// # Panics
    /// If the placement does not cover the trace's tasks.
    pub fn new(trace: &'a Trace, cluster: ClusterSpec, placement: Placement, backend: B) -> Self {
        assert_eq!(
            placement.len(),
            trace.len(),
            "placement must map every task"
        );
        Simulator {
            trace,
            cluster,
            placement,
            backend,
        }
    }

    /// Replays the trace to completion.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        self.trace.validate().map_err(SimError::InvalidTrace)?;
        let n = self.trace.len();
        let mut pc = vec![0usize; n];
        let mut clock = vec![0.0f64; n];
        let mut state = vec![TaskState::Running; n];
        let mut report = SimReport {
            tasks: vec![TaskReport::default(); n],
            messages: Vec::new(),
        };
        if n == 0 {
            return Ok(report);
        }

        let mut msgs: Vec<Msg> = Vec::new();
        // unmatched (unbound) messages per destination task, in post order
        let mut unbound: Vec<Vec<usize>> = vec![Vec::new(); n];
        // pending (unbound) receives per task, in post order
        let mut pending_recv: Vec<Vec<PendingRecv>> = (0..n).map(|_| Vec::new()).collect();
        // which message a blocked receiver is waiting on
        let mut waiting_on: Vec<Option<usize>> = vec![None; n];
        // intra-node completions: (time, msg id), scanned for the minimum
        let mut local: Vec<(f64, usize)> = Vec::new();
        // barrier bookkeeping
        let mut barrier_arrivals: usize = 0;
        let mut barrier_block_start = vec![0.0f64; n];

        loop {
            // ---- choose the next instant ----
            let t_task = (0..n)
                .filter(|&r| state[r] == TaskState::Running)
                .map(|r| clock[r])
                .min_by(f64::total_cmp);
            let t_local = local.iter().map(|&(t, _)| t).min_by(f64::total_cmp);
            let t_net = self.backend.next_event_time();
            let t = [t_task, t_local, t_net]
                .into_iter()
                .flatten()
                .min_by(f64::total_cmp);
            let Some(t) = t else {
                if state.iter().all(|s| *s == TaskState::Done) {
                    break;
                }
                return Err(self.deadlock(&state, &clock, &report));
            };

            // ---- deliver network completions at exactly t ----
            for (key, ct) in self.backend.advance_to(t) {
                Self::deliver(
                    key as usize,
                    ct,
                    &mut msgs,
                    &mut state,
                    &mut clock,
                    &mut waiting_on,
                    &mut report,
                );
            }
            // ---- deliver intra-node completions at ≤ t ----
            while let Some(pos) = local.iter().position(|&(lt, _)| lt <= t + 1e-15) {
                let (lt, mid) = local.swap_remove(pos);
                Self::deliver(
                    mid,
                    lt,
                    &mut msgs,
                    &mut state,
                    &mut clock,
                    &mut waiting_on,
                    &mut report,
                );
            }

            // ---- run one task step at t ----
            let next_task = (0..n)
                .filter(|&r| state[r] == TaskState::Running && clock[r] <= t + 1e-15)
                .min_by(|&a, &b| clock[a].total_cmp(&clock[b]).then(a.cmp(&b)));
            let Some(r) = next_task else {
                continue;
            };
            let now = clock[r];

            let Some(ev) = self.trace.tasks[r].events.get(pc[r]).copied() else {
                state[r] = TaskState::Done;
                report.tasks[r].finish = now;
                continue;
            };
            pc[r] += 1;

            match ev {
                Event::Compute { duration } => {
                    clock[r] += duration;
                    report.tasks[r].compute_time += duration;
                }
                Event::Send { dst, bytes } => {
                    let d = dst.idx();
                    let intra = self.placement.node_of(r) == self.placement.node_of(d);
                    let eager = bytes <= self.cluster.eager_threshold;
                    let mid = msgs.len();
                    msgs.push(Msg {
                        src_task: r,
                        dst_task: d,
                        bytes,
                        post_send: now,
                        post_recv: f64::NAN,
                        start: f64::NAN,
                        end: f64::NAN,
                        intra,
                        eager,
                        arrived: false,
                        bound: false,
                    });
                    report.tasks[r].bytes_sent += bytes;

                    // bind to an already-posted receive?
                    if let Some(pos) = pending_recv[d]
                        .iter()
                        .position(|pr| pr.src.is_none_or(|s| s == r))
                    {
                        let pr = pending_recv[d].remove(pos);
                        if pr.bytes != bytes {
                            return Err(SimError::InvalidTrace(format!(
                                "task {d} expected {} bytes from {r}, got {bytes}",
                                pr.bytes
                            )));
                        }
                        msgs[mid].bound = true;
                        msgs[mid].post_recv = pr.posted;
                        waiting_on[d] = Some(mid);
                    } else {
                        unbound[d].push(mid);
                    }

                    if eager {
                        // transfer begins immediately; sender pays a local
                        // copy and continues
                        let copy = bytes as f64 / self.cluster.mem_bandwidth;
                        clock[r] += copy;
                        report.tasks[r].send_time += copy;
                        self.start_transfer(mid, now, &mut msgs, &mut local);
                    } else if msgs[mid].bound {
                        // rendezvous with the receiver already waiting
                        self.start_transfer(mid, now, &mut msgs, &mut local);
                        state[r] = TaskState::BlockedSend(mid);
                    } else {
                        state[r] = TaskState::BlockedSend(mid);
                    }
                }
                Event::Recv { src, bytes } => {
                    let want: Option<usize> = src.map(|s| s.idx());
                    // oldest matching unbound message
                    if let Some(pos) = unbound[r].iter().position(|&mid| {
                        let m = &msgs[mid];
                        want.is_none_or(|s| s == m.src_task)
                    }) {
                        let mid = unbound[r].remove(pos);
                        if msgs[mid].bytes != bytes {
                            return Err(SimError::InvalidTrace(format!(
                                "task {r} expected {bytes} bytes, sender {} sent {}",
                                msgs[mid].src_task, msgs[mid].bytes
                            )));
                        }
                        msgs[mid].bound = true;
                        msgs[mid].post_recv = now;
                        if msgs[mid].arrived {
                            // eager message already delivered
                            report.tasks[r].recv_time += (msgs[mid].end - now).max(0.0);
                            clock[r] = now.max(msgs[mid].end);
                        } else {
                            if !msgs[mid].eager && msgs[mid].start.is_nan() {
                                // rendezvous starts now that both sides are in
                                self.start_transfer(mid, now, &mut msgs, &mut local);
                            }
                            waiting_on[r] = Some(mid);
                            state[r] = TaskState::BlockedRecv;
                        }
                    } else {
                        pending_recv[r].push(PendingRecv {
                            src: want,
                            bytes,
                            posted: now,
                        });
                        state[r] = TaskState::BlockedRecv;
                    }
                }
                Event::Barrier => {
                    state[r] = TaskState::InBarrier;
                    barrier_block_start[r] = now;
                    barrier_arrivals += 1;
                    if barrier_arrivals == n {
                        barrier_arrivals = 0;
                        let release = (0..n)
                            .filter(|&x| state[x] == TaskState::InBarrier)
                            .map(|x| clock[x])
                            .fold(now, f64::max);
                        for x in 0..n {
                            if state[x] == TaskState::InBarrier {
                                report.tasks[x].barrier_time += release - barrier_block_start[x];
                                clock[x] = release;
                                state[x] = TaskState::Running;
                            }
                        }
                    }
                }
            }
        }

        // finalize message records
        report.messages = msgs
            .iter()
            .map(|m| MessageRecord {
                src_task: m.src_task,
                dst_task: m.dst_task,
                bytes: m.bytes,
                post_send: m.post_send,
                post_recv: m.post_recv,
                start: m.start,
                end: m.end,
                intra_node: m.intra,
                eager: m.eager,
            })
            .collect();
        Ok(report)
    }

    /// Starts the payload transfer of message `mid` at time `now`.
    fn start_transfer(
        &mut self,
        mid: usize,
        now: f64,
        msgs: &mut [Msg],
        local: &mut Vec<(f64, usize)>,
    ) {
        let m = &mut msgs[mid];
        debug_assert!(m.start.is_nan(), "transfer started twice");
        m.start = now;
        if m.intra {
            let end = now + m.bytes as f64 / self.cluster.mem_bandwidth;
            local.push((end, mid));
        } else {
            let comm = Communication::new(
                self.placement.node_of(m.src_task),
                self.placement.node_of(m.dst_task),
                m.bytes,
            );
            self.backend.add(mid as u64, comm, now);
        }
    }

    /// Handles a delivered payload: unblocks the sender (rendezvous) and
    /// the bound receiver.
    fn deliver(
        mid: usize,
        at: f64,
        msgs: &mut [Msg],
        state: &mut [TaskState],
        clock: &mut [f64],
        waiting_on: &mut [Option<usize>],
        report: &mut SimReport,
    ) {
        let m = &mut msgs[mid];
        m.arrived = true;
        m.end = at;
        let (s, d) = (m.src_task, m.dst_task);
        if !m.eager {
            if let TaskState::BlockedSend(b) = state[s] {
                if b == mid {
                    report.tasks[s].send_time += at - m.post_send;
                    clock[s] = at;
                    state[s] = TaskState::Running;
                }
            }
        }
        if m.bound && state[d] == TaskState::BlockedRecv && waiting_on[d] == Some(mid) {
            report.tasks[d].recv_time += at - m.post_recv;
            clock[d] = at;
            state[d] = TaskState::Running;
            waiting_on[d] = None;
        }
    }

    fn deadlock(&self, state: &[TaskState], clock: &[f64], report: &SimReport) -> SimError {
        let at = clock.iter().copied().fold(0.0, f64::max);
        let blocked = state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != TaskState::Done)
            .map(|(r, s)| format!("task {r} is {s:?}"))
            .collect();
        let _ = report;
        SimError::Deadlock { at, blocked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;
    use netbw_core::baseline::LinearModel;
    use netbw_core::MyrinetModel;
    use netbw_fluid::{FluidNetwork, NetworkParams};
    use netbw_trace::Trace;

    fn fluid_backend() -> FluidNetwork<LinearModel> {
        FluidNetwork::new(LinearModel, NetworkParams::unit())
    }

    fn run(
        trace: &Trace,
        cluster: ClusterSpec,
        policy: &PlacementPolicy,
    ) -> Result<SimReport, SimError> {
        let placement = Placement::assign(policy, trace.len(), &cluster);
        Simulator::new(trace, cluster, placement, fluid_backend()).run()
    }

    fn big_cluster() -> ClusterSpec {
        ClusterSpec {
            nodes: 8,
            cores_per_node: 1,
            mem_bandwidth: 1e9,
            eager_threshold: 0, // force rendezvous in unit tests
        }
    }

    #[test]
    fn pure_compute_trace() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).compute(2.0);
        tr.task_mut(1).compute(3.0);
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        assert_eq!(r.tasks[0].finish, 2.0);
        assert_eq!(r.tasks[1].finish, 3.0);
        assert_eq!(r.makespan(), 3.0);
    }

    #[test]
    fn rendezvous_send_blocks_until_delivery() {
        // task1 computes 5 s before posting its receive; 100-byte message
        // at unit bandwidth takes 100 s; sender blocked 0 → 105.
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 100);
        tr.task_mut(1).compute(5.0).recv(0u32, 100);
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        assert!((r.tasks[0].finish - 105.0).abs() < 1e-9, "{:?}", r.tasks[0]);
        assert!((r.tasks[0].send_time - 105.0).abs() < 1e-9);
        assert!((r.tasks[1].finish - 105.0).abs() < 1e-9);
        assert!((r.tasks[1].recv_time - 100.0).abs() < 1e-9);
        let m = &r.messages[0];
        assert_eq!(m.start, 5.0);
        assert_eq!(m.end, 105.0);
        assert!(!m.eager && !m.intra_node);
    }

    #[test]
    fn eager_send_does_not_block() {
        let mut cluster = big_cluster();
        cluster.eager_threshold = 1024;
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 100).compute(1.0);
        tr.task_mut(1).compute(500.0).recv(0u32, 100);
        let r = run(&tr, cluster, &PlacementPolicy::RoundRobinNode).unwrap();
        // sender finished after copy (100/1e9 ≈ 0) + compute 1.0
        assert!(r.tasks[0].finish < 2.0, "{:?}", r.tasks[0]);
        // message arrived at ≈100 s; receiver posted at 500 → no wait
        assert!((r.tasks[1].finish - 500.0).abs() < 1e-6);
        assert!(r.tasks[1].recv_time < 1e-6);
    }

    #[test]
    fn intra_node_messages_use_memory_bandwidth() {
        let cluster = ClusterSpec {
            nodes: 1,
            cores_per_node: 2,
            mem_bandwidth: 10.0,
            eager_threshold: 0,
        };
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 100);
        tr.task_mut(1).recv(0u32, 100);
        let r = run(&tr, cluster, &PlacementPolicy::RoundRobinProcessor).unwrap();
        assert!((r.tasks[0].finish - 10.0).abs() < 1e-9);
        assert!(r.messages[0].intra_node);
    }

    #[test]
    fn any_source_matches_in_arrival_order() {
        let mut tr = Trace::with_tasks(3);
        tr.task_mut(0).compute(1.0).send(2u32, 100);
        tr.task_mut(1).compute(2.0).send(2u32, 100);
        tr.task_mut(2).recv_any(100).recv_any(100);
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        // first recv binds task 0's (earlier) send
        let m0 = r.messages.iter().find(|m| m.src_task == 0).unwrap();
        let m1 = r.messages.iter().find(|m| m.src_task == 1).unwrap();
        assert!(m0.start < m1.start);
        assert_eq!(
            r.tasks[2].finish,
            r.messages.iter().map(|m| m.end).fold(0.0, f64::max)
        );
    }

    #[test]
    fn barrier_synchronizes_all() {
        let mut tr = Trace::with_tasks(3);
        tr.task_mut(0).compute(1.0).barrier().compute(1.0);
        tr.task_mut(1).compute(5.0).barrier().compute(1.0);
        tr.task_mut(2).barrier().compute(1.0);
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        for t in &r.tasks {
            assert!((t.finish - 6.0).abs() < 1e-9, "{t:?}");
        }
        assert!((r.tasks[2].barrier_time - 5.0).abs() < 1e-9);
        assert!(r.tasks[1].barrier_time.abs() < 1e-9);
    }

    #[test]
    fn concurrent_sends_share_bandwidth_under_model() {
        // two tasks on one node send 100 bytes each to distinct nodes:
        // Myrinet model penalty 2 → both complete at 200.
        let cluster = ClusterSpec {
            nodes: 3,
            cores_per_node: 2,
            mem_bandwidth: 1e12,
            eager_threshold: 0,
        };
        let mut tr = Trace::with_tasks(4);
        tr.task_mut(0).send(2u32, 100);
        tr.task_mut(1).send(3u32, 100);
        tr.task_mut(2).recv(0u32, 100);
        tr.task_mut(3).recv(1u32, 100);
        let placement = Placement::assign(
            &PlacementPolicy::Explicit(vec![
                netbw_graph::NodeId(0),
                netbw_graph::NodeId(0),
                netbw_graph::NodeId(1),
                netbw_graph::NodeId(2),
            ]),
            4,
            &cluster,
        );
        let backend = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        let r = Simulator::new(&tr, cluster, placement, backend)
            .run()
            .unwrap();
        assert!((r.tasks[0].finish - 200.0).abs() < 1e-9, "{:?}", r.tasks[0]);
        assert!((r.tasks[1].finish - 200.0).abs() < 1e-9);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let mut tr = Trace::with_tasks(2);
        // both receive first: classic deadlock — but validate() rejects it
        // statically, so bypass validation by making counts match:
        // 0 waits for 1 who waits for 0.
        tr.task_mut(0).recv(1u32, 10).send(1u32, 10);
        tr.task_mut(1).recv(0u32, 10).send(0u32, 10);
        let e = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap_err();
        match e {
            SimError::Deadlock { blocked, .. } => {
                assert_eq!(blocked.len(), 2);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn specific_recv_waits_for_its_source() {
        // task 2 asks for task 1's message first even though task 0's is
        // available earlier.
        let mut tr = Trace::with_tasks(3);
        tr.task_mut(0).send(2u32, 50);
        tr.task_mut(1).compute(500.0).send(2u32, 50);
        tr.task_mut(2).recv(1u32, 50).recv(0u32, 50);
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        // recv(1) satisfied at ≈550; then task0's rendezvous can only start
        // once bound... task0 blocked from t=0 until its transfer completes.
        assert!(r.tasks[2].finish > 550.0, "{:?}", r.tasks[2]);
        let m0 = r.messages.iter().find(|m| m.src_task == 0).unwrap();
        assert!(m0.start >= 550.0, "rendezvous waits for the bind: {m0:?}");
    }

    #[test]
    fn zero_byte_message_synchronizes_without_transfer_time() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).compute(3.0).send(1u32, 0);
        tr.task_mut(1).recv(0u32, 0).compute(1.0);
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        // receiver waits for the (empty) message at t=3, then computes
        assert!((r.tasks[1].finish - 4.0).abs() < 1e-9, "{:?}", r.tasks[1]);
        assert!((r.tasks[1].recv_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_and_empty_tasks() {
        let tr = Trace::with_tasks(0);
        let cluster = big_cluster();
        let placement = Placement::assign(&PlacementPolicy::RoundRobinNode, 0, &cluster);
        let r = Simulator::new(&tr, cluster, placement, fluid_backend())
            .run()
            .unwrap();
        assert!(r.tasks.is_empty());

        let tr = Trace::with_tasks(3); // tasks with no events at all
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        assert!(r.tasks.iter().all(|t| t.finish == 0.0));
    }

    #[test]
    fn repeated_barriers_keep_tasks_in_lockstep() {
        let mut tr = Trace::with_tasks(2);
        for k in 0..3 {
            tr.task_mut(0).compute(1.0 + k as f64).barrier();
            tr.task_mut(1).compute(2.0).barrier();
        }
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        // epochs release at max(cumulative) each round:
        // round 0: max(1,2)=2; round 1: max(2+2, 2+2)=4; round 2: max(4+3, 4+2)=7
        assert!((r.tasks[0].finish - 7.0).abs() < 1e-9, "{:?}", r.tasks[0]);
        assert!((r.tasks[1].finish - 7.0).abs() < 1e-9);
    }

    #[test]
    fn eager_any_source_matches_on_arrival_order() {
        let mut cluster = big_cluster();
        cluster.eager_threshold = 1 << 20;
        cluster.mem_bandwidth = 1e15; // negligible copy cost
        let mut tr = Trace::with_tasks(3);
        tr.task_mut(0).compute(10.0).send(2u32, 100);
        tr.task_mut(1).send(2u32, 200);
        tr.task_mut(2).compute(500.0).recv_any(200).recv_any(100);
        let r = run(&tr, cluster, &PlacementPolicy::RoundRobinNode).unwrap();
        // both messages arrived long before the receives: matching must
        // bind the earliest-posted message (task 1's) to the first recv
        assert_eq!(r.tasks[2].recv_time, 0.0);
        assert!((r.tasks[2].finish - 500.0).abs() < 1e-6, "{:?}", r.tasks[2]);
    }

    #[test]
    fn report_message_records_are_complete() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 100);
        tr.task_mut(1).recv_any(100);
        let r = run(&tr, big_cluster(), &PlacementPolicy::RoundRobinNode).unwrap();
        assert_eq!(r.messages.len(), 1);
        let m = &r.messages[0];
        assert!(m.end >= m.start && m.start >= m.post_send);
        assert_eq!(r.task_send_sums()[0], m.send_duration());
    }
}
