//! Property-based tests for the graph substrate.

use netbw_graph::bitset::BitSet;
use netbw_graph::conflict::{ConflictGraph, ConflictRule};
use netbw_graph::units::{format_size, parse_size};
use netbw_graph::{dsl, CommGraph, Communication};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// BitSet agrees with a HashSet model under arbitrary operation mixes.
    #[test]
    fn bitset_matches_hashset_model(ops in proptest::collection::vec((0u8..5, 0usize..200), 0..200)) {
        let mut bs = BitSet::with_capacity(64);
        let mut hs: HashSet<usize> = HashSet::new();
        for (op, v) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bs.insert(v), hs.insert(v));
                }
                1 => {
                    prop_assert_eq!(bs.remove(v), hs.remove(&v));
                }
                2 => {
                    prop_assert_eq!(bs.contains(v), hs.contains(&v));
                }
                3 => {
                    prop_assert_eq!(bs.len(), hs.len());
                }
                _ => {
                    let mut sorted: Vec<usize> = hs.iter().copied().collect();
                    sorted.sort_unstable();
                    prop_assert_eq!(bs.iter().collect::<Vec<_>>(), sorted);
                }
            }
        }
        prop_assert_eq!(bs.is_empty(), hs.is_empty());
    }

    /// Set algebra agrees with the HashSet model.
    #[test]
    fn bitset_algebra_matches_model(
        a in proptest::collection::hash_set(0usize..150, 0..40),
        b in proptest::collection::hash_set(0usize..150, 0..40),
    ) {
        let ba: BitSet = a.iter().copied().collect();
        let bb: BitSet = b.iter().copied().collect();
        let mut i = ba.clone();
        i.intersect_with(&bb);
        let want: HashSet<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(i.iter().collect::<HashSet<_>>(), want.clone());
        prop_assert_eq!(ba.intersection_len(&bb), want.len());
        prop_assert_eq!(ba.is_disjoint(&bb), want.is_empty());
        let mut u = ba.clone();
        u.union_with(&bb);
        prop_assert_eq!(u.len(), a.union(&b).count());
        let mut d = ba.clone();
        d.difference_with(&bb);
        prop_assert_eq!(d.iter().collect::<HashSet<_>>(),
            a.difference(&b).copied().collect::<HashSet<_>>());
    }

    /// format_size / parse_size round-trips for every u64 the formatter
    /// renders exactly.
    #[test]
    fn size_format_round_trips(bytes in 0u64..10_000_000_000_000) {
        let s = format_size(bytes);
        let back = parse_size(&s).unwrap();
        // formatting truncates to 3 decimals: allow that quantisation
        let unit: u64 = if bytes >= 1_000_000_000 { 1_000_000_000 }
            else if bytes >= 1_000_000 { 1_000_000 }
            else if bytes >= 1_000 { 1_000 } else { 1 };
        let tol = unit / 1000 + 1;
        prop_assert!(back.abs_diff(bytes) <= tol, "{bytes} -> {s} -> {back}");
    }

    /// The conflict graph is symmetric and loop-free under both rules.
    #[test]
    fn conflict_graph_symmetric(comms in proptest::collection::vec((0u32..6, 0u32..5, 1u64..100), 1..10)) {
        let comms: Vec<Communication> = comms
            .into_iter()
            .map(|(s, d_raw, size)| {
                let d = if d_raw >= s { d_raw + 1 } else { d_raw };
                Communication::new(s, d, size)
            })
            .collect();
        for rule in [ConflictRule::Strict, ConflictRule::SharedNode] {
            let cg = ConflictGraph::build(&comms, rule);
            for i in 0..cg.len() {
                prop_assert!(!cg.conflicts(i, i));
                for j in 0..cg.len() {
                    prop_assert_eq!(cg.conflicts(i, j), cg.conflicts(j, i));
                }
            }
            // strict edges are a subset of shared-node edges
        }
        let strict = ConflictGraph::build(&comms, ConflictRule::Strict);
        let shared = ConflictGraph::build(&comms, ConflictRule::SharedNode);
        for i in 0..strict.len() {
            for j in 0..strict.len() {
                if strict.conflicts(i, j) {
                    prop_assert!(shared.conflicts(i, j));
                }
            }
        }
    }

    /// Components partition the vertex set.
    #[test]
    fn components_partition(comms in proptest::collection::vec((0u32..6, 0u32..5), 1..12)) {
        let comms: Vec<Communication> = comms
            .into_iter()
            .map(|(s, d_raw)| {
                let d = if d_raw >= s { d_raw + 1 } else { d_raw };
                Communication::new(s, d, 1)
            })
            .collect();
        let cg = ConflictGraph::build(&comms, ConflictRule::Strict);
        let comps = cg.components();
        let mut seen = vec![false; cg.len()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "vertex {} in two components", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// DSL emit/parse round-trips arbitrary auto-labelled graphs.
    #[test]
    fn dsl_round_trip(comms in proptest::collection::vec((0u32..9, 0u32..8, 1u64..1_000_000), 0..15)) {
        let mut g = CommGraph::named("prop");
        for (s, d_raw, size) in comms {
            let d = if d_raw >= s { d_raw + 1 } else { d_raw };
            g.add_auto(s, d, size);
        }
        let text = dsl::emit(&g);
        let back = dsl::parse(&text).unwrap();
        prop_assert_eq!(back, g);
    }
}
