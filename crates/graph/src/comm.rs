//! The point-to-point communication record.

use crate::ids::NodeId;
use crate::units::format_size;
use std::fmt;

/// A single point-to-point message transfer between two cluster nodes.
///
/// This is the paper's notion of a *communication* `ci` — an arc `(vs, vd)`
/// of the communication graph, annotated with the payload size given to
/// `MPI_Send`. The MPI envelope means the wire size is slightly larger; the
/// packet simulators account for that, the analytical models (which work in
/// penalties, i.e. ratios) do not need to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Communication {
    /// Source node `vs` (where the send is issued).
    pub src: NodeId,
    /// Destination node `vd`.
    pub dst: NodeId,
    /// Payload length in bytes, as passed to `MPI_Send`.
    pub size: u64,
}

impl Communication {
    /// Creates a communication of `size` bytes from `src` to `dst`.
    pub fn new(src: impl Into<NodeId>, dst: impl Into<NodeId>, size: u64) -> Self {
        Communication {
            src: src.into(),
            dst: dst.into(),
            size,
        }
    }

    /// True when source and destination are the same node: the transfer
    /// stays inside the node (shared memory) and never crosses the NIC.
    #[inline]
    pub fn is_intra_node(&self) -> bool {
        self.src == self.dst
    }

    /// True if the two communications leave from the same node.
    #[inline]
    pub fn shares_source(&self, other: &Communication) -> bool {
        self.src == other.src
    }

    /// True if the two communications arrive at the same node.
    #[inline]
    pub fn shares_destination(&self, other: &Communication) -> bool {
        self.dst == other.dst
    }

    /// True if any endpoint node is common to both communications.
    #[inline]
    pub fn shares_node(&self, other: &Communication) -> bool {
        self.src == other.src
            || self.src == other.dst
            || self.dst == other.src
            || self.dst == other.dst
    }
}

impl fmt::Display for Communication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({})",
            self.src,
            self.dst,
            format_size(self.size)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MB;

    #[test]
    fn construction_and_display() {
        let c = Communication::new(0u32, 1u32, 20 * MB);
        assert_eq!(c.src, NodeId(0));
        assert_eq!(c.dst, NodeId(1));
        assert_eq!(c.to_string(), "n0 -> n1 (20MB)");
    }

    #[test]
    fn intra_node_detection() {
        assert!(Communication::new(2u32, 2u32, 1).is_intra_node());
        assert!(!Communication::new(2u32, 3u32, 1).is_intra_node());
    }

    #[test]
    fn sharing_predicates() {
        let a = Communication::new(0u32, 1u32, 1);
        let b = Communication::new(0u32, 2u32, 1);
        let c = Communication::new(3u32, 1u32, 1);
        let d = Communication::new(1u32, 4u32, 1);
        let e = Communication::new(5u32, 6u32, 1);
        assert!(a.shares_source(&b));
        assert!(!a.shares_source(&c));
        assert!(a.shares_destination(&c));
        assert!(!a.shares_destination(&b));
        // mixed: a's dst is d's src — node shared, but neither src nor dst match
        assert!(a.shares_node(&d));
        assert!(!a.shares_source(&d));
        assert!(!a.shares_destination(&d));
        assert!(!a.shares_node(&e));
    }
}
