//! A small dense bitset over `u64` words.
//!
//! Used by the conflict graph and by the Bron–Kerbosch state-set enumeration
//! in `netbw-core`, where set intersection over candidate communications is
//! the hot operation.

/// Dense, growable bitset indexed by `usize`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits (fixed at construction; `insert` beyond
    /// this capacity grows the set).
    nbits: usize,
}

impl BitSet {
    /// Creates an empty set able to hold `nbits` elements without growing.
    pub fn with_capacity(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Creates a set containing `0..nbits`.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::with_capacity(nbits);
        for i in 0..nbits {
            s.insert(i);
        }
        s
    }

    /// Number of addressable bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `i`, growing if necessary. Returns `true` if newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if i >= self.nbits {
            self.nbits = i + 1;
        }
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        w < self.words.len() && self.words[w] >> b & 1 == 1
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        if self.words.len() > other.words.len() {
            for w in &mut self.words[other.words.len()..] {
                *w = 0;
            }
        }
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
            self.nbits = self.nbits.max(other.nbits);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    /// Size of the intersection without allocating.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if the two sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// First element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::default();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::with_capacity(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_beyond_capacity() {
        let mut s = BitSet::with_capacity(1);
        s.insert(200);
        assert!(s.contains(200));
        assert_eq!(s.len(), 1);
        assert!(s.capacity() >= 201);
    }

    #[test]
    fn iter_in_order() {
        let s: BitSet = [5usize, 1, 64, 63, 128].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 63, 64, 128]);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2usize, 64, 65].into_iter().collect();
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 64]);
        assert_eq!(a.intersection_len(&b), 2);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 64, 65]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!a.is_disjoint(&b));
        let c: BitSet = [100usize].into_iter().collect();
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(130);
        assert_eq!(s.len(), 130);
        assert!(s.contains(129));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn intersect_with_shorter_other_zeroes_tail() {
        let mut a: BitSet = [1usize, 200].into_iter().collect();
        let b: BitSet = [1usize].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }
}
