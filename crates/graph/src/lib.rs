//! Communication graphs and conflict structure for bandwidth-sharing analysis.
//!
//! This crate is the lowest-level substrate of the `netbw` workspace, the
//! reproduction of *Vienne, Martinasso, Vincent, Méhaut — "Predictive models
//! for bandwidth sharing in high performance clusters" (IEEE Cluster 2008)*.
//!
//! It provides:
//!
//! * typed identifiers for cluster nodes, MPI tasks and communications
//!   ([`NodeId`], [`TaskId`], [`CommId`]),
//! * the [`Communication`] record (source node, destination node, payload),
//! * [`CommGraph`] — a labelled multigraph of point-to-point communications,
//!   the paper's "communication scheme",
//! * the conflict taxonomy of §IV.A ([`conflict`]) and the *conflict graph*
//!   used by the Myrinet state-set model,
//! * the scheme description language of §IV.B ([`dsl`]),
//! * every communication scheme appearing in the paper plus synthetic
//!   generators ([`schemes`]),
//! * [Graphviz export](dot) for visual inspection.
//!
//! # Example
//!
//! ```
//! use netbw_graph::{schemes, conflict::{ConflictRule, ConflictGraph}};
//!
//! let g = schemes::fig5();
//! let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
//! assert_eq!(cg.edge_count(), 7);
//! ```

pub mod analysis;
pub mod bitset;
pub mod comm;
pub mod conflict;
pub mod dot;
pub mod dsl;
pub mod graph;
pub mod ids;
pub mod schemes;
pub mod units;

pub use bitset::BitSet;
pub use comm::Communication;
pub use graph::CommGraph;
pub use ids::{CommId, NodeId, TaskId};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::comm::Communication;
    pub use crate::conflict::{ConflictGraph, ConflictKind, ConflictRule};
    pub use crate::graph::CommGraph;
    pub use crate::ids::{CommId, NodeId, TaskId};
    pub use crate::units::{GB, GIB, KB, KIB, MB, MIB};
}
