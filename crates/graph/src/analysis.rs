//! Structural analysis of communication schemes.
//!
//! Degree distributions and conflict densities determine both how hard a
//! scheme is for the state-set enumeration (exponential in conflict
//! density) and how much sharing the models will predict. These helpers
//! feed the experiment reports.

use crate::conflict::{ConflictGraph, ConflictRule};
use crate::graph::CommGraph;
use std::collections::{BTreeMap, HashSet};

/// Summary of a scheme's structure.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeAnalysis {
    /// Number of communications.
    pub comms: usize,
    /// Number of distinct nodes touched.
    pub nodes: usize,
    /// Maximum outgoing degree Δo over nodes.
    pub max_out_degree: usize,
    /// Maximum incoming degree Δi over nodes.
    pub max_in_degree: usize,
    /// Number of strict conflict edges.
    pub conflict_edges: usize,
    /// Conflict density: edges / C(n, 2) (0 for fewer than 2 comms).
    pub conflict_density: f64,
    /// Sizes of the strict conflict components, descending.
    pub component_sizes: Vec<usize>,
    /// True when the node-level graph (ignoring direction) is a tree.
    pub is_tree: bool,
    /// Histogram of outgoing degrees: degree → node count (zero omitted).
    pub out_degree_histogram: BTreeMap<usize, usize>,
}

/// Analyses a scheme under the strict conflict rule.
pub fn analyse(graph: &CommGraph) -> SchemeAnalysis {
    let comms = graph.len();
    let nodes = graph.nodes();
    let cg = ConflictGraph::build(graph.comms(), ConflictRule::Strict);
    let mut component_sizes: Vec<usize> = cg.components().iter().map(Vec::len).collect();
    component_sizes.sort_unstable_by(|a, b| b.cmp(a));

    let max_out = nodes
        .iter()
        .map(|&n| graph.out_degree(n))
        .max()
        .unwrap_or(0);
    let max_in = nodes.iter().map(|&n| graph.in_degree(n)).max().unwrap_or(0);
    let mut hist = BTreeMap::new();
    for &n in &nodes {
        let d = graph.out_degree(n);
        if d > 0 {
            *hist.entry(d).or_insert(0) += 1;
        }
    }

    // tree test on the undirected node graph (unique undirected edges)
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    for c in graph.comms() {
        let (a, b) = (c.src.0.min(c.dst.0), c.src.0.max(c.dst.0));
        if a != b {
            edges.insert((a, b));
        }
    }
    let is_tree = !nodes.is_empty()
        && edges.len() == nodes.len().saturating_sub(1)
        && node_graph_connected(&nodes, &edges);

    let pairs = comms * comms.saturating_sub(1) / 2;
    SchemeAnalysis {
        comms,
        nodes: nodes.len(),
        max_out_degree: max_out,
        max_in_degree: max_in,
        conflict_edges: cg.edge_count(),
        conflict_density: if pairs == 0 {
            0.0
        } else {
            cg.edge_count() as f64 / pairs as f64
        },
        component_sizes,
        is_tree,
        out_degree_histogram: hist,
    }
}

fn node_graph_connected(nodes: &[crate::ids::NodeId], edges: &HashSet<(u32, u32)>) -> bool {
    if nodes.is_empty() {
        return true;
    }
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }
    let mut seen: HashSet<u32> = HashSet::new();
    let mut stack = vec![nodes[0].0];
    seen.insert(nodes[0].0);
    while let Some(v) = stack.pop() {
        for &w in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            if seen.insert(w) {
                stack.push(w);
            }
        }
    }
    seen.len() == nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes;

    #[test]
    fn mk1_is_recognised_as_tree() {
        let a = analyse(&schemes::mk1());
        assert!(a.is_tree);
        assert_eq!(a.comms, 7);
        assert_eq!(a.nodes, 8);
        assert_eq!(a.component_sizes, vec![4, 2, 1]);
        assert_eq!(a.max_out_degree, 2);
    }

    #[test]
    fn mk2_is_dense_and_not_a_tree() {
        let a = analyse(&schemes::mk2());
        assert!(!a.is_tree);
        assert_eq!(a.comms, 10);
        assert_eq!(a.nodes, 5);
        assert_eq!(a.component_sizes, vec![10]);
        assert!(a.conflict_density > 0.3, "{}", a.conflict_density);
        assert_eq!(a.max_out_degree, 4);
        assert_eq!(a.max_in_degree, 3);
    }

    #[test]
    fn ladder_histogram() {
        let a = analyse(&schemes::outgoing_ladder(3));
        assert_eq!(a.out_degree_histogram.get(&3), Some(&1));
        assert_eq!(a.max_in_degree, 1);
        assert!(a.is_tree); // a star is a tree
        assert_eq!(a.conflict_edges, 3);
        assert!((a.conflict_density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_scheme_is_not_a_tree() {
        let mut g = crate::graph::CommGraph::new();
        g.add("a", 0u32, 1u32, 1);
        g.add("b", 2u32, 3u32, 1);
        let a = analyse(&g);
        assert!(!a.is_tree);
        assert_eq!(a.component_sizes, vec![1, 1]);
        assert_eq!(a.conflict_edges, 0);
        assert_eq!(a.conflict_density, 0.0);
    }

    #[test]
    fn empty_graph() {
        let a = analyse(&crate::graph::CommGraph::new());
        assert_eq!(a.comms, 0);
        assert_eq!(a.nodes, 0);
        assert_eq!(a.conflict_density, 0.0);
    }
}
