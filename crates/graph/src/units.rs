//! Byte-size constants, parsing and formatting.
//!
//! The paper's reference measurement is "the time of a `MPI_Send` of 20 MB";
//! we follow the decimal convention (1 MB = 10^6 B) used by network vendors
//! and also accept binary units (`MiB`) in the scheme DSL.

use std::fmt;

/// 1 kilobyte (10^3 bytes).
pub const KB: u64 = 1_000;
/// 1 megabyte (10^6 bytes).
pub const MB: u64 = 1_000_000;
/// 1 gigabyte (10^9 bytes).
pub const GB: u64 = 1_000_000_000;
/// 1 kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// 1 mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// 1 gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;

/// Error produced by [`parse_size`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSizeError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for ParseSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid size {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseSizeError {}

/// Parses a human byte size such as `"20MB"`, `"4 MiB"`, `"512"` or `"1.5GB"`.
///
/// Accepted suffixes (case-insensitive): `B`, `KB`, `MB`, `GB`, `KiB`,
/// `MiB`, `GiB`. A bare number means bytes. Fractional values are allowed
/// and rounded to the nearest byte.
///
/// ```
/// use netbw_graph::units::{parse_size, MB};
/// assert_eq!(parse_size("20MB").unwrap(), 20 * MB);
/// assert_eq!(parse_size("1.5 kb").unwrap(), 1500);
/// ```
pub fn parse_size(s: &str) -> Result<u64, ParseSizeError> {
    let err = |reason| ParseSizeError {
        input: s.to_string(),
        reason,
    };
    let t = s.trim();
    if t.is_empty() {
        return Err(err("empty string"));
    }
    let split = t.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(t.len());
    let (num, suffix) = t.split_at(split);
    let num = num.trim();
    let value: f64 = num.parse().map_err(|_| err("not a number"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(err("must be a finite non-negative number"));
    }
    let unit = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "kb" | "k" => KB,
        "mb" | "m" => MB,
        "gb" | "g" => GB,
        "kib" => KIB,
        "mib" => MIB,
        "gib" => GIB,
        _ => return Err(err("unknown unit suffix")),
    };
    let bytes = value * unit as f64;
    if bytes > u64::MAX as f64 {
        return Err(err("overflows u64 bytes"));
    }
    Ok(bytes.round() as u64)
}

/// Formats a byte count with the largest exact-ish decimal unit.
///
/// ```
/// use netbw_graph::units::format_size;
/// assert_eq!(format_size(20_000_000), "20MB");
/// assert_eq!(format_size(1_500), "1.5KB");
/// assert_eq!(format_size(999), "999B");
/// ```
pub fn format_size(bytes: u64) -> String {
    fn fmt_scaled(bytes: u64, unit: u64, suffix: &str) -> String {
        let v = bytes as f64 / unit as f64;
        if (v - v.round()).abs() < 1e-9 {
            format!("{}{}", v.round() as u64, suffix)
        } else {
            // trim trailing zeros from 3-decimal rendering
            let s = format!("{v:.3}");
            let s = s.trim_end_matches('0').trim_end_matches('.');
            format!("{s}{suffix}")
        }
    }
    if bytes >= GB {
        fmt_scaled(bytes, GB, "GB")
    } else if bytes >= MB {
        fmt_scaled(bytes, MB, "MB")
    } else if bytes >= KB {
        fmt_scaled(bytes, KB, "KB")
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_bytes() {
        assert_eq!(parse_size("0").unwrap(), 0);
        assert_eq!(parse_size("512").unwrap(), 512);
        assert_eq!(parse_size("512B").unwrap(), 512);
    }

    #[test]
    fn parses_decimal_units() {
        assert_eq!(parse_size("20MB").unwrap(), 20 * MB);
        assert_eq!(parse_size("4 mb").unwrap(), 4 * MB);
        assert_eq!(parse_size("2GB").unwrap(), 2 * GB);
        assert_eq!(parse_size("3k").unwrap(), 3 * KB);
    }

    #[test]
    fn parses_binary_units() {
        assert_eq!(parse_size("1KiB").unwrap(), 1024);
        assert_eq!(parse_size("4MiB").unwrap(), 4 << 20);
        assert_eq!(parse_size("1gib").unwrap(), 1 << 30);
    }

    #[test]
    fn parses_fractions() {
        assert_eq!(parse_size("1.5KB").unwrap(), 1500);
        assert_eq!(parse_size("0.5MB").unwrap(), 500_000);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_size("").is_err());
        assert!(parse_size("MB").is_err());
        assert!(parse_size("-4MB").is_err());
        assert!(parse_size("4XB").is_err());
        assert!(parse_size("nan MB").is_err());
    }

    #[test]
    fn format_round_trips_common_sizes() {
        for &s in &[1u64, 999, 1_000, 20 * MB, 4 * MB, 3 * GB, 1_500] {
            assert_eq!(parse_size(&format_size(s)).unwrap(), s, "size {s}");
        }
    }
}
