//! The scheme description language (§IV.B).
//!
//! The paper's measurement software takes a "description of the
//! communication task scheme using a specific description language". The
//! original language is not published; we define a small line-oriented
//! format sufficient to express every scheme in the paper:
//!
//! ```text
//! # Fig. 5 example — comments run to end of line
//! scheme fig5
//! node 6                  # optional: declare an extra, silent node
//! a: 0 -> 3 20MB          # labelled communication
//! b: 0 -> 2 size 20MB     # the `size` keyword is optional
//! 0 -> 1 4MiB             # unlabelled: auto label (next free letter)
//! ```
//!
//! Sizes use [`crate::units::parse_size`]. Parsing is strict: unknown
//! directives, bad arrows and duplicate labels are reported with line
//! numbers. [`emit`] writes the canonical form; `parse(emit(g))`
//! round-trips.

use crate::graph::CommGraph;
use crate::units::{format_size, parse_size};
use std::fmt;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a scheme description into a [`CommGraph`].
pub fn parse(input: &str) -> Result<CommGraph, ParseError> {
    let mut g = CommGraph::new();
    let mut used_labels: Vec<String> = Vec::new();

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        if line == "scheme" || line.starts_with("scheme ") {
            let name = line["scheme".len()..].trim();
            if name.is_empty() {
                return Err(err("scheme directive needs a name".into()));
            }
            g.set_name(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("node ") {
            let id: u32 = rest
                .trim()
                .parse()
                .map_err(|_| err(format!("bad node id {:?}", rest.trim())))?;
            g.declare_node(id);
            continue;
        }

        // [label:] src -> dst [size] <bytes>
        let (label, body) = match line.split_once(':') {
            Some((l, b)) => {
                let l = l.trim();
                if l.is_empty() || !l.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Err(err(format!("bad label {l:?}")));
                }
                (Some(l.to_string()), b.trim())
            }
            None => (None, line),
        };

        let (src_s, rest) = body
            .split_once("->")
            .ok_or_else(|| err(format!("expected `src -> dst size`, got {body:?}")))?;
        let src: u32 = src_s
            .trim()
            .parse()
            .map_err(|_| err(format!("bad source node {:?}", src_s.trim())))?;

        let rest = rest.trim();
        let (dst_s, size_s) = match rest.split_once(char::is_whitespace) {
            Some((d, s)) => (d, s.trim()),
            None => return Err(err(format!("missing size after destination in {rest:?}"))),
        };
        let dst: u32 = dst_s
            .trim()
            .parse()
            .map_err(|_| err(format!("bad destination node {:?}", dst_s.trim())))?;
        let size_s = size_s.strip_prefix("size").unwrap_or(size_s).trim();
        let size = parse_size(size_s).map_err(|e| err(e.to_string()))?;

        if src == dst {
            return Err(err(format!(
                "self-loop {src} -> {dst} is not a network communication"
            )));
        }

        let label = match label {
            Some(l) => {
                if used_labels.contains(&l) {
                    return Err(err(format!("duplicate label {l:?}")));
                }
                l
            }
            None => {
                // first free auto label
                let mut k = 0;
                loop {
                    let cand = auto(k);
                    if !used_labels.contains(&cand) {
                        break cand;
                    }
                    k += 1;
                }
            }
        };
        used_labels.push(label.clone());
        g.add(label, src, dst, size);
    }
    Ok(g)
}

fn auto(mut i: usize) -> String {
    let mut out = Vec::new();
    loop {
        out.push(b'a' + (i % 26) as u8);
        i /= 26;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    out.reverse();
    String::from_utf8(out).expect("ascii")
}

/// Emits the canonical textual form of a graph. `parse(emit(g))`
/// reconstructs an equal graph (modulo declared-but-unused nodes that are
/// also referenced by communications).
pub fn emit(graph: &CommGraph) -> String {
    let mut out = String::new();
    if !graph.name().is_empty() {
        out.push_str(&format!("scheme {}\n", graph.name()));
    }
    for (_, label, c) in graph.iter() {
        out.push_str(&format!(
            "{label}: {} -> {} {}\n",
            c.src.0,
            c.dst.0,
            format_size(c.size)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::schemes;
    use crate::units::{MB, MIB};

    #[test]
    fn parses_paper_style_scheme() {
        let g = parse(
            "# Fig. 5\n\
             scheme fig5\n\
             a: 0 -> 3 20MB\n\
             b: 0 -> 2 size 20MB\n\
             c: 0 -> 1 20MB\n\
             d: 4 -> 3 20MB\n\
             e: 2 -> 3 20MB\n\
             f: 2 -> 5 20MB\n",
        )
        .unwrap();
        assert_eq!(g, schemes::fig5());
    }

    #[test]
    fn auto_labels_skip_used() {
        let g = parse("b: 0 -> 1 1KB\n0 -> 2 1KB\n0 -> 3 1KB\n").unwrap();
        // auto labels must not collide with the explicit `b`
        assert_eq!(g.labels(), &["b".to_string(), "a".into(), "c".into()]);
    }

    #[test]
    fn accepts_units_and_comments() {
        let g = parse("a: 0 -> 1 4MiB # inline comment\n").unwrap();
        assert_eq!(g.comms()[0].size, 4 * MIB);
    }

    #[test]
    fn node_declarations() {
        let g = parse("node 9\na: 0 -> 1 1MB\n").unwrap();
        assert!(g.nodes().contains(&NodeId(9)));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse("a: 0 -> 1 1MB\nb: 0 => 2 1MB\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));

        let e = parse("a: 0 -> 0 1MB\n").unwrap_err();
        assert!(e.message.contains("self-loop"));

        let e = parse("a: 0 -> 1 1XB\n").unwrap_err();
        assert!(e.message.contains("invalid size"));

        let e = parse("a: 0 -> 1 1MB\na: 2 -> 3 1MB\n").unwrap_err();
        assert!(e.message.contains("duplicate label"));

        let e = parse("scheme \n").unwrap_err();
        assert!(e.message.contains("needs a name"));

        let e = parse("node x\n").unwrap_err();
        assert!(e.message.contains("bad node id"));

        let e = parse("a: 0 -> 1\n").unwrap_err();
        assert!(e.message.contains("missing size"));
    }

    #[test]
    fn round_trips_every_paper_scheme() {
        for g in [
            schemes::fig1(),
            schemes::fig4(4 * MB),
            schemes::fig5(),
            schemes::mk1(),
            schemes::mk2(),
            schemes::fig2_scheme(6),
        ] {
            let text = emit(&g);
            let back = parse(&text).unwrap();
            assert_eq!(back, g, "round-trip failed for {}", g.name());
        }
    }
}
