//! Conflict taxonomy (§IV.A) and the conflict graph over communications.
//!
//! A *conflict* arises when two concurrent communications contend for a
//! shared network resource. The paper distinguishes, for a communication at
//! a node `X`:
//!
//! * **Outgoing conflict** `C←X→` — it leaves `X` together with other
//!   outgoing communications (NIC emission sharing),
//! * **Income conflict** `C→X←` — it arrives at `X` together with other
//!   incoming communications (NIC reception sharing),
//! * **Income/Outgo conflict** `C→X→` / `C←X←` — it leaves (resp. arrives
//!   at) `X` while other communications arrive (resp. leave) — the duplex
//!   coupling case.
//!
//! The Myrinet state-set model uses the **strict** conflict rule: two
//! communications conflict iff they have the *same source* or the *same
//! destination*. Income/outgo pairs do **not** conflict under this rule
//! (full-duplex links); this reading is the only one that reproduces the
//! paper's Fig. 6 table — see `ARCHITECTURE.md`.

use crate::bitset::BitSet;
use crate::comm::Communication;
use crate::graph::CommGraph;
use crate::ids::{CommId, NodeId};

/// Which pairs of communications are considered to conflict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictRule {
    /// Same source node **or** same destination node (the paper's rule).
    Strict,
    /// Any shared endpoint node, including a source of one being the
    /// destination of the other. Kept for the ablation `ABL-1`; it does
    /// *not* reproduce the paper's tables.
    SharedNode,
}

impl ConflictRule {
    /// Applies the rule to a pair of communications.
    #[inline]
    pub fn conflicts(self, a: &Communication, b: &Communication) -> bool {
        match self {
            ConflictRule::Strict => a.shares_source(b) || a.shares_destination(b),
            ConflictRule::SharedNode => a.shares_node(b),
        }
    }
}

/// The three elementary conflict kinds of §IV.A, seen from one
/// communication at one of its endpoint nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// `C←X→`: sharing the emission side of node X's NIC.
    Outgoing,
    /// `C→X←`: sharing the reception side of node X's NIC.
    Income,
    /// `C→X→` or `C←X←`: opposite directions through node X.
    IncomeOutgo,
}

impl std::fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConflictKind::Outgoing => "outgoing (C<-X->)",
            ConflictKind::Income => "income (C->X<-)",
            ConflictKind::IncomeOutgo => "income/outgo (C->X->)",
        };
        f.write_str(s)
    }
}

/// Per-communication census of elementary conflicts in a scheme.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommConflicts {
    /// Other communications sharing this one's source as their source.
    pub outgoing_peers: usize,
    /// Other communications sharing this one's destination as their destination.
    pub income_peers: usize,
    /// Communications entering this one's source node, plus communications
    /// leaving this one's destination node (duplex coupling partners).
    pub income_outgo_peers: usize,
}

impl CommConflicts {
    /// True when the communication shares no resource with any other.
    pub fn is_isolated(&self) -> bool {
        self.outgoing_peers == 0 && self.income_peers == 0 && self.income_outgo_peers == 0
    }

    /// The dominant conflict kind, if any (priority: outgoing, income,
    /// income/outgo — mirroring the severity order observed in Fig. 2).
    pub fn dominant(&self) -> Option<ConflictKind> {
        if self.outgoing_peers > 0 {
            Some(ConflictKind::Outgoing)
        } else if self.income_peers > 0 {
            Some(ConflictKind::Income)
        } else if self.income_outgo_peers > 0 {
            Some(ConflictKind::IncomeOutgo)
        } else {
            None
        }
    }
}

/// Classifies every communication of a graph (the simulator's "kind of
/// conflicts" report, §VI.A).
pub fn census(graph: &CommGraph) -> Vec<CommConflicts> {
    let comms = graph.comms();
    comms
        .iter()
        .map(|c| {
            let mut out = CommConflicts::default();
            for o in comms {
                if std::ptr::eq(c, o) {
                    continue;
                }
                if c.shares_source(o) {
                    out.outgoing_peers += 1;
                }
                if c.shares_destination(o) {
                    out.income_peers += 1;
                }
                // duplex partners at either endpoint
                if o.dst == c.src || o.src == c.dst {
                    out.income_outgo_peers += 1;
                }
            }
            out
        })
        .collect()
}

/// An undirected graph whose vertices are communications and whose edges are
/// conflicts under a [`ConflictRule`]. This is the object the Myrinet model
/// enumerates maximal independent sets of.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    n: usize,
    adj: Vec<BitSet>,
    rule: ConflictRule,
}

impl ConflictGraph {
    /// Builds the conflict graph of a communication slice.
    pub fn build(comms: &[Communication], rule: ConflictRule) -> Self {
        let n = comms.len();
        let mut adj = vec![BitSet::with_capacity(n); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rule.conflicts(&comms[i], &comms[j]) {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
        ConflictGraph { n, adj, rule }
    }

    /// Number of vertices (communications).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there is no communication.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The rule used to build this graph.
    pub fn rule(&self) -> ConflictRule {
        self.rule
    }

    /// Neighbour set of vertex `i`.
    pub fn neighbours(&self, i: usize) -> &BitSet {
        &self.adj[i]
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Number of conflict edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BitSet::len).sum::<usize>() / 2
    }

    /// True if communications `i` and `j` conflict.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        self.adj[i].contains(j)
    }

    /// Connected components, each a sorted list of vertex indices.
    ///
    /// The Myrinet model enumerates state sets per component: counts multiply
    /// across components, so penalties are unchanged while the enumeration
    /// stays polynomial in the number of components.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for w in self.adj[v].iter() {
                    if !seen[w] {
                        seen[w] = true;
                        comp.push(w);
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// A whole-graph independence test: no two members conflict.
    pub fn is_independent(&self, members: &BitSet) -> bool {
        members.iter().all(|v| self.adj[v].is_disjoint(members))
    }

    /// A maximality test: every non-member conflicts with some member.
    pub fn is_maximal_independent(&self, members: &BitSet) -> bool {
        self.is_independent(members)
            && (0..self.n)
                .filter(|v| !members.contains(*v))
                .all(|v| !self.adj[v].is_disjoint(members))
    }
}

/// Convenience: conflict ids for one communication within a graph.
pub fn conflicting_comms(graph: &CommGraph, id: CommId, rule: ConflictRule) -> Vec<CommId> {
    let me = graph.comm(id);
    graph
        .iter()
        .filter(|(other, _, c)| *other != id && rule.conflicts(me, c))
        .map(|(other, _, _)| other)
        .collect()
}

/// Degrees used throughout the models: Δo of the source, Δi of the
/// destination, restricted to the given communication population.
pub fn degrees(comms: &[Communication], of: &Communication) -> (usize, usize) {
    let dout = comms.iter().filter(|c| c.src == of.src).count();
    let din = comms.iter().filter(|c| c.dst == of.dst).count();
    (dout, din)
}

/// Δo restricted to a node.
pub fn out_degree(comms: &[Communication], node: NodeId) -> usize {
    comms.iter().filter(|c| c.src == node).count()
}

/// Δi restricted to a node.
pub fn in_degree(comms: &[Communication], node: NodeId) -> usize {
    comms.iter().filter(|c| c.dst == node).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes;

    fn fig5_comms() -> Vec<Communication> {
        schemes::fig5().comms().to_vec()
    }

    #[test]
    fn strict_rule_matches_paper_reading() {
        let a = Communication::new(0u32, 1u32, 1);
        let b = Communication::new(0u32, 2u32, 1); // same source
        let c = Communication::new(3u32, 1u32, 1); // same destination as a
        let d = Communication::new(1u32, 4u32, 1); // a.dst == d.src (duplex)
        assert!(ConflictRule::Strict.conflicts(&a, &b));
        assert!(ConflictRule::Strict.conflicts(&a, &c));
        assert!(!ConflictRule::Strict.conflicts(&a, &d));
        assert!(ConflictRule::SharedNode.conflicts(&a, &d));
    }

    #[test]
    fn fig5_conflict_graph_structure() {
        // a(0,3) b(0,2) c(0,1) d(4,3) e(2,3) f(2,5):
        // edges ab ac bc (src 0), ad ae de (dst 3), ef (src 2) = 7 edges.
        let cg = ConflictGraph::build(&fig5_comms(), ConflictRule::Strict);
        assert_eq!(cg.len(), 6);
        assert_eq!(cg.edge_count(), 7);
        assert!(cg.conflicts(0, 3)); // a-d share dst 3
        assert!(cg.conflicts(4, 5)); // e-f share src 2
        assert!(!cg.conflicts(1, 4)); // b(0,2) vs e(2,3): duplex only
        assert_eq!(cg.components().len(), 1);
    }

    #[test]
    fn shared_node_rule_adds_duplex_edges() {
        let strict = ConflictGraph::build(&fig5_comms(), ConflictRule::Strict);
        let shared = ConflictGraph::build(&fig5_comms(), ConflictRule::SharedNode);
        assert!(shared.edge_count() > strict.edge_count());
    }

    #[test]
    fn components_split_independent_subgraphs() {
        // MK1: {a,b,d,f} path, {c,g} pair, {e} isolated.
        let mk1 = schemes::mk1();
        let cg = ConflictGraph::build(mk1.comms(), ConflictRule::Strict);
        let comps = cg.components();
        let mut sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 4]);
    }

    #[test]
    fn census_classifies_fig1_cases() {
        // Fig. 1: node0 outgoing-only, node1 income-only, node2 mixed.
        let mut g = CommGraph::new();
        g.add("a", 0u32, 5u32, 1); // outgoes node 0
        g.add("b", 0u32, 6u32, 1); // outgoes node 0
        g.add("c", 7u32, 1u32, 1); // incomes node 1
        g.add("d", 8u32, 1u32, 1); // incomes node 1
        g.add("e", 2u32, 9u32, 1); // outgoes node 2
        g.add("f", 10u32, 2u32, 1); // incomes node 2
        let cen = census(&g);
        let a = &cen[0];
        assert_eq!(a.outgoing_peers, 1);
        assert_eq!(a.income_peers, 0);
        assert_eq!(a.dominant(), Some(ConflictKind::Outgoing));
        let c = &cen[2];
        assert_eq!(c.income_peers, 1);
        assert_eq!(c.dominant(), Some(ConflictKind::Income));
        let e = &cen[4];
        assert_eq!(e.outgoing_peers, 0);
        assert_eq!(e.income_outgo_peers, 1);
        assert_eq!(e.dominant(), Some(ConflictKind::IncomeOutgo));
    }

    #[test]
    fn isolated_comm_census() {
        let mut g = CommGraph::new();
        g.add("a", 0u32, 1u32, 1);
        let cen = census(&g);
        assert!(cen[0].is_isolated());
        assert_eq!(cen[0].dominant(), None);
    }

    #[test]
    fn independence_and_maximality() {
        let cg = ConflictGraph::build(&fig5_comms(), ConflictRule::Strict);
        // {a, f} = indices {0, 5} is one of the five maximal state sets.
        let af: BitSet = [0usize, 5].into_iter().collect();
        assert!(cg.is_independent(&af));
        assert!(cg.is_maximal_independent(&af));
        // {a} alone is independent but not maximal (f is compatible).
        let a: BitSet = [0usize].into_iter().collect();
        assert!(cg.is_independent(&a));
        assert!(!cg.is_maximal_independent(&a));
        // {a, d} conflicts (share dst 3).
        let ad: BitSet = [0usize, 3].into_iter().collect();
        assert!(!cg.is_independent(&ad));
    }

    #[test]
    fn degree_helpers() {
        let comms = fig5_comms();
        let a = comms[0];
        let (dout, din) = degrees(&comms, &a);
        assert_eq!(dout, 3); // a,b,c leave node 0
        assert_eq!(din, 3); // a,d,e enter node 3
        assert_eq!(out_degree(&comms, NodeId(2)), 2);
        assert_eq!(in_degree(&comms, NodeId(5)), 1);
    }

    #[test]
    fn conflicting_comms_lists_partners() {
        let g = schemes::fig5();
        let a = g.by_label("a").unwrap();
        let partners = conflicting_comms(&g, a, ConflictRule::Strict);
        let labels: Vec<&str> = partners.iter().map(|&id| g.label(id)).collect();
        assert_eq!(labels, vec!["b", "c", "d", "e"]);
    }
}
