//! Graphviz (DOT) export of communication schemes.

use crate::graph::CommGraph;
use crate::units::format_size;
use std::fmt::Write as _;

/// Renders a scheme as a Graphviz digraph. Arrows carry their label and
/// payload size; nodes are cluster nodes.
///
/// ```
/// use netbw_graph::{schemes, dot::to_dot};
/// let dot = to_dot(&schemes::fig5());
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("n0 -> n3"));
/// ```
pub fn to_dot(graph: &CommGraph) -> String {
    let mut out = String::new();
    let name = if graph.name().is_empty() {
        "scheme"
    } else {
        graph.name()
    };
    let _ = writeln!(out, "digraph \"{}\" {{", name.replace('"', "'"));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=11];");
    for node in graph.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", node.0, node.0);
    }
    for (_, label, c) in graph.iter() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{} ({})\"];",
            c.src.0,
            c.dst.0,
            label,
            format_size(c.size)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes;

    #[test]
    fn dot_contains_all_edges_and_nodes() {
        let g = schemes::mk1();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"mk1\""));
        for node in g.nodes() {
            assert!(dot.contains(&format!("n{} [label", node.0)));
        }
        for (_, label, c) in g.iter() {
            assert!(dot.contains(&format!("n{} -> n{}", c.src.0, c.dst.0)));
            assert!(dot.contains(&format!("\"{label} (")));
        }
    }

    #[test]
    fn unnamed_graph_gets_default_title() {
        let mut g = CommGraph::new();
        g.add("a", 0u32, 1u32, 1);
        assert!(to_dot(&g).contains("digraph \"scheme\""));
    }

    use crate::graph::CommGraph;
}
