//! The communication graph (the paper's "communication scheme").

use crate::comm::Communication;
use crate::ids::{CommId, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// A labelled multigraph of point-to-point communications.
///
/// Nodes are cluster nodes, arcs are concurrent [`Communication`]s. This is
/// the object the paper calls a *communication scheme* (Figs. 1, 2, 4, 5, 7):
/// all communications in a graph are assumed to start at the same instant
/// (enforced in the measurement software with an MPI barrier, §IV.B).
///
/// Labels (`a`, `b`, `c`, …) follow the paper's figures and are unique.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommGraph {
    comms: Vec<Communication>,
    labels: Vec<String>,
    /// Nodes explicitly declared (e.g. via the DSL); nodes referenced by
    /// communications are always implicitly present.
    declared_nodes: BTreeSet<NodeId>,
    name: String,
}

impl CommGraph {
    /// Creates an empty, unnamed graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with a scheme name (used in reports and DSL).
    pub fn named(name: impl Into<String>) -> Self {
        CommGraph {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The scheme name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the scheme name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a labelled communication. Panics if the label is already used —
    /// schemes are tiny and a duplicate label is always a construction bug.
    pub fn add(
        &mut self,
        label: impl Into<String>,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        size: u64,
    ) -> CommId {
        let label = label.into();
        assert!(
            !self.labels.contains(&label),
            "duplicate communication label {label:?}"
        );
        let id = CommId(self.comms.len() as u32);
        self.comms.push(Communication::new(src, dst, size));
        self.labels.push(label);
        id
    }

    /// Adds a communication with an automatic label (`a`, `b`, …, `z`,
    /// `aa`, `ab`, …).
    pub fn add_auto(
        &mut self,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        size: u64,
    ) -> CommId {
        let label = auto_label(self.comms.len());
        self.add(label, src, dst, size)
    }

    /// Declares a node so it appears in exports even without communications.
    pub fn declare_node(&mut self, node: impl Into<NodeId>) {
        self.declared_nodes.insert(node.into());
    }

    /// All communications, indexed by [`CommId`].
    pub fn comms(&self) -> &[Communication] {
        &self.comms
    }

    /// The communication with the given id.
    pub fn comm(&self, id: CommId) -> &Communication {
        &self.comms[id.idx()]
    }

    /// The label of a communication.
    pub fn label(&self, id: CommId) -> &str {
        &self.labels[id.idx()]
    }

    /// All labels, indexed by [`CommId`].
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Looks a communication up by label.
    pub fn by_label(&self, label: &str) -> Option<CommId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| CommId(i as u32))
    }

    /// Number of communications.
    pub fn len(&self) -> usize {
        self.comms.len()
    }

    /// True when the graph holds no communication.
    pub fn is_empty(&self) -> bool {
        self.comms.is_empty()
    }

    /// Iterates `(id, label, comm)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (CommId, &str, &Communication)> + '_ {
        self.comms
            .iter()
            .zip(self.labels.iter())
            .enumerate()
            .map(|(i, (c, l))| (CommId(i as u32), l.as_str(), c))
    }

    /// The set of nodes present (declared or referenced), sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut set = self.declared_nodes.clone();
        for c in &self.comms {
            set.insert(c.src);
            set.insert(c.dst);
        }
        set.into_iter().collect()
    }

    /// Outgoing degree Δo(v): number of communications with source `v`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.comms.iter().filter(|c| c.src == node).count()
    }

    /// Incoming degree Δi(v): number of communications with destination `v`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.comms.iter().filter(|c| c.dst == node).count()
    }

    /// Ids of communications leaving `node`.
    pub fn outgoing(&self, node: NodeId) -> Vec<CommId> {
        self.iter()
            .filter(|(_, _, c)| c.src == node)
            .map(|(id, _, _)| id)
            .collect()
    }

    /// Ids of communications entering `node`.
    pub fn incoming(&self, node: NodeId) -> Vec<CommId> {
        self.iter()
            .filter(|(_, _, c)| c.dst == node)
            .map(|(id, _, _)| id)
            .collect()
    }

    /// Total payload bytes over all communications.
    pub fn total_bytes(&self) -> u64 {
        self.comms.iter().map(|c| c.size).sum()
    }

    /// Rescales every communication to `size` bytes (the paper's schemes
    /// always use equal sizes; MK1/MK2 are evaluated at several sizes).
    pub fn with_uniform_size(mut self, size: u64) -> Self {
        for c in &mut self.comms {
            c.size = size;
        }
        self
    }
}

impl fmt::Display for CommGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.name.is_empty() {
            writeln!(f, "scheme {}", self.name)?;
        }
        for (_, label, c) in self.iter() {
            writeln!(f, "  {label}: {c}")?;
        }
        Ok(())
    }
}

/// Spreadsheet-style label for index `i`: a..z, aa..az, ba..
fn auto_label(mut i: usize) -> String {
    let mut out = Vec::new();
    loop {
        out.push(b'a' + (i % 26) as u8);
        i /= 26;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    out.reverse();
    String::from_utf8(out).expect("ascii labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MB;

    #[test]
    fn auto_labels_follow_spreadsheet_order() {
        assert_eq!(auto_label(0), "a");
        assert_eq!(auto_label(25), "z");
        assert_eq!(auto_label(26), "aa");
        assert_eq!(auto_label(27), "ab");
        assert_eq!(auto_label(26 + 26 * 26 - 1), "zz");
        assert_eq!(auto_label(26 + 26 * 26), "aaa");
    }

    #[test]
    fn add_and_query() {
        let mut g = CommGraph::named("demo");
        let a = g.add("a", 0u32, 1u32, 20 * MB);
        let b = g.add_auto(0u32, 2u32, 20 * MB);
        assert_eq!(g.len(), 2);
        assert_eq!(g.label(a), "a");
        assert_eq!(g.label(b), "b");
        assert_eq!(g.by_label("b"), Some(b));
        assert_eq!(g.by_label("zz"), None);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(1)), 1);
        assert_eq!(g.outgoing(NodeId(0)), vec![a, b]);
        assert_eq!(g.incoming(NodeId(2)), vec![b]);
        assert_eq!(g.nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(g.total_bytes(), 40 * MB);
    }

    #[test]
    #[should_panic(expected = "duplicate communication label")]
    fn duplicate_label_panics() {
        let mut g = CommGraph::new();
        g.add("a", 0u32, 1u32, 1);
        g.add("a", 0u32, 2u32, 1);
    }

    #[test]
    fn declared_nodes_appear() {
        let mut g = CommGraph::new();
        g.declare_node(9u32);
        g.add("a", 0u32, 1u32, 1);
        assert_eq!(g.nodes(), vec![NodeId(0), NodeId(1), NodeId(9)]);
    }

    #[test]
    fn uniform_resize() {
        let mut g = CommGraph::new();
        g.add("a", 0u32, 1u32, 5);
        g.add("b", 0u32, 2u32, 7);
        let g = g.with_uniform_size(42);
        assert!(g.comms().iter().all(|c| c.size == 42));
    }

    #[test]
    fn display_lists_comms() {
        let mut g = CommGraph::named("x");
        g.add("a", 0u32, 1u32, MB);
        let s = g.to_string();
        assert!(s.contains("scheme x"));
        assert!(s.contains("a: n0 -> n1 (1MB)"));
    }
}
