//! Typed identifiers for cluster nodes, MPI tasks and communications.
//!
//! Using newtypes rather than bare integers prevents the classic confusion
//! between *node* indices (physical machines) and *task* indices (MPI ranks)
//! that the paper's scheduling experiments (§VI.D: RRN/RRP/Random) revolve
//! around.

use std::fmt;

/// A physical cluster node (one machine, one NIC per fabric).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

/// An MPI task (rank). Several tasks may be placed on one [`NodeId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TaskId(pub u32);

/// Index of a communication within a [`crate::CommGraph`] (dense, 0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CommId(pub u32);

impl NodeId {
    /// The index as a `usize`, for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// The rank as a `usize`, for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl CommId {
    /// The index as a `usize`, for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

impl From<u32> for CommId {
    fn from(v: u32) -> Self {
        CommId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(TaskId(7).to_string(), "t7");
        assert_eq!(CommId(0).to_string(), "c0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(CommId(0) < CommId(10));
    }

    #[test]
    fn idx_round_trips() {
        assert_eq!(NodeId(42).idx(), 42);
        assert_eq!(NodeId::from(42u32), NodeId(42));
    }
}
