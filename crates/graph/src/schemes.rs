//! Every communication scheme of the paper, plus synthetic generators.
//!
//! Topologies were reconstructed from the mangled xymatrix figures and
//! verified numerically against every number the paper prints (see
//! `ARCHITECTURE.md` for the forensics). All constructors default to the
//! paper's 20 MB payload unless noted; use
//! [`CommGraph::with_uniform_size`] to rescale.

use crate::graph::CommGraph;
use crate::ids::NodeId;
use crate::units::MB;
use rand::prelude::IndexedRandom;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Default payload used by the paper's penalty measurements (§IV.B).
pub const DEFAULT_SIZE: u64 = 20 * MB;

/// Fig. 2 scheme 1: a single communication `a(0→1)` (penalty 1 by
/// definition of the reference time).
pub fn single() -> CommGraph {
    let mut g = CommGraph::named("fig2-1");
    g.add("a", 0u32, 1u32, DEFAULT_SIZE);
    g
}

/// `k` communications all leaving node 0 towards distinct nodes — the pure
/// outgoing-conflict ladder used to estimate β (§V.A). `k = 1, 2, 3` are
/// Fig. 2 schemes 1–3.
pub fn outgoing_ladder(k: usize) -> CommGraph {
    assert!(k >= 1, "ladder needs at least one communication");
    let mut g = CommGraph::named(format!("out-ladder-{k}"));
    for i in 0..k {
        g.add_auto(0u32, (i + 1) as u32, DEFAULT_SIZE);
    }
    g
}

/// The mirror ladder: `k` communications from distinct nodes all entering
/// node 0 — pure income conflict.
pub fn incoming_ladder(k: usize) -> CommGraph {
    assert!(k >= 1, "ladder needs at least one communication");
    let mut g = CommGraph::named(format!("in-ladder-{k}"));
    for i in 0..k {
        g.add_auto((i + 1) as u32, 0u32, DEFAULT_SIZE);
    }
    g
}

/// Fig. 2 scheme `n` (1-based, `n ∈ 1..=6`).
///
/// Schemes 1–3 are the outgoing ladder from node 0; schemes 4–6 add
/// communications *into* node 0 from fresh nodes (`d(4→0)`, `e(5→0)`,
/// `f(6→0)`), creating income/outgo conflicts at node 0's NIC.
pub fn fig2_scheme(n: usize) -> CommGraph {
    assert!((1..=6).contains(&n), "Fig. 2 has schemes 1..=6, got {n}");
    let mut g = CommGraph::named(format!("fig2-{n}"));
    for i in 0..n.min(3) {
        g.add_auto(0u32, (i + 1) as u32, DEFAULT_SIZE);
    }
    for i in 0..n.saturating_sub(3) {
        g.add_auto((4 + i) as u32, 0u32, DEFAULT_SIZE);
    }
    g
}

/// Fig. 1's three-node concurrent scheme: node 0 pure outgoing, node 1 pure
/// income, node 2 mixed income/outgo. Illustrates the taxonomy of §IV.A.
pub fn fig1() -> CommGraph {
    let mut g = CommGraph::named("fig1");
    g.add("a", 0u32, 3u32, DEFAULT_SIZE); // outgoes node 0
    g.add("b", 0u32, 4u32, DEFAULT_SIZE); // outgoes node 0
    g.add("c", 5u32, 1u32, DEFAULT_SIZE); // incomes node 1
    g.add("d", 6u32, 1u32, DEFAULT_SIZE); // incomes node 1
    g.add("e", 2u32, 7u32, DEFAULT_SIZE); // outgoes node 2 …
    g.add("f", 8u32, 2u32, DEFAULT_SIZE); // … while f incomes node 2
    g
}

/// Fig. 4's γ-calibration graph (message size 4 MB in the paper):
/// `a(0→1) b(0→2) c(0→3) d(1→2) e(1→3) f(2→3)`.
///
/// γo is observed on `a` (node 0 emission side), γi on `f` (node 3
/// reception side). Reproduces the paper's predicted times with
/// β=0.75, γo=0.115, γi=0.036.
pub fn fig4(size: u64) -> CommGraph {
    let mut g = CommGraph::named("fig4");
    g.add("a", 0u32, 1u32, size);
    g.add("b", 0u32, 2u32, size);
    g.add("c", 0u32, 3u32, size);
    g.add("d", 1u32, 2u32, size);
    g.add("e", 1u32, 3u32, size);
    g.add("f", 2u32, 3u32, size);
    g
}

/// Fig. 5's Myrinet example graph:
/// `a(0→3) b(0→2) c(0→1) d(4→3) e(2→3) f(2→5)`.
///
/// Under the strict conflict rule this has exactly 5 maximal state sets
/// with emission sums `a=1 b=2 c=2 d=2 e=2 f=3`, reproducing the Fig. 6
/// table verbatim (penalties `5, 5, 5, 2.5, 2.5, 2.5`).
pub fn fig5() -> CommGraph {
    let mut g = CommGraph::named("fig5");
    g.add("a", 0u32, 3u32, DEFAULT_SIZE);
    g.add("b", 0u32, 2u32, DEFAULT_SIZE);
    g.add("c", 0u32, 1u32, DEFAULT_SIZE);
    g.add("d", 4u32, 3u32, DEFAULT_SIZE);
    g.add("e", 2u32, 3u32, DEFAULT_SIZE);
    g.add("f", 2u32, 5u32, DEFAULT_SIZE);
    g
}

/// Fig. 7 MK1 — the synthetic *tree*:
/// `a(0→1) b(0→2) c(3→6) g(3→7) d(4→1) f(6→2) e(1→5)`.
///
/// Conflict components under the strict rule: the path `d–a–b–f`, the pair
/// `{c,g}` and the isolated `{e}`. With `tref = 0.0354 s` the fluid solver
/// reproduces the paper's predicted column
/// (`a,b → 0.089  c,g → 0.071  d,f → 0.053  e → 0.035`).
pub fn mk1() -> CommGraph {
    let mut g = CommGraph::named("mk1");
    g.add("a", 0u32, 1u32, DEFAULT_SIZE);
    g.add("b", 0u32, 2u32, DEFAULT_SIZE);
    g.add("c", 3u32, 6u32, DEFAULT_SIZE);
    g.add("d", 4u32, 1u32, DEFAULT_SIZE);
    g.add("e", 1u32, 5u32, DEFAULT_SIZE);
    g.add("f", 6u32, 2u32, DEFAULT_SIZE);
    g.add("g", 3u32, 7u32, DEFAULT_SIZE);
    g
}

/// Fig. 7 MK2 — the *complete graph* on 5 nodes, one communication per
/// unordered node pair:
/// `a(0→1) b(0→2) c(0→3) d(0→4) e(2→1) f(1→4) g(1→3) h(4→3) i(4→2) j(3→2)`.
///
/// Fluid-solver predictions reproduce the paper's column
/// (`a–d → 0.177  e → 0.053  f,g → 0.085  h,i → 0.101  j → 0.073`).
pub fn mk2() -> CommGraph {
    let mut g = CommGraph::named("mk2");
    g.add("a", 0u32, 1u32, DEFAULT_SIZE);
    g.add("b", 0u32, 2u32, DEFAULT_SIZE);
    g.add("c", 0u32, 3u32, DEFAULT_SIZE);
    g.add("d", 0u32, 4u32, DEFAULT_SIZE);
    g.add("e", 2u32, 1u32, DEFAULT_SIZE);
    g.add("f", 1u32, 4u32, DEFAULT_SIZE);
    g.add("g", 1u32, 3u32, DEFAULT_SIZE);
    g.add("h", 4u32, 3u32, DEFAULT_SIZE);
    g.add("i", 4u32, 2u32, DEFAULT_SIZE);
    g.add("j", 3u32, 2u32, DEFAULT_SIZE);
    g
}

/// A directed ring `0→1→…→(n−1)→0` — HPL's panel-pipeline pattern
/// ("each task n sends to task n+1", §VI.D).
pub fn ring(n: usize, size: u64) -> CommGraph {
    assert!(n >= 2, "ring needs at least two nodes");
    let mut g = CommGraph::named(format!("ring-{n}"));
    for i in 0..n {
        g.add_auto(i as u32, ((i + 1) % n) as u32, size);
    }
    g
}

/// Oriented complete graph K_n: one communication per unordered pair, the
/// direction chosen from the lower-indexed node when `low_to_high`, else
/// alternating by parity for a mixed pattern.
pub fn complete(n: usize, size: u64, low_to_high: bool) -> CommGraph {
    assert!(n >= 2, "complete graph needs at least two nodes");
    let mut g = CommGraph::named(format!("k{n}"));
    for i in 0..n {
        for j in (i + 1)..n {
            let (s, d) = if low_to_high || (i + j) % 2 == 0 {
                (i, j)
            } else {
                (j, i)
            };
            g.add_auto(s as u32, d as u32, size);
        }
    }
    g
}

/// A balanced binary-tree broadcast: node 0 the root, each parent sends to
/// its two children, `depth` levels below the root.
pub fn binary_tree(depth: usize, size: u64) -> CommGraph {
    let mut g = CommGraph::named(format!("btree-{depth}"));
    let nodes = (1usize << (depth + 1)) - 1;
    for p in 0..nodes {
        for c in [2 * p + 1, 2 * p + 2] {
            if c < nodes {
                g.add_auto(p as u32, c as u32, size);
            }
        }
    }
    g
}

/// All-to-one incast: `k` senders to node 0 (same as [`incoming_ladder`]
/// with explicit size).
pub fn incast(k: usize, size: u64) -> CommGraph {
    incoming_ladder(k).with_uniform_size(size)
}

/// A uniformly random scheme: `comms` communications over `nodes` nodes,
/// no self-loops, duplicate (src,dst) pairs allowed (multigraph), seeded
/// for reproducibility.
pub fn random(nodes: usize, comms: usize, size: u64, seed: u64) -> CommGraph {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = CommGraph::named(format!("rand-{nodes}n-{comms}c-{seed}"));
    for _ in 0..comms {
        let s = rng.random_range(0..nodes) as u32;
        let mut d = rng.random_range(0..nodes - 1) as u32;
        if d >= s {
            d += 1;
        }
        g.add_auto(s, d, size);
    }
    g
}

/// A random *permutation* scheme: every node sends to a distinct target
/// (no shared sources, no shared destinations — conflict-free under the
/// strict rule unless a node sends to itself, which is excluded by
/// derangement retry).
pub fn random_permutation(nodes: usize, size: u64, seed: u64) -> CommGraph {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let targets: Vec<usize>;
    loop {
        let mut t: Vec<usize> = (0..nodes).collect();
        // Fisher–Yates
        for i in (1..nodes).rev() {
            let j = rng.random_range(0..=i);
            t.swap(i, j);
        }
        if t.iter().enumerate().all(|(i, &x)| i != x) {
            targets = t;
            break;
        }
    }
    let mut g = CommGraph::named(format!("perm-{nodes}n-{seed}"));
    for (s, &d) in targets.iter().enumerate() {
        g.add_auto(s as u32, d as u32, size);
    }
    g
}

/// A random scheme with bounded degrees, useful for stressing the state-set
/// enumeration without exponential blow-up: each node emits at most
/// `max_out` and receives at most `max_in` communications.
pub fn random_bounded(
    nodes: usize,
    comms: usize,
    max_out: usize,
    max_in: usize,
    size: u64,
    seed: u64,
) -> CommGraph {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0usize; nodes];
    let mut inn = vec![0usize; nodes];
    let mut g = CommGraph::named(format!("randb-{nodes}n-{comms}c-{seed}"));
    let mut attempts = 0;
    while g.len() < comms && attempts < comms * 50 {
        attempts += 1;
        let candidates_s: Vec<usize> = (0..nodes).filter(|&v| out[v] < max_out).collect();
        let candidates_d: Vec<usize> = (0..nodes).filter(|&v| inn[v] < max_in).collect();
        let (Some(&s), Some(&d)) = (
            candidates_s.as_slice().choose(&mut rng),
            candidates_d.as_slice().choose(&mut rng),
        ) else {
            break;
        };
        if s == d {
            continue;
        }
        out[s] += 1;
        inn[d] += 1;
        g.add_auto(s as u32, d as u32, size);
    }
    g
}

/// Maps every endpoint node through `f` — used to re-express a task-level
/// scheme as a node-level scheme after placement.
pub fn map_nodes(graph: &CommGraph, f: impl Fn(NodeId) -> NodeId) -> CommGraph {
    let mut g = CommGraph::named(graph.name().to_string());
    for (_, label, c) in graph.iter() {
        g.add(label.to_string(), f(c.src), f(c.dst), c.size);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{ConflictGraph, ConflictRule};

    #[test]
    fn fig2_schemes_have_expected_shapes() {
        for n in 1..=6 {
            let g = fig2_scheme(n);
            assert_eq!(g.len(), n, "scheme {n}");
        }
        let g4 = fig2_scheme(4);
        assert_eq!(g4.out_degree(NodeId(0)), 3);
        assert_eq!(g4.in_degree(NodeId(0)), 1);
        let g6 = fig2_scheme(6);
        assert_eq!(g6.in_degree(NodeId(0)), 3);
    }

    #[test]
    #[should_panic(expected = "schemes 1..=6")]
    fn fig2_range_checked() {
        fig2_scheme(7);
    }

    #[test]
    fn ladders() {
        let g = outgoing_ladder(3);
        assert_eq!(g.out_degree(NodeId(0)), 3);
        assert!(g.comms().iter().all(|c| c.size == DEFAULT_SIZE));
        let g = incoming_ladder(4);
        assert_eq!(g.in_degree(NodeId(0)), 4);
    }

    #[test]
    fn fig5_shape() {
        let g = fig5();
        assert_eq!(g.len(), 6);
        assert_eq!(g.out_degree(NodeId(0)), 3);
        assert_eq!(g.in_degree(NodeId(3)), 3);
        assert_eq!(g.out_degree(NodeId(2)), 2);
    }

    #[test]
    fn mk1_is_a_tree_on_nodes() {
        let g = mk1();
        assert_eq!(g.len(), 7);
        assert_eq!(g.nodes().len(), 8); // 8 nodes, 7 edges, connected ⇒ tree
    }

    #[test]
    fn mk2_is_oriented_k5() {
        let g = mk2();
        assert_eq!(g.len(), 10);
        assert_eq!(g.nodes().len(), 5);
        // each unordered pair exactly once
        let mut pairs: Vec<(u32, u32)> = g
            .comms()
            .iter()
            .map(|c| {
                let (a, b) = (c.src.0, c.dst.0);
                (a.min(b), a.max(b))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 10);
    }

    #[test]
    fn ring_and_complete_generators() {
        let r = ring(5, 100);
        assert_eq!(r.len(), 5);
        assert!(r.comms().iter().all(|c| !c.is_intra_node()));
        let k = complete(5, 100, true);
        assert_eq!(k.len(), 10);
        let k_mixed = complete(4, 100, false);
        assert_eq!(k_mixed.len(), 6);
    }

    #[test]
    fn binary_tree_counts() {
        let t = binary_tree(2, 1); // 7 nodes, 6 edges
        assert_eq!(t.len(), 6);
        assert_eq!(t.nodes().len(), 7);
    }

    #[test]
    fn random_is_reproducible_and_loop_free() {
        let a = random(8, 20, 100, 42);
        let b = random(8, 20, 100, 42);
        assert_eq!(a, b);
        assert!(a.comms().iter().all(|c| !c.is_intra_node()));
        let c = random(8, 20, 100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_is_conflict_free_under_strict_rule() {
        for seed in 0..5 {
            let g = random_permutation(10, 100, seed);
            assert_eq!(g.len(), 10);
            let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
            assert_eq!(cg.edge_count(), 0, "seed {seed}");
        }
    }

    #[test]
    fn bounded_random_respects_degrees() {
        let g = random_bounded(10, 24, 2, 3, 100, 7);
        for v in g.nodes() {
            assert!(g.out_degree(v) <= 2);
            assert!(g.in_degree(v) <= 3);
        }
    }

    #[test]
    fn map_nodes_relabels() {
        let g = ring(4, 10);
        let h = map_nodes(&g, |n| NodeId(n.0 * 2));
        assert_eq!(h.comm(crate::ids::CommId(0)).src, NodeId(0));
        assert_eq!(h.comm(crate::ids::CommId(0)).dst, NodeId(2));
        assert_eq!(h.len(), 4);
    }
}
