//! Penalty-evaluation throughput of every model on the paper's schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbw::core::ModelKind;
use netbw::graph::schemes;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    let graphs = [schemes::fig5(), schemes::mk1(), schemes::mk2()];
    for kind in ModelKind::ALL {
        let model = kind.build();
        for g in &graphs {
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), g.name()),
                g.comms(),
                |b, comms| b.iter(|| black_box(model.penalties(black_box(comms)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
