//! Packet-fabric event throughput: whole-scheme runs per fabric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbw::graph::schemes;
use netbw::graph::units::MB;
use netbw::prelude::*;
use std::hint::black_box;

fn bench_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet");
    group.sample_size(20);
    for cfg in FabricConfig::paper_fabrics() {
        for (name, g) in [
            (
                "ladder3",
                schemes::outgoing_ladder(3).with_uniform_size(4 * MB),
            ),
            ("fig5", schemes::fig5().with_uniform_size(4 * MB)),
            ("mk2", schemes::mk2().with_uniform_size(4 * MB)),
        ] {
            let mut fab = PacketFabric::new(cfg, 8);
            group.bench_with_input(BenchmarkId::new(cfg.name, name), &g, |b, g| {
                b.iter(|| black_box(fab.run_scheme(black_box(g))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_packet);
criterion_main!(benches);
