//! End-to-end HPL prediction cost: trace generation + replay against the
//! fluid-model backend (the Fig. 8/9 pipeline, prediction side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbw::prelude::*;
use std::hint::black_box;

fn bench_hpl(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpl");
    group.sample_size(10);
    for (name, n) in [("n1024", 1024usize), ("n2048", 2048), ("n4096", 4096)] {
        let hpl = HplConfig {
            n,
            nb: 128,
            tasks: 8,
            ..HplConfig::paper()
        };
        let cluster = ClusterSpec::smp(4);
        group.bench_with_input(BenchmarkId::new("trace-gen", name), &hpl, |b, hpl| {
            b.iter(|| black_box(hpl.trace()))
        });
        group.bench_with_input(BenchmarkId::new("predict-myrinet", name), &hpl, |b, hpl| {
            let trace = hpl.trace();
            b.iter(|| {
                let placement =
                    Placement::assign(&PlacementPolicy::RoundRobinNode, trace.len(), &cluster);
                let backend =
                    FluidNetwork::new(MyrinetModel::default(), NetworkParams::myrinet2000());
                black_box(
                    Simulator::new(&trace, cluster, placement, backend)
                        .run()
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hpl);
criterion_main!(benches);
