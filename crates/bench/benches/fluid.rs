//! Fluid-solver throughput: phase-by-phase integration on paper schemes
//! and growing random batteries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbw::graph::schemes;
use netbw::prelude::*;
use std::hint::black_box;

fn bench_fluid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid");
    for g in [
        schemes::fig5().with_uniform_size(1000),
        schemes::mk1().with_uniform_size(1000),
        schemes::mk2().with_uniform_size(1000),
    ] {
        group.bench_with_input(BenchmarkId::new("myrinet", g.name()), &g, |b, g| {
            let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
            b.iter(|| black_box(solver.solve(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("gige", g.name()), &g, |b, g| {
            let mut solver =
                FluidSolver::new(GigabitEthernetModel::default(), NetworkParams::unit());
            b.iter(|| black_box(solver.solve(black_box(g))))
        });
    }
    for n in [16usize, 32, 64] {
        let g = schemes::random_bounded(n, n, 3, 3, 1000, 7);
        group.bench_with_input(BenchmarkId::new("random-myrinet", n), &g, |b, g| {
            let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
            b.iter(|| black_box(solver.solve(black_box(g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fluid);
criterion_main!(benches);
