//! Incremental vs full-recompute penalty engine on a high-churn workload.
//!
//! 512 bounded-degree flows over 256 nodes with staggered starts: the
//! contending population churns at every arrival and completion, which is
//! the worst case for the pre-refactor engine (a full model query per
//! solver iteration *and* per `next_event_time` probe). The incremental
//! engine settles once per population change and serves every probe from
//! the `PenaltyCache`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbw::graph::schemes;
use netbw::graph::Communication;
use netbw::prelude::*;
use std::hint::black_box;

const FLOWS: usize = 512;

/// The churn scenario: `FLOWS` transfers with starts staggered by
/// `stagger` seconds so that many are in flight at any instant and the
/// population changes at every event. GigE's closed form tolerates ~400
/// concurrent flows; the Myrinet state-set enumeration gets a wider
/// stagger (~100 concurrent) to keep a single drain under a second.
fn churn_transfers(stagger: f64) -> Vec<(u64, Communication, f64)> {
    let g = schemes::random_bounded(FLOWS / 2, FLOWS, 3, 3, 10_000, 20080);
    g.comms()
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64, c, stagger * i as f64))
        .collect()
}

fn stagger_for(kind: ModelKind) -> f64 {
    match kind {
        ModelKind::Myrinet => 100.0,
        _ => 25.0,
    }
}

fn drain<M: PenaltyModel>(
    model: M,
    stagger: f64,
    full_recompute: bool,
) -> (usize, netbw::fluid::CacheStats) {
    let mut net = FluidNetwork::new(model, NetworkParams::unit());
    if full_recompute {
        net = net.with_full_recompute();
    }
    for &(key, comm, start) in &churn_transfers(stagger) {
        net.add(key, comm, start);
    }
    let done = net.run_to_completion().len();
    (done, net.cache_stats())
}

fn bench_churn(c: &mut Criterion) {
    // One-off evidence that both engines do the same work with very
    // different model-query counts (the benched quantity is wall time).
    for (name, full) in [("incremental", false), ("full-recompute", true)] {
        let (done, stats) = drain(GigabitEthernetModel::default(), 25.0, full);
        assert_eq!(done, FLOWS);
        println!(
            "churn/{name}: {FLOWS} flows, {} model queries, {} cache reuses",
            stats.model_queries, stats.reuses
        );
    }

    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    for (model_name, kind) in [
        ("gige", ModelKind::GigabitEthernet),
        ("myrinet", ModelKind::Myrinet),
    ] {
        group.bench_with_input(
            BenchmarkId::new("incremental", model_name),
            &kind,
            |b, &kind| b.iter(|| black_box(drain(kind.build(), stagger_for(kind), false).0)),
        );
        group.bench_with_input(
            BenchmarkId::new("full-recompute", model_name),
            &kind,
            |b, &kind| b.iter(|| black_box(drain(kind.build(), stagger_for(kind), true).0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
