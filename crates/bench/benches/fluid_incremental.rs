//! Incremental vs full-recompute penalty engine on high-churn workloads.
//!
//! Bounded-degree flows over many nodes with staggered starts (the shared
//! `netbw_bench::churn_transfers` workload, also enforced in CI by the
//! `churn_smoke` binary): the contending population churns at every
//! arrival and completion, which is the worst case for the pre-refactor
//! engine (a full model query per solver iteration *and* per
//! `next_event_time` probe). The incremental engine settles once per
//! population change, serves every probe from the `PenaltyCache`, and —
//! since the slab refactor — hands the models a positional
//! `PopulationDelta` so each settle recomputes only the affected
//! endpoints (GigE/InfiniBand) or conflict components (Myrinet).
//!
//! Two sizes: the 512-flow workload benched since PR 1, and a 2048-flow
//! scale-up where the O(affected) patching dominates: per-event model
//! work no longer grows with the fabric, so the gap over the
//! full-recompute oracle widens. Since the scratch refactor the models
//! also keep their endpoint indices / union–find components alive in
//! per-cache scratch state, and mixed arrival+departure batches stay
//! positional — the printed counters split deltas *offered* from patches
//! *performed* to prove it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbw::prelude::*;
use netbw_bench::{churn_stagger, churn_transfers, drain_churn_mode, EngineMode};
use std::hint::black_box;

const MODES: [(&str, EngineMode); 3] = [
    ("incremental", EngineMode::Heap),
    ("linear-timeline", EngineMode::LinearTimeline),
    ("full-recompute", EngineMode::FullRecompute),
];

fn bench_churn_size(c: &mut Criterion, flows: usize, sample_size: usize) {
    // One-off evidence that all engines do the same work with very
    // different model-query and event-scan profiles (the benched quantity
    // is wall time).
    for (name, mode) in MODES {
        let transfers = churn_transfers(flows, 25.0);
        let (done, stats, timeline) =
            drain_churn_mode(GigabitEthernetModel::default(), &transfers, mode);
        assert_eq!(done, flows);
        println!(
            "churn{flows}/{name}: {flows} flows, {} model queries \
             ({} carrying positional deltas, {} patched, {} scratch rebuilds, \
             {} budget fallbacks), {} cache reuses, {} heap pushes \
             ({} lazy pops, {} rescans)",
            stats.model_queries,
            stats.delta_queries,
            stats.patched_queries,
            stats.scratch_rebuilds,
            stats.budget_fallbacks,
            stats.reuses,
            timeline.heap_pushes,
            timeline.lazy_pops,
            timeline.rescans,
        );
    }

    let mut group = c.benchmark_group(format!("churn{flows}"));
    group.sample_size(sample_size);
    for (model_name, kind) in [
        ("gige", ModelKind::GigabitEthernet),
        ("myrinet", ModelKind::Myrinet),
    ] {
        let transfers = churn_transfers(flows, churn_stagger(kind));
        for (mode_name, mode) in MODES {
            group.bench_with_input(
                BenchmarkId::new(mode_name, model_name),
                &kind,
                |b, &kind| b.iter(|| black_box(drain_churn_mode(kind.build(), &transfers, mode).0)),
            );
        }
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    bench_churn_size(c, 512, 10);
    bench_churn_size(c, 2048, 5);
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
