//! ABL-2 — state-set enumeration scaling: Bron–Kerbosch with pivoting vs
//! the naive variant, on random bounded-degree schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbw::core::states::{
    enumerate_components, enumerate_components_naive, DEFAULT_STATE_SET_BUDGET,
};
use netbw::graph::conflict::{ConflictGraph, ConflictRule};
use netbw::graph::schemes;
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("stateset");
    for comms in [8usize, 12, 16, 20] {
        let g = schemes::random_bounded(comms, comms, 3, 3, 1, 42);
        let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
        group.bench_with_input(BenchmarkId::new("pivot", comms), &cg, |b, cg| {
            b.iter(|| black_box(enumerate_components(cg, DEFAULT_STATE_SET_BUDGET).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("naive", comms), &cg, |b, cg| {
            b.iter(|| black_box(enumerate_components_naive(cg, DEFAULT_STATE_SET_BUDGET).unwrap()))
        });
    }
    // the paper's own graphs
    for g in [schemes::fig5(), schemes::mk1(), schemes::mk2()] {
        let cg = ConflictGraph::build(g.comms(), ConflictRule::Strict);
        group.bench_with_input(BenchmarkId::new("paper", g.name()), &cg, |b, cg| {
            b.iter(|| black_box(enumerate_components(cg, DEFAULT_STATE_SET_BUDGET).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
