//! CI smoke check: the incremental penalty engine must stay ahead of the
//! `with_full_recompute` oracle on the shared churn workloads.
//!
//! Run with `cargo run --release -p netbw-bench --bin churn_smoke`.
//! Exits non-zero (panics) when the incremental engine loses its lead in
//! model queries, delta share, or wall-clock time — the regression the
//! bench baselines exist to catch. Two groups run by default: the 512-flow
//! workload benched since PR 1 (GigE + Myrinet), and the 2048-flow Myrinet
//! group where mixed arrival+departure batches used to dominate the
//! rebuild count — there the guard demands that >90% of settle queries
//! both carry positional deltas *and* are actually patched by the model
//! (the regime chained mixed deltas and the per-cache scratch exist to
//! fix). Pass `--flows N` to override the default group's size. The
//! workload itself is `netbw_bench::churn_transfers`, shared with the
//! `fluid_incremental` bench and the engine proptests so all of them
//! measure the same scenario.

use netbw::fluid::CacheStats;
use netbw::graph::Communication;
use netbw::prelude::*;
use netbw_bench::{churn_stagger, churn_transfers, drain_churn};
use std::time::{Duration, Instant};

/// Drains twice and keeps the faster run, so a single scheduler stall on
/// a noisy CI runner cannot flip the wall-clock comparison.
fn timed_drain(
    kind: ModelKind,
    transfers: &[(u64, Communication, f64)],
    full_recompute: bool,
) -> (Duration, CacheStats) {
    let mut best: Option<(Duration, CacheStats)> = None;
    for _ in 0..2 {
        let t0 = Instant::now();
        let (done, stats) = drain_churn(kind.build(), transfers, full_recompute);
        let elapsed = t0.elapsed();
        assert_eq!(done, transfers.len(), "engine lost flows");
        if best.is_none_or(|(t, _)| elapsed < t) {
            best = Some((elapsed, stats));
        }
    }
    best.expect("two runs happened")
}

/// Drains one workload through both engines, printing the scratch-era
/// counter set, and enforces the generic invariants: fewer model queries,
/// a healthy positional-delta share, patches ≤ deltas, and no wall-clock
/// regression. Returns the incremental stats for group-specific guards.
fn check(name: &str, kind: ModelKind, flows: usize) -> CacheStats {
    let transfers = churn_transfers(flows, churn_stagger(kind));
    let (t_inc, s_inc) = timed_drain(kind, &transfers, false);
    let (t_full, s_full) = timed_drain(kind, &transfers, true);
    println!(
        "{name}: {flows} flows | incremental {t_inc:?} ({} queries: {} carrying deltas, \
         {} patched, {} scratch rebuilds, {} budget fallbacks; {} reuses) \
         | full-recompute {t_full:?} ({} queries)",
        s_inc.model_queries,
        s_inc.delta_queries,
        s_inc.patched_queries,
        s_inc.scratch_rebuilds,
        s_inc.budget_fallbacks,
        s_inc.reuses,
        s_full.model_queries,
    );
    assert!(
        s_inc.model_queries < s_full.model_queries,
        "{name}: incremental must issue fewer model queries \
         ({} vs {})",
        s_inc.model_queries,
        s_full.model_queries
    );
    // Most settles should reach the model as positional deltas — since
    // mixed-delta chaining, rebuilds are essentially just the first
    // settle — and a patch can only happen where a delta was offered.
    assert!(
        s_inc.delta_queries > s_inc.model_queries / 4,
        "{name}: too few queries carried positional deltas: {s_inc:?}"
    );
    assert!(
        s_inc.patched_queries <= s_inc.delta_queries,
        "{name}: more patches than deltas makes no sense: {s_inc:?}"
    );
    assert!(
        t_inc <= t_full,
        "{name}: incremental engine fell behind the full-recompute oracle \
         ({t_inc:?} vs {t_full:?})"
    );
    s_inc
}

/// Share of model queries satisfying `count`, as a fraction.
fn share(count: u64, stats: &CacheStats) -> f64 {
    count as f64 / stats.model_queries.max(1) as f64
}

fn main() {
    let mut flows = 512usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--flows" {
            flows = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--flows takes a number");
        }
    }
    check("gige", ModelKind::GigabitEthernet, flows);
    check("myrinet", ModelKind::Myrinet, flows);

    // The high-concurrency Myrinet group: wide staggering makes gate
    // openings and completions coincide, so before mixed-delta chaining
    // only ~33% of these settles carried deltas (744/2237). The guard
    // pins the fix: >90% must carry deltas and >90% must actually patch.
    let s = check("myrinet-2048", ModelKind::Myrinet, 2048);
    let delta_share = share(s.delta_queries, &s);
    let patch_share = share(s.patched_queries, &s);
    println!(
        "myrinet-2048: delta share {:.1}%, patch share {:.1}%",
        delta_share * 100.0,
        patch_share * 100.0
    );
    assert!(
        delta_share > 0.9,
        "myrinet-2048: delta share regressed to {delta_share:.3}: {s:?}"
    );
    assert!(
        patch_share > 0.9,
        "myrinet-2048: patch share regressed to {patch_share:.3}: {s:?}"
    );
    println!("churn smoke: incremental engine ahead on all groups");
}
