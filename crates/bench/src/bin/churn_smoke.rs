//! CI smoke check: the incremental penalty engine must stay ahead of the
//! `with_full_recompute` oracle on the 512-flow churn workload.
//!
//! Run with `cargo run --release -p netbw-bench --bin churn_smoke`.
//! Exits non-zero (panics) when the incremental engine loses its lead in
//! model queries, delta share, or wall-clock time — the regression the
//! bench baselines exist to catch. Pass `--flows N` to override the
//! workload size. The workload itself is `netbw_bench::churn_transfers`,
//! shared with the `fluid_incremental` bench so both measure the same
//! scenario.

use netbw::fluid::CacheStats;
use netbw::graph::Communication;
use netbw::prelude::*;
use netbw_bench::{churn_stagger, churn_transfers, drain_churn};
use std::time::{Duration, Instant};

/// Drains twice and keeps the faster run, so a single scheduler stall on
/// a noisy CI runner cannot flip the wall-clock comparison.
fn timed_drain(
    kind: ModelKind,
    transfers: &[(u64, Communication, f64)],
    full_recompute: bool,
) -> (Duration, CacheStats) {
    let mut best: Option<(Duration, CacheStats)> = None;
    for _ in 0..2 {
        let t0 = Instant::now();
        let (done, stats) = drain_churn(kind.build(), transfers, full_recompute);
        let elapsed = t0.elapsed();
        assert_eq!(done, transfers.len(), "engine lost flows");
        if best.is_none_or(|(t, _)| elapsed < t) {
            best = Some((elapsed, stats));
        }
    }
    best.expect("two runs happened")
}

fn check(name: &str, kind: ModelKind, flows: usize) {
    let transfers = churn_transfers(flows, churn_stagger(kind));
    let (t_inc, s_inc) = timed_drain(kind, &transfers, false);
    let (t_full, s_full) = timed_drain(kind, &transfers, true);
    println!(
        "{name}: {flows} flows | incremental {:?} ({} queries, {} carrying deltas, {} reuses) \
         | full-recompute {:?} ({} queries)",
        t_inc, s_inc.model_queries, s_inc.delta_queries, s_inc.reuses, t_full, s_full.model_queries,
    );
    assert!(
        s_inc.model_queries < s_full.model_queries,
        "{name}: incremental must issue fewer model queries \
         ({} vs {})",
        s_inc.model_queries,
        s_full.model_queries
    );
    // Most settles should reach the model as positional deltas (model-side
    // reuse of those deltas is pinned by the poison unit tests in
    // netbw-core); at high concurrency mixed batches legitimately rebuild,
    // so require a healthy share rather than a majority.
    assert!(
        s_inc.delta_queries > s_inc.model_queries / 4,
        "{name}: too few queries carried positional deltas: {s_inc:?}"
    );
    assert!(
        t_inc <= t_full,
        "{name}: incremental engine fell behind the full-recompute oracle \
         ({t_inc:?} vs {t_full:?})"
    );
}

fn main() {
    let mut flows = 512usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--flows" {
            flows = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--flows takes a number");
        }
    }
    check("gige", ModelKind::GigabitEthernet, flows);
    check("myrinet", ModelKind::Myrinet, flows);
    println!("churn smoke: incremental engine ahead on both models");
}
