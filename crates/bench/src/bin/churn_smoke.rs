//! CI smoke check: the incremental penalty engine must stay ahead of the
//! `with_full_recompute` oracle on the shared churn workloads, and the
//! event-driven heap timeline must stay ahead of the linear-scan engine
//! it replaced.
//!
//! Run with `cargo run --release -p netbw-bench --bin churn_smoke`.
//! Exits non-zero (panics) when an engine loses its lead in model
//! queries, delta share, or wall-clock time — the regressions the bench
//! baselines exist to catch. Groups:
//!
//! * the 512-flow workload benched since PR 1 (GigE + Myrinet), where
//!   the heap engine must additionally never lose to the linear-scan
//!   engine (within a small noise slack — at 512 flows the slab is tiny
//!   and the O(n) scan is nearly free);
//! * the 2048-flow Myrinet group pinning the mixed-delta/patch shares
//!   (>90% of settles must carry positional deltas and actually patch);
//! * the 100k-flow GigE group, where every flow is added up front so the
//!   slab holds 100k slots while only a few hundred contend — the regime
//!   the finish-time heap exists for. Both engines drain the same
//!   fixed completion prefix (a full linear drain is O(events x slots)
//!   and takes minutes); the heap must be ≥5x faster on the median and
//!   then also drain the full workload in bounded time.
//! * the `shard_smoke` group: a multi-component 65k-endpoint Myrinet
//!   churn (node-offset copies of the shared schedule, so events coincide
//!   across components and every settle barrier carries many dirty
//!   shards). On ≥4 cores the executor-dispatched sharded engine must be
//!   ≥1.5x faster than the heap engine on the median; on fewer cores it
//!   must merely never fall behind the heap beyond a noise slack.
//! * the `shard_split_smoke` group: steady arrive/depart bridge waves
//!   (`netbw_bench::bridge_wave_churn`) that merge the partition every
//!   wave and break it apart again when the bridges complete. The
//!   splitting engine must keep the partition multi-shard at every wave
//!   boundary and its per-wave settle cost flat over time; on ≥4 cores
//!   it must additionally drain ≥2x faster than the never-splitting
//!   `with_sharded_merge_only` ablation, which degrades to one
//!   mega-shard on the first wave and stays there.
//!
//! The medians land in `BENCH_timeline.json`, `BENCH_shard.json` and
//! `BENCH_split.json` (uploaded as CI artifacts next to
//! `BENCH_sweep.json`) so the perf trajectory is tracked. Pass
//! `--flows N`, `--big N`, `--prefix K`, `--comps N`, `--comp-flows N`,
//! `--shard-prefix K`, `--split-comps N`, `--split-waves N` to override
//! group sizes. The workload itself is `netbw_bench::churn_transfers`, shared
//! with the `fluid_incremental` bench and the engine proptests so all of
//! them measure the same scenario.

use netbw::eval::SweepExecutor;
use netbw::fluid::{CacheStats, TimelineStats};
use netbw::graph::Communication;
use netbw::prelude::*;
use netbw_bench::{
    bridge_wave_churn, churn_stagger, churn_transfers, drain_churn_mode, drain_churn_prefix,
    drain_prefix_into, multi_component_churn, EngineMode, CHURN_SEED,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Drains twice and keeps the faster run, so a single scheduler stall on
/// a noisy CI runner cannot flip a wall-clock comparison.
fn timed_drain(
    kind: ModelKind,
    transfers: &[(u64, Communication, f64)],
    mode: EngineMode,
) -> (Duration, CacheStats, TimelineStats) {
    let mut best: Option<(Duration, CacheStats, TimelineStats)> = None;
    for _ in 0..2 {
        let t0 = Instant::now();
        let (done, stats, timeline) = drain_churn_mode(kind.build(), transfers, mode);
        let elapsed = t0.elapsed();
        assert_eq!(done, transfers.len(), "engine lost flows");
        if best.as_ref().is_none_or(|&(t, _, _)| elapsed < t) {
            best = Some((elapsed, stats, timeline));
        }
    }
    best.expect("two runs happened")
}

/// Median of `reps` timed runs of `f` (keeps the last run's value).
fn median_time<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        last = Some(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("reps >= 1"))
}

/// Drains one workload through the heap engine, the linear-scan engine
/// and the full-recompute oracle, printing the counter sets, and
/// enforces the generic invariants: fewer model queries than the oracle,
/// a healthy positional-delta share, patches ≤ deltas, no wall-clock
/// regression against the oracle, and the heap never losing to the
/// linear scan by more than a noise slack. Returns the heap-engine
/// cache stats for group-specific guards.
fn check(name: &str, kind: ModelKind, flows: usize) -> CacheStats {
    let transfers = churn_transfers(flows, churn_stagger(kind));
    let (t_inc, s_inc, tl_inc) = timed_drain(kind, &transfers, EngineMode::Heap);
    let (t_lin, s_lin, _) = timed_drain(kind, &transfers, EngineMode::LinearTimeline);
    let (t_full, s_full, _) = timed_drain(kind, &transfers, EngineMode::FullRecompute);
    println!(
        "{name}: {flows} flows | heap {t_inc:?} ({} queries: {} carrying deltas, \
         {} patched, {} scratch rebuilds, {} budget fallbacks; {} reuses) \
         | linear {t_lin:?} ({} queries) | full-recompute {t_full:?} ({} queries)",
        s_inc.model_queries,
        s_inc.delta_queries,
        s_inc.patched_queries,
        s_inc.scratch_rebuilds,
        s_inc.budget_fallbacks,
        s_inc.reuses,
        s_lin.model_queries,
        s_full.model_queries,
    );
    println!(
        "{name}: timeline {} heap pushes, {} lazy pops, {} gate pushes, \
         {} gate heap hits, {} rescans",
        tl_inc.heap_pushes,
        tl_inc.lazy_pops,
        tl_inc.gate_pushes,
        tl_inc.gate_heap_hits,
        tl_inc.rescans,
    );
    assert!(
        s_inc.model_queries < s_full.model_queries,
        "{name}: incremental must issue fewer model queries \
         ({} vs {})",
        s_inc.model_queries,
        s_full.model_queries
    );
    assert_eq!(
        s_inc.model_queries, s_lin.model_queries,
        "{name}: the heap timeline must not change what the model is asked"
    );
    // Most settles should reach the model as positional deltas — since
    // mixed-delta chaining, rebuilds are essentially just the first
    // settle — and a patch can only happen where a delta was offered.
    assert!(
        s_inc.delta_queries > s_inc.model_queries / 4,
        "{name}: too few queries carried positional deltas: {s_inc:?}"
    );
    assert!(
        s_inc.patched_queries <= s_inc.delta_queries,
        "{name}: more patches than deltas makes no sense: {s_inc:?}"
    );
    // A full-population rescan is only legitimate where the model could
    // not scope the change: the first settle plus every scratch rebuild
    // (Myrinet's Moon–Moser budget refusals rebuild and report "all").
    assert!(
        tl_inc.rescans <= s_inc.scratch_rebuilds + 1,
        "{name}: heap engine rescanned beyond its rebuild budget: {tl_inc:?} vs {s_inc:?}"
    );
    assert!(
        t_inc <= t_full,
        "{name}: incremental engine fell behind the full-recompute oracle \
         ({t_inc:?} vs {t_full:?})"
    );
    // At this scale the linear scan is nearly free, so "never loses"
    // means within noise: 20% or 2ms, whichever is larger.
    let slack = (t_lin / 5).max(Duration::from_millis(2));
    assert!(
        t_inc <= t_lin + slack,
        "{name}: heap timeline lost to the linear scan it replaced \
         ({t_inc:?} vs {t_lin:?} + {slack:?} slack)"
    );
    s_inc
}

/// Share of model queries satisfying `count`, as a fraction.
fn share(count: u64, stats: &CacheStats) -> f64 {
    count as f64 / stats.model_queries.max(1) as f64
}

/// The 100k-flow group: both engines drain the same `prefix`-completion
/// prefix (median of `reps`), then the heap engine alone drains the full
/// workload. Returns the JSON line for `BENCH_timeline.json`.
fn check_big(flows: usize, prefix: usize, reps: usize) -> String {
    let kind = ModelKind::GigabitEthernet;
    let transfers = churn_transfers(flows, churn_stagger(kind));

    let (t_heap, (done_h, _, _)) = median_time(reps, || {
        drain_churn_prefix(kind.build(), &transfers, EngineMode::Heap, prefix)
    });
    let (t_lin, (done_l, _, _)) = median_time(reps, || {
        drain_churn_prefix(kind.build(), &transfers, EngineMode::LinearTimeline, prefix)
    });
    assert_eq!(done_h, done_l, "engines completed different prefixes");
    assert!(done_h >= prefix, "workload too small for the prefix");

    let (t_full, (done, _, tl)) = median_time(1, || {
        drain_churn_mode(kind.build(), &transfers, EngineMode::Heap)
    });
    assert_eq!(done, flows, "heap engine lost flows at {flows}");

    let speedup = t_lin.as_secs_f64() / t_heap.as_secs_f64();
    println!(
        "gige-{flows}: first {prefix} completions | heap {t_heap:?} | linear {t_lin:?} \
         ({speedup:.1}x) | full heap drain {t_full:?}"
    );
    println!(
        "gige-{flows}: timeline {} heap pushes, {} lazy pops, {} gate pushes, \
         {} gate heap hits, {} rescans",
        tl.heap_pushes, tl.lazy_pops, tl.gate_pushes, tl.gate_heap_hits, tl.rescans,
    );
    assert!(
        speedup >= 5.0,
        "gige-{flows}: heap timeline must be ≥5x faster than the linear scan \
         on the {prefix}-completion prefix, got {speedup:.2}x ({t_heap:?} vs {t_lin:?})"
    );
    assert!(
        tl.lazy_pops <= tl.heap_pushes,
        "gige-{flows}: more stale pops than pushes: {tl:?}"
    );

    format!(
        "{{\"flows\": {flows}, \"prefix\": {prefix}, \"heap_prefix_ms\": {:.3}, \
         \"linear_prefix_ms\": {:.3}, \"prefix_speedup\": {speedup:.3}, \
         \"heap_full_drain_ms\": {:.3}, \"heap_pushes\": {}, \"lazy_pops\": {}, \
         \"gate_heap_hits\": {}, \"rescans\": {}}}\n",
        t_heap.as_secs_f64() * 1e3,
        t_lin.as_secs_f64() * 1e3,
        t_full.as_secs_f64() * 1e3,
        tl.heap_pushes,
        tl.lazy_pops,
        tl.gate_heap_hits,
        tl.rescans,
    )
}

/// The `shard_smoke` group: a multi-component Myrinet churn (identical
/// node-offset schedule copies, so completions and gate openings coincide
/// across components and every settle barrier is wide) drained to a fixed
/// completion prefix through the heap engine, the serially-dispatched
/// sharded engine, and the sharded engine on the work-stealing executor.
/// Returns the JSON line for `BENCH_shard.json`.
fn check_shard(comps: usize, flows_per_comp: usize, prefix: usize, reps: usize) -> String {
    // A wider stagger than the other churn groups: it bounds the
    // *concurrent* population to a few flows per component (the rest of
    // the schedule is queued in the slab), which is the regime sharding
    // targets — a big fabric with churning traffic. With every copy in
    // flight at once the heap baseline's per-barrier sub-population
    // conflict-graph build goes quadratic in 131k flows and takes
    // minutes, which is a useless yardstick for a smoke test.
    let stagger = 3_500.0;
    let transfers = multi_component_churn(comps, flows_per_comp, stagger, CHURN_SEED);
    let endpoints = comps * (flows_per_comp.max(4) / 2);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let (t_heap, done_heap) = median_time(reps, || {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        drain_prefix_into(&mut net, &transfers, prefix)
    });
    let mut live_shards = 0;
    let mut budget_fallbacks = 0;
    let (t_serial, done_serial) = median_time(reps, || {
        let mut net =
            FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit()).with_sharded();
        let done = drain_prefix_into(&mut net, &transfers, prefix);
        live_shards = net.shard_count();
        budget_fallbacks = net.cache_stats().budget_fallbacks;
        done
    });
    // The speedup story rests on the partition surviving: a Myrinet
    // budget fallback would collapse it into one global shard (bitwise
    // equality demands it — see the fluid crate's shard docs) and the
    // "sharded" timings would silently measure the heap path. The
    // workload keeps components small enough to stay Moon–Moser
    // certified, and this guard pins that.
    assert_eq!(
        budget_fallbacks, 0,
        "shard smoke: workload must stay under the state-set budget"
    );
    assert!(
        live_shards >= comps,
        "shard smoke: partition collapsed ({live_shards} shards left of ≥{comps})"
    );
    let (t_par, done_par) = median_time(reps, || {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit())
            .with_sharded_dispatch(Arc::new(SweepExecutor::new(0)));
        drain_prefix_into(&mut net, &transfers, prefix)
    });
    assert_eq!(
        done_heap, done_serial,
        "engines completed different prefixes"
    );
    assert_eq!(done_heap, done_par, "engines completed different prefixes");
    assert!(done_heap >= prefix, "workload too small for the prefix");

    let speedup = t_heap.as_secs_f64() / t_par.as_secs_f64();
    println!(
        "shard-{comps}x{flows_per_comp} ({endpoints} endpoints, {cores} cores): \
         first {prefix} completions | heap {t_heap:?} | sharded serial {t_serial:?} \
         | sharded executor {t_par:?} ({speedup:.2}x vs heap)"
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "shard smoke: the executor-dispatched sharded engine must be ≥1.5x \
             faster than the heap engine on {cores} cores, got {speedup:.2}x \
             ({t_par:?} vs {t_heap:?})"
        );
    } else {
        // Too few cores for settle parallelism to pay: the sharded engine
        // must merely not fall behind the heap beyond noise (20% or 2ms).
        let slack = (t_heap / 5).max(Duration::from_millis(2));
        assert!(
            t_par <= t_heap + slack,
            "shard smoke: sharded engine fell behind the heap on {cores} core(s) \
             ({t_par:?} vs {t_heap:?} + {slack:?} slack)"
        );
    }

    format!(
        "{{\"comps\": {comps}, \"flows_per_comp\": {flows_per_comp}, \
         \"endpoints\": {endpoints}, \"prefix\": {prefix}, \"cores\": {cores}, \
         \"heap_prefix_ms\": {:.3}, \"sharded_serial_ms\": {:.3}, \
         \"sharded_executor_ms\": {:.3}, \"executor_speedup\": {speedup:.3}}}\n",
        t_heap.as_secs_f64() * 1e3,
        t_serial.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
    )
}

/// The `shard_split_smoke` group: the bridge-wave workload, fed and
/// drained wave-by-wave through the splitting engine (shards are assigned
/// when a transfer is *added*, so an open-loop feed — each wave enqueued
/// as it opens — is what lets the partition refine between waves;
/// per-wave settle cost and partition shape are observed at every wave
/// boundary, where that wave's bridges are gone and the next wave's have
/// not arrived), then through the never-splitting
/// `with_sharded_merge_only` ablation on the same feed. GigE keeps the
/// mega-shard Moon–Moser-free, so the comparison isolates partition
/// *shape* — no budget collapse muddies either side. Returns the JSON
/// line for `BENCH_split.json`.
fn check_split(comps: usize, flows_per_comp: usize, waves: usize, reps: usize) -> String {
    let stagger = churn_stagger(ModelKind::GigabitEthernet);
    let wave_len = stagger * flows_per_comp as f64;
    let transfers = bridge_wave_churn(comps, flows_per_comp, waves, stagger, CHURN_SEED);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut chunks: Vec<Vec<(u64, Communication, f64)>> = vec![Vec::new(); waves];
    for &t in &transfers {
        let w = ((t.2 / wave_len) as usize).min(waves - 1);
        chunks[w].push(t);
    }

    let feed = |net: &mut FluidNetwork<GigabitEthernetModel>,
                mut per_wave: Option<(&mut Vec<Duration>, &mut usize)>| {
        let mut done = 0usize;
        for (w, chunk) in chunks.iter().enumerate() {
            let tw = Instant::now();
            for &(key, comm, start) in chunk {
                net.add(key, comm, start);
            }
            done += net.advance_to((w + 1) as f64 * wave_len).len();
            if let Some((wave_times, boundary_shards)) = per_wave.as_mut() {
                wave_times[w] = wave_times[w].min(tw.elapsed());
                if w + 1 < waves {
                    **boundary_shards = (**boundary_shards).min(net.shard_count());
                }
            }
        }
        done + net.run_to_completion().len()
    };

    let mut wave_best = vec![Duration::MAX; waves];
    let mut split_times = Vec::with_capacity(reps);
    let mut boundary_min_shards = usize::MAX;
    let mut stats = netbw::fluid::ShardStats::default();
    for _ in 0..reps {
        let mut net = FluidNetwork::new(GigabitEthernetModel::default(), NetworkParams::unit())
            .with_sharded_dispatch(Arc::new(SweepExecutor::new(0)));
        let t0 = Instant::now();
        let done = feed(&mut net, Some((&mut wave_best, &mut boundary_min_shards)));
        split_times.push(t0.elapsed());
        assert_eq!(done, transfers.len(), "splitting engine lost flows");
        stats = net.shard_stats();
    }
    split_times.sort_unstable();
    let t_split = split_times[split_times.len() / 2];

    let (t_fused, fused_stats) = median_time(reps, || {
        let mut net = FluidNetwork::new(GigabitEthernetModel::default(), NetworkParams::unit())
            .with_sharded_dispatch(Arc::new(SweepExecutor::new(0)))
            .with_sharded_merge_only();
        let done = feed(&mut net, None);
        assert_eq!(done, transfers.len(), "merge-only engine lost flows");
        net.shard_stats()
    });

    let speedup = t_fused.as_secs_f64() / t_split.as_secs_f64();
    println!(
        "split-{comps}x{flows_per_comp}x{waves} ({cores} cores): split drain {t_split:?} \
         ({} splits, {} merges) | merge-only drain {t_fused:?} ({} merges, 0 splits) \
         | refinement speedup {speedup:.2}x | waves {:?}",
        stats.splits, stats.merges, fused_stats.merges, wave_best,
    );

    // Partition shape: every wave re-merges and re-splits, and every
    // observed boundary shows the fine partition restored.
    assert!(
        boundary_min_shards >= comps,
        "split smoke: partition degraded to {boundary_min_shards} shards \
         at a wave boundary (expected ≥{comps})"
    );
    assert!(
        stats.splits >= ((waves - 1) * (comps - 1)) as u64,
        "split smoke: too few splits for {waves} bridge waves: {stats:?}"
    );
    assert_eq!(
        fused_stats.splits, 0,
        "split smoke: merge-only ablation must never split: {fused_stats:?}"
    );
    assert!(!stats.collapsed, "split smoke: no budget collapse on GigE");

    // Settle cost must stay flat across waves: steady churn with a
    // refining partition has no mechanism to get slower. Wave 1 is cold
    // (first settles rebuild every scratch), so the yardstick is wave 2.
    let (t_early, t_late) = (wave_best[1], wave_best[waves - 1]);
    let flat_slack = Duration::from_millis(2);
    assert!(
        t_late <= t_early * 3 + flat_slack,
        "split smoke: per-wave settle cost grew over time \
         ({t_early:?} at wave 2 vs {t_late:?} at wave {waves})"
    );

    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "split smoke: the refining partition must drain ≥2x faster than \
             the merge-only mega-shard on {cores} cores, got {speedup:.2}x \
             ({t_split:?} vs {t_fused:?})"
        );
    } else {
        let slack = (t_fused / 5).max(Duration::from_millis(2));
        assert!(
            t_split <= t_fused + slack,
            "split smoke: refining partition fell behind merge-only on \
             {cores} core(s) ({t_split:?} vs {t_fused:?} + {slack:?} slack)"
        );
    }

    format!(
        "{{\"comps\": {comps}, \"flows_per_comp\": {flows_per_comp}, \"waves\": {waves}, \
         \"cores\": {cores}, \"split_drain_ms\": {:.3}, \"merge_only_drain_ms\": {:.3}, \
         \"refinement_speedup\": {speedup:.3}, \"wave2_ms\": {:.3}, \"last_wave_ms\": {:.3}, \
         \"splits\": {}, \"merges\": {}}}\n",
        t_split.as_secs_f64() * 1e3,
        t_fused.as_secs_f64() * 1e3,
        t_early.as_secs_f64() * 1e3,
        t_late.as_secs_f64() * 1e3,
        stats.splits,
        stats.merges,
    )
}

fn main() {
    let mut flows = 512usize;
    let mut big = 100_000usize;
    let mut prefix = 1000usize;
    let mut comps = 8192usize;
    let mut comp_flows = 16usize;
    let mut shard_prefix = 12_288usize;
    let mut split_comps = 128usize;
    let mut split_waves = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} takes a number"))
        };
        match arg.as_str() {
            "--flows" => flows = grab("--flows"),
            "--big" => big = grab("--big"),
            "--prefix" => prefix = grab("--prefix"),
            "--comps" => comps = grab("--comps"),
            "--comp-flows" => comp_flows = grab("--comp-flows"),
            "--shard-prefix" => shard_prefix = grab("--shard-prefix"),
            "--split-comps" => split_comps = grab("--split-comps"),
            "--split-waves" => split_waves = grab("--split-waves"),
            other => panic!("unknown flag {other}"),
        }
    }
    check("gige", ModelKind::GigabitEthernet, flows);
    check("myrinet", ModelKind::Myrinet, flows);

    // The high-concurrency Myrinet group: wide staggering makes gate
    // openings and completions coincide, so before mixed-delta chaining
    // only ~33% of these settles carried deltas (744/2237). The guard
    // pins the fix: >90% must carry deltas and >90% must actually patch.
    let s = check("myrinet-2048", ModelKind::Myrinet, 2048);
    let delta_share = share(s.delta_queries, &s);
    let patch_share = share(s.patched_queries, &s);
    println!(
        "myrinet-2048: delta share {:.1}%, patch share {:.1}%",
        delta_share * 100.0,
        patch_share * 100.0
    );
    assert!(
        delta_share > 0.9,
        "myrinet-2048: delta share regressed to {delta_share:.3}: {s:?}"
    );
    assert!(
        patch_share > 0.9,
        "myrinet-2048: patch share regressed to {patch_share:.3}: {s:?}"
    );

    // The deep-slab group the event timeline exists for.
    let json = check_big(big, prefix, 3);
    std::fs::write("BENCH_timeline.json", &json).expect("write BENCH_timeline.json");
    print!("churn_smoke: BENCH_timeline.json = {json}");

    // The multi-component group the sharded engine exists for.
    let json = check_shard(comps, comp_flows, shard_prefix, 3);
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    print!("churn_smoke: BENCH_shard.json = {json}");

    // The merge/split churn group live partition refinement exists for.
    let json = check_split(split_comps, 16, split_waves, 3);
    std::fs::write("BENCH_split.json", &json).expect("write BENCH_split.json");
    print!("churn_smoke: BENCH_split.json = {json}");

    println!("churn smoke: heap timeline ahead on all groups");
}
