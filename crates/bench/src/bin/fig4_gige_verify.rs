//! FIG4 — Gigabit Ethernet parameter verification: measured vs predicted
//! times on the γ-calibration graph at 4 MB.

use netbw::eval::compare_scheme;
use netbw::graph::schemes;
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    let scheme = schemes::fig4(4 * MB);
    let model = GigabitEthernetModel::default();

    section("Fig. 4 — model vs simulated GigE fabric (4 MB)");
    let cmp = compare_scheme(&model, FabricConfig::gige(), &scheme);
    show(&cmp.to_table());
    println!("Eabs = {:.1} %", cmp.eabs);

    section("Fig. 4 — paper's table (measured on the IBM e326 cluster)");
    let mut t = Table::new(["com.", "Measured T [s]", "Predicted T [s]"]);
    for (label, tm, tp) in [
        ("a", "0.095", "0.095"),
        ("b", "0.099", "0.095"),
        ("c", "0.118", "0.113"),
        ("d", "0.068", "0.069"),
        ("e", "0.099", "0.103"),
        ("f", "0.103", "0.103"),
    ] {
        t.push([label, tm, tp]);
    }
    show(&t);

    section("Model penalties (β = 0.75, γo = 0.115, γi = 0.036)");
    let mut t = Table::new(["com.", "po", "pi", "p = max"]);
    let comms = scheme.comms();
    for (i, label) in scheme.labels().iter().enumerate() {
        let po = model.po(comms, i);
        let pi = model.pi(comms, i);
        t.push([
            label.clone(),
            format!("{po:.3}"),
            format!("{pi:.3}"),
            format!("{:.3}", po.max(pi)),
        ]);
    }
    show(&t);
    println!(
        "\nWith the paper's tref = 0.0477 s these penalties reproduce its predicted\n\
         column: a,b = 1.991*tref = 0.095, d = 1.446*tref = 0.069, e,f = 2.169*tref = 0.103."
    );
}
