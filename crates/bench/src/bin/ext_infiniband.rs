//! EXT-1 — the InfiniBand extension model (the paper's announced future
//! work) evaluated against the simulated InfiniHost III fabric and against
//! the paper's published Fig. 2 measurements. The fabric battery runs
//! through an `EvalSession` (arena fabrics, shared `Tref` memo,
//! work-stealing executor); its `SweepStats` print at the end.

use netbw::graph::schemes;
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    let model = InfinibandModel::default();

    section("Model vs paper's Fig. 2 InfiniHost III measurements");
    let paper: &[(usize, &[f64])] = &[
        (1, &[1.0]),
        (2, &[1.725, 1.725]),
        (3, &[2.61, 2.61, 2.61]),
        (4, &[2.61, 2.61, 2.61, 1.14]),
        (5, &[3.663, 3.66, 3.66, 2.035, 2.035]),
        (6, &[3.935, 3.935, 3.935, 1.995, 1.995, 1.01]),
    ];
    let mut t = Table::new(["scheme/com.", "model penalty", "paper measured", "Erel [%]"]);
    for (s, vals) in paper {
        let g = schemes::fig2_scheme(*s);
        let p = model.penalties(g.comms());
        for (i, (pi, paper_v)) in p.iter().zip(vals.iter()).enumerate() {
            t.push([
                format!("{s}/{}", g.label(netbw::graph::CommId(i as u32))),
                format!("{:.3}", pi.value()),
                format!("{paper_v}"),
                format!("{:+.1}", (pi.value() - paper_v) / paper_v * 100.0),
            ]);
        }
    }
    show(&t);

    section("Model vs simulated InfiniHost III fabric (Eabs per scheme)");
    let battery: Vec<CommGraph> = (1..=6)
        .map(|s| schemes::fig2_scheme(s).with_uniform_size(8 * MB))
        .chain([
            schemes::mk1().with_uniform_size(8 * MB),
            schemes::mk2().with_uniform_size(8 * MB),
        ])
        .collect();
    let session = EvalSession::new();
    let cmps = session.compare_schemes(&model, FabricConfig::infinihost3(), &battery);
    let mut t = Table::new(["scheme", "Eabs [%]"]);
    for cmp in &cmps {
        t.push([cmp.scheme.clone(), format!("{:.1}", cmp.eabs)]);
    }
    show(&t);
    println!(
        "\nKnown deviation: the paper's scheme-6 incoming row (1.995/1.995/1.01) is\n\
         internally inconsistent (three overlapped incoming flows cannot all beat 2β);\n\
         the model answers 2.95 there. See the report_all annotations."
    );
    section("Sweep execution stats");
    println!("{}", session.stats());
}
