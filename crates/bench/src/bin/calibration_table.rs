//! TAB-β — the §V.A calibration protocol run against the simulated GigE
//! fabric: β from the outgoing ladder, γo/γi from the Fig. 4 graph.

use netbw::core::calibrate::{calibrate_gige, estimate_beta};
use netbw::graph::units::MB;
use netbw::packet::{measure_penalties, SchemeMeasurer};
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    section("β estimation from outgoing-conflict ladders (paper: 1.5/2 = 2.25/3 = 0.75)");
    let mut t = Table::new(["k", "penalty (sim)", "penalty / k"]);
    let mut points = Vec::new();
    for k in 2..=4 {
        let g = netbw::graph::schemes::outgoing_ladder(k).with_uniform_size(20 * MB);
        let m = measure_penalties(FabricConfig::gige(), &g);
        let mean = m.penalties.iter().sum::<f64>() / m.penalties.len() as f64;
        points.push((k, mean));
        t.push([
            k.to_string(),
            format!("{mean:.3}"),
            format!("{:.3}", mean / k as f64),
        ]);
    }
    show(&t);
    println!("estimated β = {:.3}", estimate_beta(&points).unwrap());

    section("Full calibration against the simulated fabric");
    let mut measurer = SchemeMeasurer::new(FabricConfig::gige(), 8);
    let model = calibrate_gige(&mut measurer, 20 * MB, 4 * MB).unwrap();
    println!(
        "calibrated: beta = {:.3}, gamma_o = {:.3}, gamma_i = {:.3}",
        model.beta, model.gamma_o, model.gamma_i
    );
    println!("paper's parameters: beta = 0.750, gamma_o = 0.115, gamma_i = 0.036");
    println!(
        "\n(γ magnitudes differ from the paper's cluster: FIFO switch queues make the\n\
         asymmetry effect stronger in simulation; direction and structure agree.)"
    );
}
