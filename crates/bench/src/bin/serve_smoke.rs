//! CI smoke check for the what-if service: speculative queries answered
//! from warm forked engine state must beat rebuild-and-replay, reuse the
//! cached snapshot, and answer bit-for-bit identically.
//!
//! Run with `cargo run --release -p netbw-bench --bin serve_smoke`.
//! Exits non-zero (panics) when the serve path regresses:
//!
//! * fork answers must equal the rebuild-and-replay ablation exactly —
//!   warm-state reuse may never change an answer;
//! * the snapshot cache must serve >90% of queries without re-forking the
//!   authoritative engine, and the session `Tref` memo must collapse the
//!   per-flow slowdown normalisations to one measurement per size;
//! * median wall-clock over the query rounds: the fork path must be ≥2×
//!   faster than answering the same batches by replaying the admission
//!   log (the cost the service exists to avoid).
//!
//! Medians land in `BENCH_serve.json` next to the sweep and churn
//! numbers.

use netbw::graph::Communication;
use netbw::prelude::*;
use netbw::serve::{ServeStats, WhatIfAnswer, WhatIfService};
use std::time::{Duration, Instant};

const REPS: usize = 5;
/// Background transfers admitted before the query rounds — the history a
/// rebuild has to replay per query.
const BACKGROUND: usize = 300;
const ROUNDS: usize = 6;
const QUERIES_PER_ROUND: usize = 15;
/// Distinct payload sizes (bytes): the `Tref` memo should collapse every
/// slowdown normalisation onto these three measurements.
const SIZES: [u64; 3] = [262_144, 1_048_576, 4_194_304];

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// A service with the background load admitted and the clock advanced
/// into the thick of it (gated arrivals still pending, dozens in flight).
fn warm_service() -> WhatIfService {
    let service = WhatIfService::new(ServeConfig::default());
    for i in 0..BACKGROUND {
        let comm = Communication::new((i % 24) as u32, (24 + i % 8) as u32, SIZES[i % SIZES.len()]);
        service
            .admit(comm, i as f64 * 0.002)
            .expect("admit background");
    }
    service.advance_to(0.45).expect("advance into the load");
    service
}

fn round_queries(round: usize) -> Vec<WhatIfQuery> {
    (0..QUERIES_PER_ROUND)
        .map(|q| {
            let mut query = WhatIfQuery::flow(
                Communication::new(
                    ((round * 3 + q) % 20) as u32,
                    (24 + q % 8) as u32,
                    SIZES[q % SIZES.len()],
                ),
                (q % 5) as f64 * 0.001,
            );
            if q % 4 == 0 {
                // some queries are two-flow placements
                query.flows.push((
                    Communication::new(30u32, 31u32, SIZES[round % SIZES.len()]),
                    0.0,
                ));
            }
            query
        })
        .collect()
}

fn assert_identical(
    fork: &[Result<WhatIfAnswer, netbw::serve::ServeError>],
    rebuild: &[Result<WhatIfAnswer, netbw::serve::ServeError>],
) {
    for (f, r) in fork.iter().zip(rebuild) {
        let f = f.as_ref().expect("fork answer");
        let r = r.as_ref().expect("rebuild answer");
        assert_eq!(
            f.makespan.to_bits(),
            r.makespan.to_bits(),
            "fork and rebuild disagree on makespan"
        );
        for (ff, rf) in f.flows.iter().zip(&r.flows) {
            assert_eq!(ff.completion.to_bits(), rf.completion.to_bits());
            assert_eq!(ff.slowdown.to_bits(), rf.slowdown.to_bits());
        }
    }
}

fn main() {
    let mut t_fork = Vec::with_capacity(REPS);
    let mut t_rebuild = Vec::with_capacity(REPS);
    let mut stats: Option<ServeStats> = None;
    let mut in_flight = 0;
    for _ in 0..REPS {
        let service = warm_service();
        in_flight = service.in_flight();
        let mut fork_total = Duration::ZERO;
        let mut rebuild_total = Duration::ZERO;
        for round in 0..ROUNDS {
            // live churn between rounds: the clock moves and one more
            // transfer lands — each lands on the snapshot as an O(delta)
            // re-base, so the rounds share one snapshot build
            let now = service.now() + 0.005;
            service.advance_to(now).expect("advance between rounds");
            service
                .admit(
                    Communication::new(20u32, (24 + round % 8) as u32, SIZES[round % SIZES.len()]),
                    now,
                )
                .expect("admit between rounds");
            let queries = round_queries(round);

            let t0 = Instant::now();
            let fork = service.what_if_batch(&queries);
            fork_total += t0.elapsed();

            let t0 = Instant::now();
            let rebuild = service.what_if_batch_via_rebuild(&queries);
            rebuild_total += t0.elapsed();

            assert_identical(&fork, &rebuild);
        }
        t_fork.push(fork_total);
        t_rebuild.push(rebuild_total);
        stats = Some(service.stats());
    }
    let stats = stats.expect("at least one rep");

    let m_fork = median(t_fork);
    let m_rebuild = median(t_rebuild);
    let speedup = m_rebuild.as_secs_f64() / m_fork.as_secs_f64();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let queries = (ROUNDS * QUERIES_PER_ROUND) as u64;
    println!(
        "serve_smoke: {BACKGROUND}-transfer log, {in_flight} in flight | {queries} queries in \
         {ROUNDS} rounds | fork {m_fork:?} | rebuild {m_rebuild:?} ({speedup:.2}x on {cores} cores)",
    );
    println!("serve_smoke: {stats}");

    let json = format!(
        "{{\"log\": {BACKGROUND}, \"in_flight\": {in_flight}, \"queries\": {queries}, \
         \"cores\": {cores}, \"fork_ms\": {:.3}, \"rebuild_ms\": {:.3}, \"speedup\": {speedup:.3}, \
         \"snapshot_builds\": {}, \"per_query_snapshot_reuse_rate\": {:.4}, \
         \"per_batch_snapshot_reuse_rate\": {:.4}, \"rebases\": {}, \"rebase_fallbacks\": {}, \
         \"fork_reuses\": {}, \"tref_hit_rate\": {:.4}}}\n",
        m_fork.as_secs_f64() * 1e3,
        m_rebuild.as_secs_f64() * 1e3,
        stats.snapshot_builds,
        stats.per_query_snapshot_reuse_rate(),
        stats.per_batch_snapshot_reuse_rate(),
        stats.rebases,
        stats.rebase_fallbacks,
        stats.fork_reuses,
        stats.sweep.tref_hit_rate(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    print!("serve_smoke: BENCH_serve.json = {json}");

    assert_eq!(stats.queries, queries, "fork-path queries miscounted");
    assert!(
        stats.per_query_snapshot_reuse_rate() > 0.9,
        "snapshot cache regressed: {stats}"
    );
    // The churn between rounds must travel the re-base path (one build,
    // then O(delta) replays), and steady-state per-query forks must
    // recycle the worker arenas instead of deep-copying afresh.
    assert!(
        stats.rebases > 0,
        "inter-round churn never re-based: {stats}"
    );
    assert!(
        stats.fork_reuses > 0,
        "per-worker fork arenas never recycled: {stats}"
    );
    // one Tref measurement per size per worker at worst — everything else
    // must come from the worker-local and session-shared memos
    assert!(
        stats.sweep.tref_misses <= (SIZES.len() * cores) as u64,
        "Tref memo regressed: {stats}"
    );
    assert!(
        speedup >= 2.0,
        "fork path must be ≥2x faster than rebuild-and-replay, got {speedup:.2}x \
         ({m_fork:?} vs {m_rebuild:?})"
    );
    println!("serve smoke: what-if service ahead on all guards");
}
