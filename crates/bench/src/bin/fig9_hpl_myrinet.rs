//! FIG9 — HPL (N = 20500) on Myrinet 2000: per-task measured vs predicted
//! communication-time sums and absolute error, under the three scheduling
//! policies of §VI.D.

use netbw::eval::compare_hpl;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    let hpl = HplConfig::paper();
    let cluster = ClusterSpec::smp(8);
    for policy in [
        PlacementPolicy::RoundRobinNode,
        PlacementPolicy::RoundRobinProcessor,
        PlacementPolicy::Random(2008),
    ] {
        section(&format!(
            "Fig. 9 — HPL {}x{} (NB {}), Myrinet 2000, scheduling {policy}",
            hpl.n, hpl.n, hpl.nb
        ));
        let cmp = compare_hpl(
            &hpl,
            &cluster,
            &policy,
            MyrinetModel::default(),
            FabricConfig::myrinet2000(),
        )
        .expect("HPL trace replays");
        show(&cmp.to_table());
        println!(
            "mean per-task Eabs = {:.1} % | makespan measured {:.1} s, predicted {:.1} s",
            cmp.mean_eabs(),
            cmp.makespan_measured,
            cmp.makespan_predicted
        );
    }
    println!(
        "\nPaper's finding: the Myrinet model is globally accurate; GigE is a bit\n\
         less accurate (OS/TCP variability). Compare with fig8_hpl_gige output."
    );
}
