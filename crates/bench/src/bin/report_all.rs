//! One command, the whole paper: runs every reproduction experiment and
//! prints a consolidated markdown report (a lighter-weight, regenerated
//! paper-comparison report). Every battery — the Fig. 2 scheme × fabric
//! grid, the Fig. 7 synthetic comparisons, the Figs. 8/9 HPL policy grid —
//! is driven through one shared `EvalSession`: fabrics and solvers are
//! reused across the schemes of each battery (worker state lives for one
//! sweep call), `Tref` measurements and the stats accumulate across the
//! whole report, and the batteries run on the work-stealing executor;
//! the session's `SweepStats` close the report.
//!
//! `cargo run --release -p netbw-bench --bin report_all`

use netbw::core::MyrinetModel;
use netbw::graph::schemes;
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw::sim::NetworkBackend;
use netbw_bench::{
    bridge_wave_churn, churn_stagger, churn_transfers, drain_churn_mode, fabric_model_pairs,
    section, show, EngineMode, CHURN_SEED,
};

fn main() {
    let session = EvalSession::new();
    println!("# netbw — full reproduction report");

    section("Fig. 2 — measured penalties on the simulated fabrics (20 MB)");
    show(&session.fig2_table(20 * MB));

    section("Fig. 6 — Myrinet penalty table (exact reproduction)");
    let analysis = MyrinetModel::default().analyse(schemes::fig5().comms());
    let mut t = Table::new(["row", "a", "b", "c", "d", "e", "f"]);
    t.push(
        std::iter::once("Sum".to_string())
            .chain(analysis.emission.iter().map(u64::to_string))
            .collect::<Vec<_>>(),
    );
    t.push(
        std::iter::once("penalty".to_string())
            .chain(analysis.penalties.iter().map(|p| p.to_string()))
            .collect::<Vec<_>>(),
    );
    show(&t);

    section("Fig. 7 — synthetic graphs, model vs simulated fabric (8 MB)");
    let pairs = fabric_model_pairs();
    let jobs: Vec<(usize, netbw::graph::CommGraph)> = (0..pairs.len())
        .flat_map(|i| {
            [schemes::mk1(), schemes::mk2()]
                .into_iter()
                .map(move |s| (i, s.with_uniform_size(8 * MB)))
        })
        .collect();
    let cmps = session.sweep(&jobs, |worker, (i, scheme)| {
        let (fabric, model) = &pairs[*i];
        worker.compare_scheme(model.as_ref(), *fabric, scheme)
    });
    let mut t = Table::new(["scheme", "fabric", "model", "Eabs [%]"]);
    for ((i, _), cmp) in jobs.iter().zip(&cmps) {
        let (fabric, model) = &pairs[*i];
        t.push([
            cmp.scheme.clone(),
            fabric.name.to_string(),
            model.name().to_string(),
            format!("{:.1}", cmp.eabs),
        ]);
    }
    show(&t);

    section("Figs. 8/9 — HPL 20500 per-task prediction error (16 tasks, 8 nodes)");
    let hpl = HplConfig::paper();
    let cluster = ClusterSpec::smp(8);
    let gige_model = GigabitEthernetModel::default();
    let myrinet_model = MyrinetModel::default();
    let hpl_jobs: Vec<(&str, FabricConfig, PlacementPolicy)> = [
        ("gige", FabricConfig::gige()),
        ("myrinet", FabricConfig::myrinet2000()),
    ]
    .into_iter()
    .flat_map(|(name, fabric)| {
        [
            PlacementPolicy::RoundRobinNode,
            PlacementPolicy::RoundRobinProcessor,
            PlacementPolicy::Random(2008),
        ]
        .into_iter()
        .map(move |policy| (name, fabric, policy))
    })
    .collect();
    let hpl_cmps = session.sweep(&hpl_jobs, |worker, (name, fabric, policy)| {
        let model: &dyn PenaltyModel = if *name == "gige" {
            &gige_model
        } else {
            &myrinet_model
        };
        worker
            .compare_hpl(&hpl, &cluster, policy, model, *fabric)
            .expect("HPL replays")
    });
    let mut t = Table::new(["fabric", "policy", "mean Eabs [%]", "makespan Sm/Sp [s]"]);
    for ((name, _, policy), cmp) in hpl_jobs.iter().zip(&hpl_cmps) {
        t.push([
            name.to_string(),
            policy.to_string(),
            format!("{:.1}", cmp.mean_eabs()),
            format!("{:.1}/{:.1}", cmp.makespan_measured, cmp.makespan_predicted),
        ]);
    }
    show(&t);

    println!("\nEach table above is annotated with its paper figure and known deviations.");

    section("Sweep execution stats (shared EvalSession across all batteries)");
    println!("{}", session.stats());

    section("Event-timeline stats (heap engine, 512-flow GigE churn drain)");
    let kind = ModelKind::GigabitEthernet;
    let transfers = churn_transfers(512, churn_stagger(kind));
    let (done, cache, tl) = drain_churn_mode(kind.build(), &transfers, EngineMode::Heap);
    println!(
        "{done} completions | {} model queries ({} reuses) | {} heap pushes, \
         {} lazy pops, {} gate pushes, {} gate heap hits, {} rescans",
        cache.model_queries,
        cache.reuses,
        tl.heap_pushes,
        tl.lazy_pops,
        tl.gate_pushes,
        tl.gate_heap_hits,
        tl.rescans,
    );

    section("Serve path (what-if service: snapshot re-bases + warm fork arenas)");
    // A small live service: admissions and clock advances interleave with
    // query batches, so the churn travels the snapshot re-base path and
    // the per-query forks recycle the worker arenas.
    let serve = WhatIfService::new(ServeConfig::default());
    let sizes = [262_144u64, 1_048_576, 4_194_304];
    for i in 0..60usize {
        let comm = netbw::graph::Communication::new(
            (i % 12) as u32,
            (12 + i % 6) as u32,
            sizes[i % sizes.len()],
        );
        serve
            .admit(comm, i as f64 * 0.003)
            .expect("serve admission");
    }
    serve.advance_to(0.1).expect("advance into the load");
    for round in 0..4usize {
        let queries: Vec<WhatIfQuery> = (0..8u64)
            .map(|q| {
                WhatIfQuery::flow(
                    netbw::graph::Communication::new(
                        ((round as u64 * 5 + q) % 10) as u32,
                        (12 + q % 6) as u32,
                        sizes[q as usize % sizes.len()],
                    ),
                    (q % 3) as f64 * 0.001,
                )
            })
            .collect();
        for answer in serve.what_if_batch(&queries) {
            answer.expect("what-if answered");
        }
        let now = serve.now() + 0.004;
        serve.advance_to(now).expect("inter-round advance");
        serve
            .admit(
                netbw::graph::Communication::new(20u32, (12 + round % 6) as u32, sizes[round % 3]),
                now,
            )
            .expect("inter-round admission");
    }
    println!("{}", serve.stats());

    section("Partition shape (sharded engine, 16-component bridge-wave churn)");
    // Driven through the `NetworkBackend` trait object, the same surface the
    // simulator uses. Waves are fed incrementally — shards are assigned at
    // add time, so queueing the whole schedule up front would fuse the
    // partition for the entire run.
    let (comps, flows_per_comp, waves) = (16usize, 16usize, 4usize);
    let stagger = churn_stagger(kind);
    let wave_len = stagger * flows_per_comp as f64;
    let wave_churn = bridge_wave_churn(comps, flows_per_comp, waves, stagger, CHURN_SEED);
    let mut backend: Box<dyn NetworkBackend> =
        Box::new(FluidNetwork::new(kind.build(), NetworkParams::unit()).with_sharded());
    let mut done = 0usize;
    let mut boundary_shards = Vec::with_capacity(waves);
    for w in 0..waves {
        let lo = w as f64 * wave_len;
        let hi = lo + wave_len;
        let last = w + 1 == waves;
        for &(key, comm, start) in wave_churn
            .iter()
            .filter(|t| t.2 >= lo && (last || t.2 < hi))
        {
            backend.add(key, comm, start);
        }
        done += backend.advance_to(hi).len();
        boundary_shards.push(backend.shard_stats().expect("sharded backend").live_shards);
    }
    done += backend.advance_to(1e9).len();
    let shape = backend.shard_stats().expect("sharded backend");
    println!(
        "{done} completions | live shards at wave boundaries {boundary_shards:?} | \
         {} splits, {} merges, {} drains, {} budget collapses, {} un-collapses",
        shape.splits, shape.merges, shape.drains, shape.budget_collapses, shape.uncollapses,
    );
}
