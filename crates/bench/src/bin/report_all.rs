//! One command, the whole paper: runs every reproduction experiment and
//! prints a consolidated markdown report (a lighter-weight, regenerated
//! paper-comparison report).
//!
//! `cargo run --release -p netbw-bench --bin report_all`

use netbw::core::MyrinetModel;
use netbw::eval::{compare_hpl, compare_scheme, fig2_table};
use netbw::graph::schemes;
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw_bench::{fabric_model_pairs, section, show};

fn main() {
    println!("# netbw — full reproduction report");

    section("Fig. 2 — measured penalties on the simulated fabrics (20 MB)");
    show(&fig2_table(20 * MB));

    section("Fig. 6 — Myrinet penalty table (exact reproduction)");
    let analysis = MyrinetModel::default().analyse(schemes::fig5().comms());
    let mut t = Table::new(["row", "a", "b", "c", "d", "e", "f"]);
    t.push(
        std::iter::once("Sum".to_string())
            .chain(analysis.emission.iter().map(u64::to_string))
            .collect::<Vec<_>>(),
    );
    t.push(
        std::iter::once("penalty".to_string())
            .chain(analysis.penalties.iter().map(|p| p.to_string()))
            .collect::<Vec<_>>(),
    );
    show(&t);

    section("Fig. 7 — synthetic graphs, model vs simulated fabric (8 MB)");
    let mut t = Table::new(["scheme", "fabric", "model", "Eabs [%]"]);
    for (fabric, model) in fabric_model_pairs() {
        for scheme in [schemes::mk1(), schemes::mk2()] {
            let cmp = compare_scheme(
                model.as_ref(),
                fabric,
                &scheme.clone().with_uniform_size(8 * MB),
            );
            t.push([
                scheme.name().to_string(),
                fabric.name.to_string(),
                model.name().to_string(),
                format!("{:.1}", cmp.eabs),
            ]);
        }
    }
    show(&t);

    section("Figs. 8/9 — HPL 20500 per-task prediction error (16 tasks, 8 nodes)");
    let hpl = HplConfig::paper();
    let cluster = ClusterSpec::smp(8);
    let mut t = Table::new(["fabric", "policy", "mean Eabs [%]", "makespan Sm/Sp [s]"]);
    for (fabric, model_name) in [
        (FabricConfig::gige(), "gige"),
        (FabricConfig::myrinet2000(), "myrinet"),
    ] {
        for policy in [
            PlacementPolicy::RoundRobinNode,
            PlacementPolicy::RoundRobinProcessor,
            PlacementPolicy::Random(2008),
        ] {
            let cmp = if model_name == "gige" {
                compare_hpl(
                    &hpl,
                    &cluster,
                    &policy,
                    GigabitEthernetModel::default(),
                    fabric,
                )
            } else {
                compare_hpl(&hpl, &cluster, &policy, MyrinetModel::default(), fabric)
            }
            .expect("HPL replays");
            t.push([
                model_name.to_string(),
                policy.to_string(),
                format!("{:.1}", cmp.mean_eabs()),
                format!("{:.1}/{:.1}", cmp.makespan_measured, cmp.makespan_predicted),
            ]);
        }
    }
    show(&t);

    println!("\nEach table above is annotated with its paper figure and known deviations.");
}
