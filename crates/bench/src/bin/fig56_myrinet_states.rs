//! FIG5 + FIG6 — the Myrinet state-set enumeration example and its
//! penalty table, regenerated exactly.

use netbw::core::MyrinetModel;
use netbw::graph::schemes;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    let g = schemes::fig5();
    section("Fig. 5 — the example graph");
    print!("{g}");

    let model = MyrinetModel::default();
    let analysis = model.analyse(g.comms());

    section("Fig. 5 — the five communication state sets (send sets)");
    for (i, e) in analysis.components.iter().enumerate() {
        for (k, set) in e.sets.iter().enumerate() {
            let labels: Vec<&str> = set
                .iter()
                .map(|v| g.label(netbw::graph::CommId(v as u32)))
                .collect();
            println!(
                "component {i}, state set {}: send = {{{}}}",
                k + 1,
                labels.join(", ")
            );
        }
    }

    section("Fig. 6 — penalty calculation");
    let mut t = Table::new(["", "a", "b", "c", "d", "e", "f"]);
    t.push(
        std::iter::once("Sum".to_string())
            .chain(analysis.emission.iter().map(u64::to_string))
            .collect::<Vec<_>>(),
    );
    t.push(
        std::iter::once("Minimum".to_string())
            .chain(analysis.coefficient.iter().map(u64::to_string))
            .collect::<Vec<_>>(),
    );
    t.push(
        std::iter::once("penalty".to_string())
            .chain(analysis.penalties.iter().map(|p| p.to_string()))
            .collect::<Vec<_>>(),
    );
    show(&t);
    println!("\nPaper's Fig. 6: Sum 1 2 2 2 2 3 | Minimum 1 1 1 2 2 2 | penalty 5 5 5 2.5 2.5 2.5");
}
