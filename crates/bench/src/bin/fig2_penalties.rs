//! FIG2 — measured penalties of the six schemes on the three simulated
//! fabrics, alongside the paper's published measurements.

use netbw::eval::fig2_table;
use netbw::graph::units::MB;
use netbw_bench::{section, show};

/// The paper's Fig. 2 measurements (per scheme, per fabric, per comm).
const PAPER: &[(&str, [&str; 3])] = &[
    ("1/a", ["1", "1", "1"]),
    ("2/a", ["1.5", "1.9", "1.725"]),
    ("2/b", ["1.5", "1.9", "1.725"]),
    ("3/a", ["2.25", "2.8", "2.61"]),
    ("3/b", ["2.25", "2.8", "2.61"]),
    ("3/c", ["2.25", "2.8", "2.61"]),
    ("4/a", ["2.15", "2.8", "2.61"]),
    ("4/b", ["2.15", "2.8", "2.61"]),
    ("4/c", ["2.15", "2.8", "2.61"]),
    ("4/d", ["1.15", "1.45", "1.14"]),
    ("5/a", ["4.4", "4.4", "3.663"]),
    ("5/b", ["2.6", "4.2", "3.66"]),
    ("5/c", ["2.6", "4.2", "3.66"]),
    ("5/d", ["2.6", "2.5", "2.035"]),
    ("5/e", ["2.6", "2.5", "2.035"]),
    ("6/a", ["4.4", "4.5", "3.935"]),
    ("6/b", ["2.0", "4.5", "3.935"]),
    ("6/c", ["3.3", "4.5", "3.935"]),
    ("6/d", ["2.6", "2.5", "1.995"]),
    ("6/e", ["2.6", "2.5", "1.995"]),
    ("6/f", ["1.4", "1.3", "1.01"]),
];

fn main() {
    section("Fig. 2 — simulated fabrics (20 MB per communication)");
    let t = fig2_table(20 * MB);
    show(&t);

    section("Fig. 2 — paper's measured values (for comparison)");
    let mut p = netbw::prelude::Table::new(["scheme/com.", "gige", "myrinet", "infiniband"]);
    for (key, vals) in PAPER {
        p.push([
            key.to_string(),
            vals[0].into(),
            vals[1].into(),
            vals[2].into(),
        ]);
    }
    show(&p);

    println!(
        "\nNote: schemes 1-4 reproduce quantitatively; the paper's scheme 5/6 rows\n\
         contain TCP-unfairness outliers (a=4.4 vs b=2.6 on symmetric flows) that a\n\
         mean-behaviour simulator does not produce — see the report_all annotations."
    );
}
