//! ABL-1 — ablation: strict vs shared-node conflict rule in the Myrinet
//! model. Only the strict rule reproduces the paper's Fig. 6 table.

use netbw::core::MyrinetModel;
use netbw::graph::conflict::ConflictRule;
use netbw::graph::schemes;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    for scheme in [schemes::fig5(), schemes::mk1(), schemes::mk2()] {
        section(&format!("Conflict-rule ablation on {}", scheme.name()));
        let strict = MyrinetModel::default();
        let loose = MyrinetModel::with_rule(ConflictRule::SharedNode);
        let ps = strict.analyse(scheme.comms());
        let pl = loose.analyse(scheme.comms());
        let mut t = Table::new([
            "com.",
            "strict: sum",
            "strict: penalty",
            "shared: sum",
            "shared: penalty",
        ]);
        for (i, label) in scheme.labels().iter().enumerate() {
            t.push([
                label.clone(),
                ps.emission[i].to_string(),
                ps.penalties[i].to_string(),
                pl.emission[i].to_string(),
                pl.penalties[i].to_string(),
            ]);
        }
        show(&t);
        let s: usize = ps.components.iter().map(|c| c.count()).product();
        let l: usize = pl.components.iter().map(|c| c.count()).product();
        println!("state sets: strict = {s}, shared-node = {l}");
    }
    println!(
        "\nOnly the strict rule (same source OR same destination) yields the paper's\n\
         Fig. 6 values (5 sets; penalties 5,5,5,2.5,2.5,2.5) — income/outgo pairs do\n\
         not block each other on full-duplex Myrinet links."
    );
}
