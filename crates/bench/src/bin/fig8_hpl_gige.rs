//! FIG8 — HPL (N = 20500) on Gigabit Ethernet: per-task measured vs
//! predicted communication-time sums and absolute error, under the three
//! scheduling policies of §VI.D.

use netbw::eval::compare_hpl;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    let hpl = HplConfig::paper();
    let cluster = ClusterSpec::smp(8); // 16 tasks on 8 two-core nodes
    for policy in [
        PlacementPolicy::RoundRobinNode,
        PlacementPolicy::RoundRobinProcessor,
        PlacementPolicy::Random(2008),
    ] {
        section(&format!(
            "Fig. 8 — HPL {}x{} (NB {}), GigE, scheduling {policy}",
            hpl.n, hpl.n, hpl.nb
        ));
        let cmp = compare_hpl(
            &hpl,
            &cluster,
            &policy,
            GigabitEthernetModel::default(),
            FabricConfig::gige(),
        )
        .expect("HPL trace replays");
        show(&cmp.to_table());
        println!(
            "mean per-task Eabs = {:.1} % | makespan measured {:.1} s, predicted {:.1} s",
            cmp.mean_eabs(),
            cmp.makespan_measured,
            cmp.makespan_predicted
        );
    }
}
