//! EXT-2 — the §VII extension: how penalties scale on 8- and 16-core
//! nodes, where many tasks share one NIC (the paper announces this study
//! as future work).

use netbw::eval::compare_hpl;
use netbw::graph::schemes;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    section("Outgoing-ladder penalties as cores per node grow (Myrinet model)");
    let model = MyrinetModel::default();
    let mut t = Table::new(["concurrent sends k", "penalty per send"]);
    for k in [1, 2, 4, 8, 16] {
        let g = schemes::outgoing_ladder(k);
        let p = model.penalties(g.comms());
        t.push([k.to_string(), p[0].to_string()]);
    }
    show(&t);

    section("HPL per-task comm times on fatter nodes (16 tasks, GigE model)");
    let hpl = HplConfig {
        n: 4096,
        nb: 128,
        tasks: 16,
        ..HplConfig::paper()
    };
    let mut t = Table::new([
        "cores/node",
        "nodes",
        "policy",
        "mean Eabs [%]",
        "predicted makespan [s]",
    ]);
    for cores in [2usize, 4, 8, 16] {
        let cluster = ClusterSpec::smp(16 / cores).with_cores(cores);
        let cmp = compare_hpl(
            &hpl,
            &cluster,
            &PlacementPolicy::RoundRobinProcessor,
            GigabitEthernetModel::default(),
            FabricConfig::gige(),
        )
        .expect("HPL replays");
        t.push([
            cores.to_string(),
            (16 / cores).to_string(),
            "RRP".to_string(),
            format!("{:.1}", cmp.mean_eabs()),
            format!("{:.2}", cmp.makespan_predicted),
        ]);
    }
    show(&t);
    println!(
        "\nWith more tasks per node, more ring messages stay intra-node (free) but\n\
         the NIC conflicts that remain are deeper — the penalty grows linearly in\n\
         the number of concurrent senders (k·beta)."
    );
}
