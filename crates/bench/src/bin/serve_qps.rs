//! Open-loop saturation bench for the what-if service front-end: many
//! client threads hammer [`ServeHandle`] clones with speculative queries
//! while a churn driver keeps the authoritative engine moving (clock
//! advances + fresh admissions), so every measured query competes with
//! snapshot invalidation the way a live scheduler sidecar would.
//!
//! Run with `cargo run --release -p netbw-bench --bin serve_qps`.
//! Each rep spawns a warm service, `--clients` threads issuing
//! `--queries` what-if requests each as fast as the queue absorbs them
//! (open loop: no pacing), and one churn thread stirring the engine until
//! the clients finish. Queries sitting in the queue together coalesce
//! into one executor batch on the service thread — the coalescing is
//! what saturation throughput measures. The median queries/sec over the
//! reps lands in `BENCH_serve_qps.json` next to the other bench
//! artifacts.
//!
//! Guards (panics on regression): every answer must come back `Ok` with
//! a finite positive slowdown, the service must count exactly the issued
//! queries, and under concurrent clients the snapshot cache must see
//! reuse (coalescing collapsed batches) despite the churn invalidating
//! it continuously.

use netbw::graph::Communication;
use netbw::prelude::*;
use netbw::serve::{ServeHandle, ServeStats, WhatIfService};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPS: usize = 3;
/// Background transfers admitted before the clients start.
const BACKGROUND: usize = 300;
/// Distinct payload sizes (bytes), shared with `serve_smoke` so the
/// `Tref` memo stays hot.
const SIZES: [u64; 3] = [262_144, 1_048_576, 4_194_304];

/// A service with the background load admitted and the clock advanced
/// into the thick of it, spawned onto its service thread.
fn warm_spawned(threads: usize) -> (ServeHandle, std::thread::JoinHandle<WhatIfService>) {
    let service = WhatIfService::new(ServeConfig {
        threads,
        ..ServeConfig::default()
    });
    for i in 0..BACKGROUND {
        let comm = Communication::new((i % 24) as u32, (24 + i % 8) as u32, SIZES[i % SIZES.len()]);
        service
            .admit(comm, i as f64 * 0.002)
            .expect("admit background");
    }
    service.advance_to(0.45).expect("advance into the load");
    service.spawn()
}

/// The query stream of one client: placements rotated over sources,
/// destinations and sizes, deterministic in `(client, q)`.
fn client_query(client: usize, q: usize) -> WhatIfQuery {
    let mut query = WhatIfQuery::flow(
        Communication::new(
            ((client * 7 + q) % 20) as u32,
            (24 + (client + q) % 8) as u32,
            SIZES[q % SIZES.len()],
        ),
        (q % 5) as f64 * 0.001,
    );
    if q.is_multiple_of(4) {
        query.flows.push((
            Communication::new(30u32, 31u32, SIZES[client % SIZES.len()]),
            0.0,
        ));
    }
    query
}

/// One saturation rep: returns the clients' wall-clock, the number of
/// churn events that landed while they ran, the worker count, and the
/// final service stats.
fn run_rep(
    clients: usize,
    per_client: usize,
    threads: usize,
) -> (Duration, u64, usize, ServeStats) {
    let (handle, thread) = warm_spawned(threads);
    let stop = Arc::new(AtomicBool::new(false));
    let churn_events = Arc::new(AtomicU64::new(0));

    // Live churn: the clock moves and a transfer lands every period,
    // invalidating the snapshot under the clients' feet.
    let churn = {
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        let churn_events = Arc::clone(&churn_events);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let t = 0.45 + 0.002 * (i + 1) as f64;
                if handle.advance_to(t).is_err() {
                    return;
                }
                let comm = Communication::new(
                    (20 + i % 4) as u32,
                    (24 + i % 8) as u32,
                    SIZES[(i % SIZES.len() as u64) as usize],
                );
                let _ = handle.admit(comm, t);
                churn_events.fetch_add(1, Ordering::Relaxed);
                i += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };

    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                for q in 0..per_client {
                    let answer = handle
                        .what_if(client_query(c, q))
                        .expect("what-if answered");
                    for flow in &answer.flows {
                        assert!(
                            flow.slowdown.is_finite() && flow.slowdown > 0.0,
                            "client {c} query {q}: bad slowdown {flow:?}"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    churn.join().expect("churn thread");

    handle.shutdown();
    let service = thread.join().expect("service thread");
    (
        elapsed,
        churn_events.load(Ordering::Relaxed),
        service.threads(),
        service.stats(),
    )
}

fn main() {
    let mut clients = 4usize;
    let mut per_client = 50usize;
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} takes a number"))
        };
        match arg.as_str() {
            "--clients" => clients = grab("--clients"),
            "--queries" => per_client = grab("--queries"),
            "--threads" => threads = grab("--threads"),
            other => panic!("unknown flag {other}"),
        }
    }
    let total = (clients * per_client) as u64;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut elapsed = Vec::with_capacity(REPS);
    let mut churned = 0u64;
    let mut workers = 1usize;
    let mut stats: Option<ServeStats> = None;
    for _ in 0..REPS {
        let (t, events, w, s) = run_rep(clients, per_client, threads);
        assert_eq!(s.queries, total, "service miscounted the query stream");
        assert!(
            s.snapshot_reuses > 0,
            "no coalescing under {clients} concurrent clients: {s}"
        );
        // The headline guard: under live churn (every churn event lands
        // mid-stream as a snapshot re-base), at least 90% of queries must
        // be served without forking the authoritative engine. The
        // pre-re-base service managed ~78% here — every churn event cost
        // the next batch a full deep fork.
        assert!(
            s.per_query_snapshot_reuse_rate() >= 0.9,
            "snapshot reuse under churn regressed below 0.9: {s}"
        );
        elapsed.push(t);
        churned = events;
        workers = w;
        stats = Some(s);
    }
    let stats = stats.expect("at least one rep");
    elapsed.sort_unstable();
    let m = elapsed[elapsed.len() / 2];
    let qps = total as f64 / m.as_secs_f64();

    println!(
        "serve_qps: {clients} clients x {per_client} queries against {churned} churn events \
         ({BACKGROUND}-transfer warm log, {workers} workers on {cores} cores) | median {m:?} | \
         {qps:.0} queries/s"
    );
    println!("serve_qps: {stats}");

    let json = format!(
        "{{\"background\": {BACKGROUND}, \"clients\": {clients}, \"queries\": {total}, \
         \"cores\": {cores}, \"workers\": {workers}, \"churn_events\": {churned}, \
         \"elapsed_ms\": {:.3}, \"qps\": {qps:.1}, \"snapshot_builds\": {}, \
         \"per_query_snapshot_reuse_rate\": {:.4}, \"per_batch_snapshot_reuse_rate\": {:.4}, \
         \"rebases\": {}, \"rebase_fallbacks\": {}, \"fork_reuses\": {}, \
         \"tref_hit_rate\": {:.4}}}\n",
        m.as_secs_f64() * 1e3,
        stats.snapshot_builds,
        stats.per_query_snapshot_reuse_rate(),
        stats.per_batch_snapshot_reuse_rate(),
        stats.rebases,
        stats.rebase_fallbacks,
        stats.fork_reuses,
        stats.sweep.tref_hit_rate(),
    );
    std::fs::write("BENCH_serve_qps.json", &json).expect("write BENCH_serve_qps.json");
    print!("serve_qps: BENCH_serve_qps.json = {json}");
    println!("serve qps: saturation run healthy");
}
