//! Size-sweep and placement-crossover analysis: model accuracy versus
//! message size, and the payload size above which co-locating ring
//! neighbours (RRP) beats spreading them (RRN) — the integrator question
//! of the paper's introduction, quantified. Both grids run through one
//! `EvalSession` (size points and HPL replays in parallel on the
//! work-stealing executor); its `SweepStats` print at the end.

use netbw::graph::schemes;
use netbw::graph::units::{KB, MB};
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    let session = EvalSession::new();
    let model = MyrinetModel::default();
    let fabric = FabricConfig::myrinet2000();

    section("Model accuracy vs message size (Myrinet, outgoing ladder k=3)");
    let sizes = [64 * KB, 256 * KB, MB, 4 * MB, 16 * MB];
    let pts = session.size_sweep(&model, fabric, &schemes::outgoing_ladder(3), &sizes);
    let mut t = Table::new(["size", "Eabs [%]", "worst measured penalty"]);
    for p in &pts {
        t.push([
            netbw::graph::units::format_size(p.size),
            format!("{:.1}", p.eabs),
            format!("{:.2}", p.worst_measured_penalty),
        ]);
    }
    show(&t);

    section("RRN vs RRP across HPL problem sizes (predicted makespans, Myrinet)");
    let cluster = ClusterSpec::smp(4);
    let ns = [512usize, 1024, 2048, 4096];
    let jobs: Vec<(usize, PlacementPolicy)> = ns
        .iter()
        .flat_map(|&n| {
            [
                (n, PlacementPolicy::RoundRobinNode),
                (n, PlacementPolicy::RoundRobinProcessor),
            ]
        })
        .collect();
    let makespans = session.sweep(&jobs, |worker, (n, policy)| {
        let hpl = HplConfig {
            n: *n,
            nb: 128,
            tasks: 8,
            ..HplConfig::paper()
        };
        worker
            .compare_hpl(&hpl, &cluster, policy, &model, fabric)
            .expect("replays")
            .makespan_predicted
    });
    let mut t = Table::new(["N", "RRN makespan [s]", "RRP makespan [s]", "winner"]);
    for (i, &n) in ns.iter().enumerate() {
        let rrn = makespans[2 * i];
        let rrp = makespans[2 * i + 1];
        t.push([
            n.to_string(),
            format!("{rrn:.3}"),
            format!("{rrp:.3}"),
            if rrp < rrn { "RRP" } else { "RRN" }.to_string(),
        ]);
    }
    show(&t);
    println!(
        "\nRRP wins whenever communication matters: its ring keeps every other\n\
         message on-node. The gap widens with N as panels grow linearly while\n\
         compute per task shrinks relative to the communication volume."
    );
    section("Sweep execution stats");
    println!("{}", session.stats());
}
