//! CI smoke check for the sweep execution engine: a ≥200-scheme battery
//! through [`EvalSession`] must beat per-call construction, reuse its
//! arena fabrics, and answer bit-for-bit like the per-call path.
//!
//! Run with `cargo run --release -p netbw-bench --bin sweep_smoke`.
//! Exits non-zero (panics) when the session path regresses:
//!
//! * results must equal the per-call `compare_scheme` baseline exactly —
//!   parallelism and state reuse may never change an answer;
//! * the fabric arena must serve >90% of fabric requests by reuse, and
//!   the `Tref` memo must collapse per-scheme reference measurements to
//!   one per `(fabric, size)`;
//! * median wall-clock: ≥2× faster than the sequential per-call baseline
//!   when ≥4 cores are available, and never slower than it even on one
//!   core (where the win is purely the reuse, not the parallelism).
//!
//! Medians land in `BENCH_sweep.json` so the perf trajectory is tracked
//! next to the churn numbers.

use netbw::eval::SchemeComparison;
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw::workloads::{paper_battery, random_battery};
use std::time::{Duration, Instant};

const REPS: usize = 5;

fn battery() -> Vec<CommGraph> {
    let mut b = paper_battery(4 * MB);
    b.extend(random_battery(200, 8, 4, 4 * MB, 4242));
    b
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn assert_identical(a: &SchemeComparison, b: &SchemeComparison) {
    assert_eq!(a.scheme, b.scheme);
    assert_eq!(a.measured, b.measured, "{}", a.scheme);
    assert_eq!(a.predicted, b.predicted, "{}", a.scheme);
    assert_eq!(a.erel, b.erel, "{}", a.scheme);
    assert_eq!(a.eabs, b.eabs, "{}", a.scheme);
}

fn main() {
    let battery = battery();
    assert!(battery.len() >= 200, "battery shrank: {}", battery.len());
    let model = GigabitEthernetModel::default();
    let fabric = FabricConfig::gige();

    // per-call baseline: a fresh fabric, Tref measurement and solver per
    // scheme, sequential — what every caller did before the session API
    let mut t_base = Vec::with_capacity(REPS);
    let mut baseline = Vec::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        baseline = battery
            .iter()
            .map(|g| netbw::eval::compare_scheme(&model, fabric, g))
            .collect();
        t_base.push(t0.elapsed());
    }

    // session path: work-stealing executor + per-worker arenas + shared memo
    let mut t_sess = Vec::with_capacity(REPS);
    let mut session_out = Vec::new();
    let mut stats = SweepStats::default();
    for _ in 0..REPS {
        let session = EvalSession::new();
        let t0 = Instant::now();
        session_out = session.compare_schemes(&model, fabric, &battery);
        t_sess.push(t0.elapsed());
        stats = session.stats();
    }

    for (a, b) in session_out.iter().zip(&baseline) {
        assert_identical(a, b);
    }

    let m_base = median(t_base);
    let m_sess = median(t_sess);
    let speedup = m_base.as_secs_f64() / m_sess.as_secs_f64();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "sweep_smoke: {} schemes | per-call baseline {m_base:?} | session {m_sess:?} \
         ({speedup:.2}x on {cores} cores)",
        battery.len(),
    );
    println!("sweep_smoke: {stats}");

    let json = format!(
        "{{\"schemes\": {}, \"cores\": {cores}, \"baseline_ms\": {:.3}, \"session_ms\": {:.3}, \
         \"speedup\": {speedup:.3}, \"fabric_reuse_rate\": {:.4}, \"tref_hit_rate\": {:.4}, \
         \"steals\": {}}}\n",
        battery.len(),
        m_base.as_secs_f64() * 1e3,
        m_sess.as_secs_f64() * 1e3,
        stats.fabric_reuse_rate(),
        stats.tref_hit_rate(),
        stats.steals,
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    print!("sweep_smoke: BENCH_sweep.json = {json}");

    assert_eq!(stats.items, battery.len() as u64, "items miscounted");
    assert!(
        stats.fabric_reuse_rate() > 0.9,
        "fabric arena reuse regressed: {stats}"
    );
    // one Tref measurement per (fabric, size) per worker at worst —
    // everything else must come from the memos
    assert!(
        stats.tref_misses <= cores as u64,
        "Tref memo regressed: {stats}"
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "session path must be ≥2x faster on ≥4 cores, got {speedup:.2}x \
             ({m_base:?} vs {m_sess:?})"
        );
    } else {
        assert!(
            m_sess <= m_base,
            "session path fell behind per-call construction even without \
             parallelism ({m_sess:?} vs {m_base:?})"
        );
    }
    println!("sweep smoke: session engine ahead on all guards");
}
