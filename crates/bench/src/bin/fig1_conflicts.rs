//! FIG1 — the elementary conflict taxonomy of §IV.A on the Fig. 1 scheme.

use netbw::graph::conflict::census;
use netbw::graph::schemes;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn main() {
    let g = schemes::fig1();
    section("Fig. 1 — concurrent communication scheme");
    print!("{g}");

    section("Conflict census per communication");
    let mut t = Table::new([
        "com.",
        "outgoing peers",
        "income peers",
        "income/outgo peers",
        "dominant",
    ]);
    for ((_, label, _), c) in g.iter().zip(census(&g)) {
        t.push([
            label.to_string(),
            c.outgoing_peers.to_string(),
            c.income_peers.to_string(),
            c.income_outgo_peers.to_string(),
            c.dominant().map_or("none".into(), |k| k.to_string()),
        ]);
    }
    show(&t);

    section("DOT export (render with graphviz)");
    print!("{}", netbw::graph::dot::to_dot(&g));
}
