//! ABL-3 — model accuracy against the baselines of §II on every paper
//! scheme and a random battery: the paper's models vs the contention-blind
//! linear model (LogP/LogGP family) and the Kim & Lee max-conflict model.
//!
//! The three-model battery runs through an `EvalSession`: each worker
//! keeps arena fabrics and reusable solvers, `Tref` is measured once per
//! `(fabric, size)` across the whole battery (shared memo), and the
//! work-stealing executor balances the uneven scheme costs.
//! `SweepStats` print at the end.

use netbw::core::baseline::{LinearModel, MaxConflictModel};
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw::workloads::{paper_battery, random_battery};
use netbw_bench::{section, show};

fn main() {
    let mut schemes = paper_battery(8 * MB);
    schemes.extend(random_battery(6, 8, 10, 8 * MB, 42));

    let linear = LinearModel;
    let max_conflict = MaxConflictModel;
    let session = EvalSession::new();
    for (fabric, model) in netbw_bench::fabric_model_pairs() {
        section(&format!(
            "Eabs [%] per scheme on the {} fabric",
            fabric.name
        ));
        let rows = session.sweep(&schemes, |worker, scheme| {
            let own = worker.compare_scheme(model.as_ref(), fabric, scheme).eabs;
            let lin = worker.compare_scheme(&linear, fabric, scheme).eabs;
            let max = worker.compare_scheme(&max_conflict, fabric, scheme).eabs;
            (scheme.name().to_string(), own, lin, max)
        });
        let mut t = Table::new([
            "scheme",
            "paper model",
            "linear (LogGP)",
            "max-conflict (Kim&Lee)",
        ]);
        let (mut so, mut sl, mut sm) = (0.0, 0.0, 0.0);
        for (name, own, lin, max) in &rows {
            t.push([
                name.clone(),
                format!("{own:.1}"),
                format!("{lin:.1}"),
                format!("{max:.1}"),
            ]);
            so += own;
            sl += lin;
            sm += max;
        }
        let n = rows.len() as f64;
        t.push([
            "MEAN".to_string(),
            format!("{:.1}", so / n),
            format!("{:.1}", sl / n),
            format!("{:.1}", sm / n),
        ]);
        show(&t);
    }
    println!(
        "\nExpected shape (paper §II): linear models 'poorly predict communication\n\
         delays' under sharing; the max-conflict multiplier over-penalises; the\n\
         paper's models sit well below both."
    );
    section("Sweep execution stats");
    println!("{}", session.stats());
}
