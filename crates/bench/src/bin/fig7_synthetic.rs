//! FIG7 — the MK1 (tree) and MK2 (complete graph) synthetic benchmarks:
//! measured vs predicted times and relative errors for the Myrinet model,
//! plus the exact fluid-solver reproduction of the paper's predicted
//! column at tref = 0.0354 s.

use netbw::graph::schemes;
use netbw::graph::units::MB;
use netbw::prelude::*;
use netbw_bench::{section, show};

fn paper_predicted(scheme: &CommGraph) {
    // the paper's tref: 0.0354 s (≈ 8 MB on Myrinet 2000)
    let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
    let sized = scheme.clone().with_uniform_size(10_000);
    let res = solver.solve(&sized);
    let mut t = Table::new([
        "com.",
        "penalty multiple",
        "Tp = mult x 0.0354 [s]",
        "paper Tp [s]",
    ]);
    let paper: &[(&str, &str)] = if scheme.name() == "mk1" {
        &[
            ("a", "0.089"),
            ("b", "0.089"),
            ("c", "0.071"),
            ("d", "0.053"),
            ("e", "0.035"),
            ("f", "0.053"),
            ("g", "0.071"),
        ]
    } else {
        &[
            ("a", "0.177"),
            ("b", "0.177"),
            ("c", "0.177"),
            ("d", "0.177"),
            ("e", "0.053"),
            ("f", "0.085"),
            ("g", "0.085"),
            ("h", "0.101"),
            ("i", "0.101"),
            ("j", "0.073"),
        ]
    };
    for (label, want) in paper {
        let id = sized.by_label(label).expect("label exists");
        let mult = res[id.idx()].completion / 10_000.0;
        t.push([
            label.to_string(),
            format!("{mult:.4}"),
            format!("{:.4}", mult * 0.0354),
            want.to_string(),
        ]);
    }
    show(&t);
}

fn main() {
    // One session for both measured-vs-predicted comparisons: the 8 MB
    // Myrinet Tref is measured once, and on a shared worker MK2 also
    // reuses MK1's fabric and solver.
    let session = EvalSession::new();
    let model = MyrinetModel::default();
    let sized: Vec<CommGraph> = [schemes::mk1(), schemes::mk2()]
        .into_iter()
        .map(|s| s.with_uniform_size(8 * MB))
        .collect();
    let cmps = session.compare_schemes(&model, FabricConfig::myrinet2000(), &sized);
    for (scheme, cmp) in [schemes::mk1(), schemes::mk2()].into_iter().zip(&cmps) {
        section(&format!(
            "Fig. 7 {} — fluid reproduction of the paper's predicted column",
            scheme.name().to_uppercase()
        ));
        paper_predicted(&scheme);

        section(&format!(
            "Fig. 7 {} — Tm (simulated Myrinet fabric) vs Tp (model), 8 MB",
            scheme.name().to_uppercase()
        ));
        show(&cmp.to_table());
        println!("Average of absolute errors Eabs = {:.1} %", cmp.eabs);
        println!(
            "(paper: Eabs = {} % against its physical cluster)",
            if scheme.name() == "mk1" { "2.6" } else { "9.5" }
        );
    }
    section("Sweep execution stats");
    println!("{}", session.stats());
}
