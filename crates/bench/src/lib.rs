//! Shared helpers for the paper-figure regeneration binaries (§VI results)
//! and the performance benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper: `fig1_conflicts` (§IV.A census), `fig2_penalties` (§IV.B
//! measured penalties), `fig4_gige_verify` (§V.A), `fig56_myrinet_states`
//! (§V.B), `fig7_synthetic`, `fig8_hpl_gige`, `fig9_hpl_myrinet` (§VI),
//! plus the calibration table, the `ext_*` extension reports, the
//! `ablation_*` studies, and `report_all` to print everything. The
//! `churn_smoke` binary is the CI guard for the incremental fluid engine
//! (see `ARCHITECTURE.md`); the Criterion benches in `benches/` measure
//! the machinery underneath.

use netbw::prelude::*;

/// Prints a section header in the harness output.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Pretty-prints a table to stdout.
pub fn show(table: &Table) {
    print!("{}", table.to_markdown());
}

/// The canonical churn workload shared by the `fluid_incremental` bench
/// and the `churn_smoke` CI guard — keeping it in one place means both
/// provably measure the same scenario. `flows` bounded-degree transfers
/// over `flows / 2` nodes (fixed seed), with starts staggered by
/// `stagger` seconds so many are in flight at any instant and the
/// population churns at every event.
pub fn churn_transfers(flows: usize, stagger: f64) -> Vec<(u64, netbw::graph::Communication, f64)> {
    let g = netbw::graph::schemes::random_bounded(flows / 2, flows, 3, 3, 10_000, 20080);
    g.comms()
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64, c, stagger * i as f64))
        .collect()
}

/// The stagger used with [`churn_transfers`] per model: GigE's closed
/// form tolerates ~400 concurrent flows; the Myrinet state-set
/// enumeration gets a wider stagger (~100 concurrent) to keep a single
/// drain bounded.
pub fn churn_stagger(kind: ModelKind) -> f64 {
    match kind {
        ModelKind::Myrinet => 100.0,
        _ => 25.0,
    }
}

/// Drains a churn workload through a fresh `FluidNetwork`, returning the
/// completion count and the cache stats. `full_recompute` selects the
/// pre-refactor query-every-iteration oracle.
pub fn drain_churn<M: PenaltyModel>(
    model: M,
    transfers: &[(u64, netbw::graph::Communication, f64)],
    full_recompute: bool,
) -> (usize, netbw::fluid::CacheStats) {
    let mut net = FluidNetwork::new(model, NetworkParams::unit());
    if full_recompute {
        net = net.with_full_recompute();
    }
    for &(key, comm, start) in transfers {
        net.add(key, comm, start);
    }
    let done = net.run_to_completion().len();
    (done, net.cache_stats())
}

/// The paper's three fabrics with their models, paired for sweeps:
/// (fabric config, model for that fabric).
pub fn fabric_model_pairs() -> Vec<(FabricConfig, Box<dyn PenaltyModel>)> {
    vec![
        (
            FabricConfig::gige(),
            Box::new(GigabitEthernetModel::default()),
        ),
        (
            FabricConfig::myrinet2000(),
            Box::new(MyrinetModel::default()),
        ),
        (
            FabricConfig::infinihost3(),
            Box::new(InfinibandModel::default()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_all_fabrics() {
        let pairs = fabric_model_pairs();
        assert_eq!(pairs.len(), 3);
        let names: Vec<&str> = pairs.iter().map(|(f, _)| f.name).collect();
        assert_eq!(names, vec!["gige", "myrinet", "infiniband"]);
    }
}
