//! Shared helpers for the table-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md §4` for the index); the Criterion benches in
//! `benches/` measure the performance of the underlying machinery.

use netbw::prelude::*;

/// Prints a section header in the harness output.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Pretty-prints a table to stdout.
pub fn show(table: &Table) {
    print!("{}", table.to_markdown());
}

/// The paper's three fabrics with their models, paired for sweeps:
/// (fabric config, model for that fabric).
pub fn fabric_model_pairs() -> Vec<(FabricConfig, Box<dyn PenaltyModel>)> {
    vec![
        (
            FabricConfig::gige(),
            Box::new(GigabitEthernetModel::default()),
        ),
        (
            FabricConfig::myrinet2000(),
            Box::new(MyrinetModel::default()),
        ),
        (
            FabricConfig::infinihost3(),
            Box::new(InfinibandModel::default()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_all_fabrics() {
        let pairs = fabric_model_pairs();
        assert_eq!(pairs.len(), 3);
        let names: Vec<&str> = pairs.iter().map(|(f, _)| f.name).collect();
        assert_eq!(names, vec!["gige", "myrinet", "infiniband"]);
    }
}
