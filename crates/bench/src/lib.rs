//! Shared helpers for the paper-figure regeneration binaries (§VI results)
//! and the performance benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper: `fig1_conflicts` (§IV.A census), `fig2_penalties` (§IV.B
//! measured penalties), `fig4_gige_verify` (§V.A), `fig56_myrinet_states`
//! (§V.B), `fig7_synthetic`, `fig8_hpl_gige`, `fig9_hpl_myrinet` (§VI),
//! plus the calibration table, the `ext_*` extension reports, the
//! `ablation_*` studies, and `report_all` to print everything. The
//! `churn_smoke` binary is the CI guard for the incremental fluid engine
//! (see `ARCHITECTURE.md`); the Criterion benches in `benches/` measure
//! the machinery underneath.

use netbw::graph::Communication;
use netbw::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Prints a section header in the harness output.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Pretty-prints a table to stdout.
pub fn show(table: &Table) {
    print!("{}", table.to_markdown());
}

/// The canonical seed of the shared churn workloads (also the paper's
/// publication year + month, for what it's worth).
pub const CHURN_SEED: u64 = 20080;

/// The canonical churn workload shared by the `fluid_incremental` bench
/// and the `churn_smoke` CI guard — keeping it in one place means both
/// provably measure the same scenario. `flows` bounded-degree transfers
/// over `flows / 2` nodes (fixed seed), with starts staggered by
/// `stagger` seconds so many are in flight at any instant and the
/// population churns at every event.
pub fn churn_transfers(flows: usize, stagger: f64) -> Vec<(u64, netbw::graph::Communication, f64)> {
    churn_transfers_seeded(flows, stagger, CHURN_SEED)
}

/// [`churn_transfers`] with an explicit seed — the entry point the
/// engine-level proptests use, so tests and benches draw their schedules
/// from one generator instead of hand-rolling divergent workloads.
pub fn churn_transfers_seeded(
    flows: usize,
    stagger: f64,
    seed: u64,
) -> Vec<(u64, netbw::graph::Communication, f64)> {
    let g = netbw::graph::schemes::random_bounded(flows.max(4) / 2, flows, 3, 3, 10_000, seed);
    g.comms()
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64, c, stagger * i as f64))
        .collect()
}

/// One settle-to-settle step of a churn scenario: flows that leave the
/// population, then flows that join it — in the exact chain order the
/// engine's `PopulationDelta` machinery prescribes (departures against the
/// previous population first, then arrivals against the new one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnStep {
    /// Strictly increasing positions (into the previous population) of
    /// the departing flows.
    pub departed: Vec<usize>,
    /// Arriving flows with their strictly increasing positions in the
    /// *new* population (arrivals need not append at the tail — slab slot
    /// reuse inserts them anywhere).
    pub arrived: Vec<(usize, Communication)>,
}

impl ChurnStep {
    /// Applies the step to `prev`, returning the new population and the
    /// positional delta describing the transition — `Arrived`, `Departed`
    /// or chained `Mixed`, whichever matches the step's shape.
    pub fn apply(&self, prev: &[Communication]) -> (Vec<Communication>, PopulationDelta) {
        let survivors: Vec<Communication> = prev
            .iter()
            .enumerate()
            .filter(|(p, _)| !self.departed.contains(p))
            .map(|(_, &c)| c)
            .collect();
        let mut comms = Vec::with_capacity(survivors.len() + self.arrived.len());
        let mut next_survivor = survivors.into_iter();
        let mut next_arrival = self.arrived.iter().peekable();
        while comms.len() < prev.len() - self.departed.len() + self.arrived.len() {
            if next_arrival.peek().is_some_and(|(i, _)| *i == comms.len()) {
                comms.push(next_arrival.next().unwrap().1);
            } else {
                comms.push(next_survivor.next().expect("arrival positions in range"));
            }
        }
        let delta = match (self.departed.is_empty(), self.arrived.is_empty()) {
            (true, _) => PopulationDelta::Arrived(self.arrived.iter().map(|&(i, _)| i).collect()),
            (false, true) => PopulationDelta::Departed(self.departed.clone()),
            (false, false) => PopulationDelta::Mixed {
                departed: self.departed.clone(),
                arrived: self.arrived.iter().map(|&(i, _)| i).collect(),
            },
        };
        (comms, delta)
    }

    /// How many flows this step changes (departures plus arrivals).
    pub fn changed_count(&self) -> usize {
        self.departed.len() + self.arrived.len()
    }
}

/// A seeded multi-settle churn scenario: a starting population plus a
/// schedule of arrival/departure/mixed-batch steps. This is the
/// settle-form twin of [`churn_transfers`], used by the model-level
/// proptests that pin scratch-backed incremental evaluation against the
/// full recompute across whole settle sequences.
#[derive(Debug, Clone)]
pub struct ChurnScenario {
    /// The population of the first settle.
    pub initial: Vec<Communication>,
    /// The settle-to-settle transitions, in order.
    pub steps: Vec<ChurnStep>,
}

impl ChurnScenario {
    /// Generates a scenario over a `nodes`-node fabric: `initial` starting
    /// flows, then `steps` transitions, each departing up to 3 flows
    /// and/or arriving up to 3 new ones (so pure-arrival, pure-departure
    /// and mixed batches all occur). Deterministic in `seed`.
    pub fn generate(seed: u64, nodes: u32, initial: usize, steps: usize) -> ChurnScenario {
        let nodes = nodes.max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let comm = |rng: &mut StdRng| {
            let s = rng.random_range(0..nodes);
            let mut d = rng.random_range(0..nodes - 1);
            if d >= s {
                d += 1;
            }
            Communication::new(s, d, 100 + rng.random_range(0..900u32) as u64)
        };
        let initial: Vec<Communication> = (0..initial).map(|_| comm(&mut rng)).collect();
        let mut population = initial.len();
        let mut out_steps = Vec::with_capacity(steps);
        for _ in 0..steps {
            let mut departed: Vec<usize> = Vec::new();
            let mut arrived: Vec<(usize, Communication)> = Vec::new();
            let n_dep = (rng.random_range(0..4u32) as usize).min(population);
            for _ in 0..n_dep {
                let p = rng.random_range(0..population as u32) as usize;
                if !departed.contains(&p) {
                    departed.push(p);
                }
            }
            departed.sort_unstable();
            let survivors = population - departed.len();
            let mut n_arr = rng.random_range(0..4u32) as usize;
            if departed.is_empty() && n_arr == 0 {
                n_arr = 1; // every step changes the population
            }
            for _ in 0..n_arr {
                let new_len = survivors + arrived.len() + 1;
                let mut i = rng.random_range(0..new_len as u32) as usize;
                while arrived.iter().any(|&(j, _)| j == i) {
                    i = (i + 1) % new_len;
                }
                arrived.push((i, comm(&mut rng)));
            }
            arrived.sort_unstable_by_key(|&(i, _)| i);
            population = survivors + arrived.len();
            out_steps.push(ChurnStep { departed, arrived });
        }
        ChurnScenario {
            initial,
            steps: out_steps,
        }
    }
}

/// The stagger used with [`churn_transfers`] per model: GigE's closed
/// form tolerates ~400 concurrent flows; the Myrinet state-set
/// enumeration gets a wider stagger (~100 concurrent) to keep a single
/// drain bounded.
pub fn churn_stagger(kind: ModelKind) -> f64 {
    match kind {
        ModelKind::Myrinet => 100.0,
        _ => 25.0,
    }
}

/// Which event-timeline flavor a churn drain runs through — the three
/// `FluidNetwork` constructors, named for benches and smoke guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// The default engine: lazy finish-time heap + incremental cache.
    Heap,
    /// Incremental cache, but linear slab scans for the next event —
    /// the pre-heap engine, kept as the wall-clock baseline.
    LinearTimeline,
    /// Full model requery every settle plus linear scans — the oracle.
    FullRecompute,
    /// The heap engine partitioned by conflict component: one cache,
    /// scratch and timeline per component, settles independent per shard
    /// (serial dispatch here; benches plug in the sweep executor).
    Sharded,
    /// The sharded engine with splitting disabled: bridging arrivals
    /// still merge shards, but component break-up never carves them back
    /// apart. The never-refining ablation baseline the `shard_split_smoke`
    /// guard compares against.
    ShardedMergeOnly,
}

/// Builds a fresh unit-parameter engine in the requested mode.
pub fn churn_engine<M: PenaltyModel>(model: M, mode: EngineMode) -> FluidNetwork<M> {
    let net = FluidNetwork::new(model, NetworkParams::unit());
    match mode {
        EngineMode::Heap => net,
        EngineMode::LinearTimeline => net.with_linear_timeline(),
        EngineMode::FullRecompute => net.with_full_recompute(),
        EngineMode::Sharded => net.with_sharded(),
        EngineMode::ShardedMergeOnly => net.with_sharded_merge_only(),
    }
}

/// A churn workload of `comps` disjoint conflict components: the
/// [`churn_transfers_seeded`] schedule stamped out `comps` times with
/// node-id offsets. Every copy keeps the *same* arrival schedule, so
/// events coincide across components and each settle barrier carries many
/// dirty shards — the worst case for a serial settle loop and exactly
/// what the sharded engine parallelizes. Keys are globally unique
/// (component-major).
pub fn multi_component_churn(
    comps: usize,
    flows_per_comp: usize,
    stagger: f64,
    seed: u64,
) -> Vec<(u64, netbw::graph::Communication, f64)> {
    let base = churn_transfers_seeded(flows_per_comp, stagger, seed);
    let nodes = (flows_per_comp.max(4) / 2) as u32;
    let mut out = Vec::with_capacity(comps * base.len());
    for c in 0..comps {
        let offset = c as u32 * nodes;
        for &(key, comm, start) in &base {
            out.push((
                c as u64 * base.len() as u64 + key,
                Communication::new(comm.src.0 + offset, comm.dst.0 + offset, comm.size),
                start,
            ));
        }
    }
    out.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
    out
}

/// A churn workload whose conflict components repeatedly merge and break
/// apart: `waves` waves, each carrying `flows_per_comp` staggered
/// intra-component flows for every one of `comps` disjoint components
/// *plus* a chain of tiny bridge flows joining adjacent components. While
/// a wave's bridges are in flight the whole fabric is one conflict
/// component; the bridges are sized to finish early in the wave, so the
/// component breaks back into `comps` pieces long before the next wave
/// re-bridges it. A merge-only partition therefore degrades to a single
/// mega-shard on the first wave and stays there; a splitting partition
/// returns to `comps` shards every wave. Intra-component flow lifetimes
/// are matched to the wave length so the live population reaches a steady
/// state instead of accumulating — the regime where per-settle cost
/// should stay flat over time. Bridges start mid-slot (`stagger / 2`
/// after the wave opens), so at every wave boundary the previous wave's
/// bridges are gone and the next wave's have not arrived: boundaries
/// observe the split partition. Keys are globally unique and the schedule
/// is sorted by start time.
pub fn bridge_wave_churn(
    comps: usize,
    flows_per_comp: usize,
    waves: usize,
    stagger: f64,
    seed: u64,
) -> Vec<(u64, Communication, f64)> {
    let comps = comps.max(2);
    let nodes = (flows_per_comp.max(4) / 2) as u32;
    let wave_len = stagger * flows_per_comp as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut key = 0u64;
    for w in 0..waves {
        let t0 = w as f64 * wave_len;
        for c in 0..comps {
            let offset = c as u32 * nodes;
            for i in 0..flows_per_comp {
                let s = rng.random_range(0..nodes);
                let mut d = rng.random_range(0..nodes - 1);
                if d >= s {
                    d += 1;
                }
                let size = 50 + rng.random_range(0..50u32) as u64;
                out.push((
                    key,
                    Communication::new(offset + s, offset + d, size),
                    t0 + stagger * i as f64,
                ));
                key += 1;
            }
        }
        for c in 0..comps - 1 {
            let a = c as u32 * nodes;
            let b = (c as u32 + 1) * nodes;
            out.push((key, Communication::new(a, b, 10), t0 + stagger / 2.0));
            key += 1;
        }
    }
    out.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
    out
}

/// Drains a churn workload through a fresh `FluidNetwork`, returning the
/// completion count and the cache stats. `full_recompute` selects the
/// query-every-iteration oracle; `false` runs the default (heap) engine.
pub fn drain_churn<M: PenaltyModel>(
    model: M,
    transfers: &[(u64, netbw::graph::Communication, f64)],
    full_recompute: bool,
) -> (usize, netbw::fluid::CacheStats) {
    let mode = if full_recompute {
        EngineMode::FullRecompute
    } else {
        EngineMode::Heap
    };
    let (done, stats, _) = drain_churn_mode(model, transfers, mode);
    (done, stats)
}

/// [`drain_churn`] with an explicit [`EngineMode`], also returning the
/// event-timeline counters.
pub fn drain_churn_mode<M: PenaltyModel>(
    model: M,
    transfers: &[(u64, netbw::graph::Communication, f64)],
    mode: EngineMode,
) -> (usize, netbw::fluid::CacheStats, netbw::fluid::TimelineStats) {
    let mut net = churn_engine(model, mode);
    for &(key, comm, start) in transfers {
        net.add(key, comm, start);
    }
    let done = net.run_to_completion().len();
    (done, net.cache_stats(), net.timeline_stats())
}

/// Drains only until `prefix` flows have completed (or the network runs
/// dry), returning the completions actually collected. This is how the
/// 100k-flow smoke group times the linear-scan baseline: a full linear
/// drain over a 100k-slot slab is O(events x slots) and takes minutes,
/// but a fixed completion prefix gives both engines the same measured
/// work — every event up to the prefix'th completion.
pub fn drain_churn_prefix<M: PenaltyModel>(
    model: M,
    transfers: &[(u64, netbw::graph::Communication, f64)],
    mode: EngineMode,
    prefix: usize,
) -> (usize, netbw::fluid::CacheStats, netbw::fluid::TimelineStats) {
    let mut net = churn_engine(model, mode);
    let done = drain_prefix_into(&mut net, transfers, prefix);
    (done, net.cache_stats(), net.timeline_stats())
}

/// Adds `transfers` to a prebuilt network and drains until `prefix` flows
/// have completed (or the network runs dry), returning the completion
/// count. The engine-agnostic core of [`drain_churn_prefix`] — the
/// `shard_smoke` guard uses it directly so it can time networks carrying
/// a custom settle dispatcher.
pub fn drain_prefix_into<M: PenaltyModel>(
    net: &mut FluidNetwork<M>,
    transfers: &[(u64, netbw::graph::Communication, f64)],
    prefix: usize,
) -> usize {
    for &(key, comm, start) in transfers {
        net.add(key, comm, start);
    }
    let mut done = 0usize;
    while done < prefix {
        let Some(t) = net.next_event_time() else {
            break;
        };
        done += net.advance_to(t).len();
    }
    done
}

/// The paper's three fabrics with their models, paired for sweeps:
/// (fabric config, model for that fabric).
pub fn fabric_model_pairs() -> Vec<(FabricConfig, Box<dyn PenaltyModel>)> {
    vec![
        (
            FabricConfig::gige(),
            Box::new(GigabitEthernetModel::default()),
        ),
        (
            FabricConfig::myrinet2000(),
            Box::new(MyrinetModel::default()),
        ),
        (
            FabricConfig::infinihost3(),
            Box::new(InfinibandModel::default()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_all_fabrics() {
        let pairs = fabric_model_pairs();
        assert_eq!(pairs.len(), 3);
        let names: Vec<&str> = pairs.iter().map(|(f, _)| f.name).collect();
        assert_eq!(names, vec!["gige", "myrinet", "infiniband"]);
    }

    #[test]
    fn churn_scenario_is_deterministic_in_its_seed() {
        let a = ChurnScenario::generate(7, 8, 6, 20);
        let b = ChurnScenario::generate(7, 8, 6, 20);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.steps, b.steps);
        let c = ChurnScenario::generate(8, 8, 6, 20);
        assert_ne!(a.initial, c.initial);
    }

    #[test]
    fn churn_scenario_steps_produce_verifiable_deltas() {
        // Every generated step must pass the core alignment verifier —
        // the same check the models run before trusting a delta — and the
        // schedule must exercise all three positional delta shapes.
        let scenario = ChurnScenario::generate(42, 10, 8, 60);
        let mut population = scenario.initial.clone();
        let (mut arrivals, mut departures, mut mixed) = (0, 0, 0);
        for step in &scenario.steps {
            let (next, delta) = step.apply(&population);
            match &delta {
                PopulationDelta::Arrived(_) => arrivals += 1,
                PopulationDelta::Departed(_) => departures += 1,
                PopulationDelta::Mixed { .. } => mixed += 1,
                PopulationDelta::Rebuilt => unreachable!("steps are positional"),
            }
            let al = netbw::core::incremental::align(&next, &delta, &population)
                .expect("generated deltas must verify");
            assert_eq!(al.arrived.len() + al.departed.len(), step.changed_count());
            population = next;
        }
        assert!(arrivals > 0, "no pure-arrival steps in 60");
        assert!(departures > 0, "no pure-departure steps in 60");
        assert!(mixed > 0, "no mixed steps in 60");
    }

    #[test]
    fn mode_drains_agree_and_prefix_stops_early() {
        let transfers = churn_transfers(48, 25.0);
        let heap = drain_churn_mode(
            GigabitEthernetModel::default(),
            &transfers,
            EngineMode::Heap,
        );
        let lin = drain_churn_mode(
            GigabitEthernetModel::default(),
            &transfers,
            EngineMode::LinearTimeline,
        );
        let full = drain_churn_mode(
            GigabitEthernetModel::default(),
            &transfers,
            EngineMode::FullRecompute,
        );
        let shard = drain_churn_mode(
            GigabitEthernetModel::default(),
            &transfers,
            EngineMode::Sharded,
        );
        assert_eq!(heap.0, 48);
        assert_eq!(lin.0, 48);
        assert_eq!(full.0, 48);
        assert_eq!(shard.0, 48);
        assert!(heap.2.heap_pushes > 0, "{:?}", heap.2);
        assert_eq!(lin.2.heap_pushes, 0, "{:?}", lin.2);
        let (done, _, _) = drain_churn_prefix(
            GigabitEthernetModel::default(),
            &transfers,
            EngineMode::Heap,
            10,
        );
        assert!((10..48).contains(&done), "prefix drain got {done}");
    }

    #[test]
    fn multi_component_churn_keeps_components_disjoint_and_schedules_aligned() {
        let base = churn_transfers_seeded(8, 5.0, CHURN_SEED);
        let multi = multi_component_churn(3, 8, 5.0, CHURN_SEED);
        assert_eq!(multi.len(), 3 * base.len());
        let mut keys: Vec<u64> = multi.iter().map(|t| t.0).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), multi.len(), "keys must be globally unique");
        let nodes = 4u32; // 8.max(4)/2 nodes per component
        for &(key, comm, start) in &multi {
            let comp = (key / base.len() as u64) as u32;
            let copy = &base[(key % base.len() as u64) as usize];
            assert_eq!(start, copy.2, "copies keep the base schedule");
            for node in [comm.src.0, comm.dst.0] {
                assert!(
                    (comp * nodes..(comp + 1) * nodes).contains(&node),
                    "node {node} leaks out of component {comp}"
                );
            }
        }
    }

    #[test]
    fn bridge_waves_split_and_remerge_the_partition() {
        let (comps, flows_per_comp, waves) = (4usize, 8usize, 3usize);
        let transfers = bridge_wave_churn(comps, flows_per_comp, waves, 10.0, CHURN_SEED);
        assert_eq!(
            transfers.len(),
            waves * (comps * flows_per_comp + comps - 1)
        );
        assert_eq!(transfers, bridge_wave_churn(4, 8, 3, 10.0, CHURN_SEED));

        let mut split = churn_engine(GigabitEthernetModel::default(), EngineMode::Sharded);
        for &(key, comm, start) in &transfers {
            split.add(key, comm, start);
        }
        let done = split.run_to_completion().len();
        assert_eq!(done, transfers.len());
        let refined = split.shard_stats();
        // Every wave's bridge chain merges shards and its completion
        // carves them back apart.
        assert!(refined.merges >= (comps - 1) as u64, "{refined:?}");
        assert!(refined.splits >= (comps - 1) as u64, "{refined:?}");

        let mut fused = churn_engine(
            GigabitEthernetModel::default(),
            EngineMode::ShardedMergeOnly,
        );
        for &(key, comm, start) in &transfers {
            fused.add(key, comm, start);
        }
        assert_eq!(fused.run_to_completion().len(), done);
        let stats = fused.shard_stats();
        assert_eq!(stats.splits, 0, "merge-only must never split: {stats:?}");
        assert!(stats.merges >= (comps - 1) as u64, "{stats:?}");
    }

    #[test]
    fn seeded_transfers_match_the_canonical_workload() {
        assert_eq!(
            churn_transfers(64, 25.0),
            churn_transfers_seeded(64, 25.0, CHURN_SEED)
        );
        assert_ne!(
            churn_transfers_seeded(64, 25.0, 1),
            churn_transfers_seeded(64, 25.0, 2)
        );
    }
}
