//! Timelines derived from solved transfers: per-communication rate
//! series and aggregate network utilization over time.
//!
//! The paper's simulator reports "the duration of all events and total
//! time, the kind of conflicts, the average penality" (§VI.A); timelines
//! make the *when* visible — which phase of an application saturates the
//! fabric, and when the model predicts the penalty spikes.

use crate::solver::TransferResult;

/// A piecewise-constant series of `(t_start, t_end, value)` segments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepSeries {
    /// Segments in increasing time order, non-overlapping.
    pub segments: Vec<(f64, f64, f64)>,
}

impl StepSeries {
    /// The value at time `t` (0 outside all segments; boundaries belong to
    /// the later segment). Binary search over the sorted segment starts,
    /// so sampling a long series is O(log segments) per probe.
    pub fn at(&self, t: f64) -> f64 {
        let idx = self.segments.partition_point(|&(a, _, _)| a <= t);
        if idx == 0 {
            return 0.0;
        }
        let (a, b, v) = self.segments[idx - 1];
        debug_assert!(a <= t);
        if t < b {
            v
        } else {
            0.0
        }
    }

    /// Integral of the series over its whole span.
    pub fn integral(&self) -> f64 {
        self.segments.iter().map(|&(a, b, v)| (b - a) * v).sum()
    }

    /// Maximum value over all segments (0 when empty).
    pub fn max(&self) -> f64 {
        self.segments.iter().map(|s| s.2).fold(0.0, f64::max)
    }
}

/// The penalty of one transfer over time, from its recorded phases.
pub fn penalty_series(result: &TransferResult) -> StepSeries {
    StepSeries {
        segments: result
            .phases
            .iter()
            .map(|p| (p.t0, p.t1, p.penalty))
            .collect(),
    }
}

/// Aggregate network throughput over time, in units of the uncontended
/// single-stream bandwidth: each active transfer contributes `1/penalty`.
/// Breakpoints are the union of all phase boundaries.
pub fn utilization(results: &[TransferResult]) -> StepSeries {
    // One signed rate edge per phase boundary, swept in time order with a
    // running sum — O(P log P) over P phases, where the old implementation
    // re-scanned every phase per breakpoint window (quadratic).
    let total_phases: usize = results.iter().map(|r| r.phases.len()).sum();
    let mut edges: Vec<(f64, f64)> = Vec::with_capacity(2 * total_phases);
    for r in results {
        for p in &r.phases {
            let rate = 1.0 / p.penalty;
            edges.push((p.t0, rate));
            edges.push((p.t1, -rate));
        }
    }
    edges.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut segments = Vec::new();
    let mut value = 0.0;
    let mut i = 0;
    while i < edges.len() {
        let cut = edges[i].0;
        // fold the whole dedup run (consecutive edges within the cut
        // tolerance) into the running sum before emitting the window
        value += edges[i].1;
        let mut j = i + 1;
        while j < edges.len() && (edges[j].0 - edges[j - 1].0).abs() < 1e-12 {
            value += edges[j].1;
            j += 1;
        }
        if j < edges.len() {
            let next = edges[j].0;
            if next - cut >= 1e-15 {
                segments.push((cut, next, value));
            }
        }
        i = j;
    }
    StepSeries { segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetworkParams;
    use crate::solver::FluidSolver;
    use netbw_core::MyrinetModel;
    use netbw_graph::schemes;

    #[test]
    fn single_transfer_utilization_is_one() {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let g = schemes::single().with_uniform_size(100);
        let res = solver.solve(&g);
        let u = utilization(&res);
        assert!((u.at(50.0) - 1.0).abs() < 1e-12);
        assert!((u.integral() - 100.0).abs() < 1e-9); // bytes in bw units
        assert_eq!(u.at(1000.0), 0.0);
    }

    #[test]
    fn two_sharing_transfers_keep_aggregate_at_one() {
        // two comms from one node under the Myrinet model: each rate 1/2
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let g = schemes::outgoing_ladder(2).with_uniform_size(100);
        let res = solver.solve(&g);
        let u = utilization(&res);
        assert!((u.at(10.0) - 1.0).abs() < 1e-12, "{}", u.at(10.0));
        assert!((u.integral() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn penalty_series_tracks_phases() {
        // MK1's `a` has two phases: penalty 3 then 2
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk1 = schemes::mk1().with_uniform_size(1000);
        let res = solver.solve(&mk1);
        let a = mk1.by_label("a").unwrap();
        let s = penalty_series(&res[a.idx()]);
        assert_eq!(s.segments.len(), 2);
        assert_eq!(s.at(0.0), 3.0);
        assert!((s.max() - 3.0).abs() < 1e-12);
        let t_mid = 0.5 * (s.segments[1].0 + s.segments[1].1);
        assert_eq!(s.at(t_mid), 2.0);
    }

    #[test]
    fn at_binary_search_handles_gaps_and_boundaries() {
        let s = StepSeries {
            segments: vec![(0.0, 1.0, 2.0), (1.0, 2.0, 3.0), (5.0, 6.0, 4.0)],
        };
        assert_eq!(s.at(-0.5), 0.0, "before the series");
        assert_eq!(s.at(0.0), 2.0, "boundary belongs to the later segment");
        assert_eq!(s.at(1.0), 3.0);
        assert_eq!(s.at(1.5), 3.0);
        assert_eq!(s.at(2.0), 0.0, "gap after a closing boundary");
        assert_eq!(s.at(3.0), 0.0, "inside the gap");
        assert_eq!(s.at(5.5), 4.0);
        assert_eq!(s.at(6.0), 0.0, "past the series");
        assert_eq!(StepSeries::default().at(0.0), 0.0, "empty series");
    }

    #[test]
    fn utilization_reflects_parallel_components() {
        // MK1 starts with three independent components running at once:
        // rates 1/3+1/3 (a,b) + 1/2+1/2 (c,g) + 1/1.5+1/1.5 (d,f) + 1 (e)
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk1 = schemes::mk1().with_uniform_size(1000);
        let res = solver.solve(&mk1);
        let u = utilization(&res);
        let expect = 2.0 / 3.0 + 1.0 + 2.0 / 1.5 + 1.0;
        assert!(
            (u.at(1.0) - expect).abs() < 1e-9,
            "{} vs {expect}",
            u.at(1.0)
        );
    }
}
