//! Timelines derived from solved transfers: per-communication rate
//! series and aggregate network utilization over time.
//!
//! The paper's simulator reports "the duration of all events and total
//! time, the kind of conflicts, the average penality" (§VI.A); timelines
//! make the *when* visible — which phase of an application saturates the
//! fabric, and when the model predicts the penalty spikes.

use crate::solver::TransferResult;

/// A piecewise-constant series of `(t_start, t_end, value)` segments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepSeries {
    /// Segments in increasing time order, non-overlapping.
    pub segments: Vec<(f64, f64, f64)>,
}

impl StepSeries {
    /// The value at time `t` (0 outside all segments; boundaries belong to
    /// the later segment).
    pub fn at(&self, t: f64) -> f64 {
        for &(a, b, v) in &self.segments {
            if t >= a && t < b {
                return v;
            }
        }
        0.0
    }

    /// Integral of the series over its whole span.
    pub fn integral(&self) -> f64 {
        self.segments.iter().map(|&(a, b, v)| (b - a) * v).sum()
    }

    /// Maximum value over all segments (0 when empty).
    pub fn max(&self) -> f64 {
        self.segments.iter().map(|s| s.2).fold(0.0, f64::max)
    }
}

/// The penalty of one transfer over time, from its recorded phases.
pub fn penalty_series(result: &TransferResult) -> StepSeries {
    StepSeries {
        segments: result
            .phases
            .iter()
            .map(|p| (p.t0, p.t1, p.penalty))
            .collect(),
    }
}

/// Aggregate network throughput over time, in units of the uncontended
/// single-stream bandwidth: each active transfer contributes `1/penalty`.
/// Breakpoints are the union of all phase boundaries.
pub fn utilization(results: &[TransferResult]) -> StepSeries {
    let mut cuts: Vec<f64> = results
        .iter()
        .flat_map(|r| r.phases.iter().flat_map(|p| [p.t0, p.t1]))
        .collect();
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let mut segments = Vec::new();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b - a < 1e-15 {
            continue;
        }
        let mid = 0.5 * (a + b);
        let value: f64 = results
            .iter()
            .flat_map(|r| &r.phases)
            .filter(|p| p.t0 <= mid && mid < p.t1)
            .map(|p| 1.0 / p.penalty)
            .sum();
        segments.push((a, b, value));
    }
    StepSeries { segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetworkParams;
    use crate::solver::FluidSolver;
    use netbw_core::MyrinetModel;
    use netbw_graph::schemes;

    #[test]
    fn single_transfer_utilization_is_one() {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let g = schemes::single().with_uniform_size(100);
        let res = solver.solve(&g);
        let u = utilization(&res);
        assert!((u.at(50.0) - 1.0).abs() < 1e-12);
        assert!((u.integral() - 100.0).abs() < 1e-9); // bytes in bw units
        assert_eq!(u.at(1000.0), 0.0);
    }

    #[test]
    fn two_sharing_transfers_keep_aggregate_at_one() {
        // two comms from one node under the Myrinet model: each rate 1/2
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let g = schemes::outgoing_ladder(2).with_uniform_size(100);
        let res = solver.solve(&g);
        let u = utilization(&res);
        assert!((u.at(10.0) - 1.0).abs() < 1e-12, "{}", u.at(10.0));
        assert!((u.integral() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn penalty_series_tracks_phases() {
        // MK1's `a` has two phases: penalty 3 then 2
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk1 = schemes::mk1().with_uniform_size(1000);
        let res = solver.solve(&mk1);
        let a = mk1.by_label("a").unwrap();
        let s = penalty_series(&res[a.idx()]);
        assert_eq!(s.segments.len(), 2);
        assert_eq!(s.at(0.0), 3.0);
        assert!((s.max() - 3.0).abs() < 1e-12);
        let t_mid = 0.5 * (s.segments[1].0 + s.segments[1].1);
        assert_eq!(s.at(t_mid), 2.0);
    }

    #[test]
    fn utilization_reflects_parallel_components() {
        // MK1 starts with three independent components running at once:
        // rates 1/3+1/3 (a,b) + 1/2+1/2 (c,g) + 1/1.5+1/1.5 (d,f) + 1 (e)
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk1 = schemes::mk1().with_uniform_size(1000);
        let res = solver.solve(&mk1);
        let u = utilization(&res);
        let expect = 2.0 / 3.0 + 1.0 + 2.0 / 1.5 + 1.0;
        assert!(
            (u.at(1.0) - expect).abs() < 1e-9,
            "{} vs {expect}",
            u.at(1.0)
        );
    }
}
