//! Component shards: per-conflict-component timelines and penalty caches
//! for [`crate::FluidNetwork::with_sharded`].
//!
//! The penalty models are component-local (see
//! [`netbw_core::components`]): flows in disjoint connected components of
//! the shared-endpoint graph never influence each other's penalty. The
//! sharded engine exploits that by partitioning the slab-backed flow
//! population into such components ("shards") and giving each its own
//! [`crate::event_heap`] timeline and [`PenaltyCache`] (with its own model
//! scratch). A settle then refreshes only the *dirty* shards — and those
//! refreshes are independent, so they can run in parallel through a
//! [`crate::dispatch::SettleDispatch`].
//!
//! The partition is **coarsening-only**, driven by the
//! [`ComponentTracker`]: a new flow either joins an existing shard,
//! creates a fresh one, or *bridges* two — in which case the loser shard
//! is retired at the next settle barrier: its member list and event heaps
//! are spliced into the winner, its cache counters are folded into the
//! set-wide accumulator, and the winner's cache is invalidated for a full
//! rebuild over the merged population. Departures never split a shard
//! (unions of true components are still safe partition cells).
//!
//! One model behaviour is *not* component-local: a Myrinet state-set
//! budget refusal degrades the whole query population to the max-conflict
//! approximation, so an over-budget component in the unsharded engine
//! changes the penalties of every other component in the same query. The
//! first time any shard's refresh reports such a fallback, the settle
//! barrier `ShardSet::collapse_all`s the partition into a single global
//! shard and redoes the settle — from then on the engine runs the same
//! global queries as the heap engine, keeping the modes bit-for-bit equal
//! in every regime.
//!
//! Cross-shard event ordering goes through one lazy min-heap of
//! `(next event time, shard, version)` entries: every change to a shard's
//! timeline bumps its version and pushes a fresh entry, and stale entries
//! are discarded on pop — the same lazy-invalidation idea the per-shard
//! completion heaps already use, one level up. Retired shard slots are
//! never reused, so a stale entry can never alias a newer shard.

use crate::cache::{CacheStats, PenaltyCache};
use crate::event_heap::{EventHeaps, TimelineStats};
use crate::slab::{FlowKey, Slab};
use netbw_core::{ComponentChange, ComponentTracker};
use netbw_graph::Communication;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One conflict component's private engine state.
pub(crate) struct Shard {
    /// The shard's penalty cache (and model scratch).
    pub(crate) cache: PenaltyCache,
    /// The shard's completion/gate heaps.
    pub(crate) events: EventHeaps,
    /// Every flow ever assigned to this shard and not yet known-dead;
    /// stale keys (completed flows) are compacted lazily before a rebuild
    /// gather. Only rebuild gathers read this — warm settles stage the
    /// population from the cache's pending change sets.
    pub(crate) members: Vec<FlowKey>,
    /// Staging buffer for the next refresh's population (recycled through
    /// [`PenaltyCache::refresh`] like the unsharded engine's buffer).
    pub(crate) staged: Vec<FlowKey>,
    /// Communications aligned with `staged` (same recycling).
    pub(crate) comms_buf: Vec<Communication>,
    /// Bumped on every timeline change; the cross-shard event heap stamps
    /// its entries with this, so superseded entries go stale.
    pub(crate) version: u64,
    /// Whether the shard sits in the dirty list awaiting a settle.
    pub(crate) dirty: bool,
}

impl Shard {
    fn new() -> Self {
        Shard {
            cache: PenaltyCache::new(),
            events: EventHeaps::default(),
            members: Vec::new(),
            staged: Vec::new(),
            comms_buf: Vec::new(),
            version: 0,
            dirty: false,
        }
    }

    /// An independent deep copy (cache via [`PenaltyCache::fork`], heaps
    /// entry-for-entry) that settles bit-for-bit like the original.
    fn fork(&self) -> Shard {
        Shard {
            cache: self.cache.fork(),
            events: self.events.clone(),
            members: self.members.clone(),
            staged: self.staged.clone(),
            comms_buf: self.comms_buf.clone(),
            version: self.version,
            dirty: self.dirty,
        }
    }
}

/// A cross-shard event-heap entry: one shard's next completion-or-gate
/// time as of `version`. Min-ordered by time with a shard-id tiebreak so
/// simultaneous events pop deterministically.
#[derive(Clone, Copy, Debug)]
struct ShardNext {
    time: f64,
    shard: usize,
    version: u64,
}

impl PartialEq for ShardNext {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ShardNext {}
impl PartialOrd for ShardNext {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ShardNext {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.shard.cmp(&self.shard))
            .then_with(|| other.version.cmp(&self.version))
    }
}

/// The engine's shard table: component tracker, live shards, the dirty
/// list and the cross-shard event heap, plus the counters of retired
/// shards (so aggregate stats survive merges and resets).
#[derive(Default)]
pub(crate) struct ShardSet {
    tracker: ComponentTracker,
    /// Shard index per tracker root index (monotonically grown; entries
    /// for absorbed roots go stale but absorbed roots are never looked up
    /// again — the tracker only coarsens).
    shard_of_root: Vec<usize>,
    /// Live shards; a merge retires the loser's slot to `None` and slots
    /// are never reused, so `ShardNext` entries can never alias.
    shards: Vec<Option<Shard>>,
    /// Count of `Some` entries in `shards`.
    live: usize,
    /// Indices of shards with pending population changes, in marking
    /// order (settles sort it).
    pub(crate) dirty: Vec<usize>,
    next_events: BinaryHeap<ShardNext>,
    /// Cache counters of retired shards (merged away, or cleared by a
    /// reset).
    retired_cache: CacheStats,
    /// Timeline counters of shards cleared by a reset (merges fold the
    /// loser's counters into the winner's heaps directly).
    retired_timeline: TimelineStats,
    /// Set once the partition has been collapsed into a single global
    /// shard (see [`Self::collapse_all`]); every later assignment routes
    /// here, bypassing the tracker, so the partition never re-forms.
    collapsed_into: Option<usize>,
    /// Settles served entirely from valid shard caches — the sharded
    /// analogue of [`CacheStats::reuses`] on the unsharded engine.
    reused_settles: u64,
    /// Scratch buffer for the candidate shards of one event.
    candidates: Vec<usize>,
}

impl ShardSet {
    /// Number of live shards.
    pub(crate) fn live_count(&self) -> usize {
        self.live
    }

    /// Routes a flow's endpoints through the component tracker, creating
    /// or merging shards as needed, and returns the index of the shard
    /// the flow belongs to.
    pub(crate) fn assign(&mut self, comm: &Communication) -> usize {
        if let Some(id) = self.collapsed_into {
            return id;
        }
        match self.tracker.insert(comm.src, comm.dst) {
            ComponentChange::Created { root } => {
                let id = self.shards.len();
                self.shards.push(Some(Shard::new()));
                self.live += 1;
                let root = root as usize;
                if self.shard_of_root.len() <= root {
                    self.shard_of_root.resize(root + 1, usize::MAX);
                }
                self.shard_of_root[root] = id;
                id
            }
            ComponentChange::Joined { root } => self.shard_of_root[root as usize],
            ComponentChange::Bridged { root, absorbed } => {
                let winner = self.shard_of_root[root as usize];
                let loser = self.shard_of_root[absorbed as usize];
                self.merge(winner, loser);
                winner
            }
        }
    }

    /// Splices shard `loser` into shard `winner`: members and event heaps
    /// move over verbatim (slab keys and epochs are global, so every
    /// entry stays valid), the loser's cache counters are folded into the
    /// retired accumulator, and the winner is invalidated for a full
    /// rebuild — no positional delta can describe two populations
    /// becoming one.
    fn merge(&mut self, winner: usize, loser: usize) {
        debug_assert_ne!(winner, loser);
        let loser_shard = self.shards[loser].take().expect("absorbed shard is live");
        self.live -= 1;
        self.retired_cache.absorb(loser_shard.cache.stats());
        let w = self.shards[winner].as_mut().expect("winning shard is live");
        w.members.extend(loser_shard.members);
        w.events.append(loser_shard.events);
        w.cache.invalidate_rebuild();
        // The loser's global entries go stale by its slot turning `None`;
        // the winner's by the version bump at its next refresh.
        if !w.dirty {
            w.dirty = true;
            self.dirty.push(winner);
        }
        if loser_shard.dirty {
            self.dirty.retain(|&d| d != loser);
        }
    }

    /// Whether the partition has been collapsed into one global shard.
    #[cfg(test)]
    pub(crate) fn is_collapsed(&self) -> bool {
        self.collapsed_into.is_some()
    }

    /// Merges every live shard into the lowest-indexed one and routes all
    /// future assignments there, leaving exactly the merged shard dirty
    /// (queued for a full rebuild).
    ///
    /// This is the bitwise-equality escape hatch for models whose answers
    /// have cross-component reach: a Myrinet budget refusal degrades the
    /// *whole* query population to the max-conflict approximation, so the
    /// moment any shard's refresh reports [`QueryOutcome::budget_fallback`]
    /// the per-component factoring stops being safe. A single global shard
    /// runs the exact same queries as the unsharded engine, restoring
    /// bit-for-bit equality at the cost of the partition.
    ///
    /// [`QueryOutcome::budget_fallback`]: netbw_core::QueryOutcome
    pub(crate) fn collapse_all(&mut self) -> usize {
        let survivor = self
            .shards
            .iter()
            .position(Option::is_some)
            .expect("collapse needs a live shard");
        let losers: Vec<usize> = (survivor + 1..self.shards.len())
            .filter(|&id| self.shards[id].is_some())
            .collect();
        for id in losers {
            self.merge(survivor, id);
        }
        // Re-derive the dirty list from scratch: every loser is gone and
        // the survivor needs a full rebuild regardless of its prior state.
        self.dirty.clear();
        self.dirty.push(survivor);
        let sh = self.shards[survivor].as_mut().expect("survivor is live");
        sh.dirty = true;
        sh.cache.invalidate_rebuild();
        self.collapsed_into = Some(survivor);
        survivor
    }

    /// Marks a shard's population as changed, queueing it for the next
    /// settle.
    pub(crate) fn mark_dirty(&mut self, id: usize) {
        let sh = self.shards[id].as_mut().expect("dirty shard is live");
        if !sh.dirty {
            sh.dirty = true;
            self.dirty.push(id);
        }
    }

    /// Mutable access to one live shard.
    pub(crate) fn shard_mut(&mut self, id: usize) -> &mut Shard {
        self.shards[id].as_mut().expect("shard is live")
    }

    /// Mutable access to each of the (sorted, distinct) shard indices at
    /// once — the borrow split that lets one settle barrier hand disjoint
    /// shards to parallel jobs.
    pub(crate) fn disjoint_mut(&mut self, ids: &[usize]) -> Vec<&mut Shard> {
        let mut out = Vec::with_capacity(ids.len());
        let mut rest: &mut [Option<Shard>] = &mut self.shards;
        let mut offset = 0;
        for &id in ids {
            debug_assert!(id >= offset, "ids must be sorted and distinct");
            let (_, tail) = rest.split_at_mut(id - offset);
            let (head, tail) = tail.split_at_mut(1);
            out.push(head[0].as_mut().expect("dirty shard is live"));
            rest = tail;
            offset = id + 1;
        }
        out
    }

    /// Records a settle that found every shard cache valid.
    pub(crate) fn note_reused_settle(&mut self) {
        self.reused_settles += 1;
    }

    /// Recomputes shard `id`'s next event (earliest live completion or
    /// gate) and publishes it to the cross-shard heap under a fresh
    /// version, invalidating every earlier entry for the shard. Call
    /// after anything that may move the shard's timeline.
    pub(crate) fn refresh_next<T>(&mut self, id: usize, slots: &Slab<T>) {
        let sh = self.shards[id].as_mut().expect("shard is live");
        sh.version += 1;
        let next = match (sh.events.peek_finish(slots), sh.events.peek_gate()) {
            (None, None) => return,
            (Some(c), None) => c,
            (None, Some(g)) => g,
            (Some(c), Some(g)) => c.min(g),
        };
        self.next_events.push(ShardNext {
            time: next,
            shard: id,
            version: sh.version,
        });
    }

    /// The earliest next-event time across all shards, discarding stale
    /// entries from the top of the cross-shard heap.
    pub(crate) fn peek_next(&mut self) -> Option<f64> {
        while let Some(top) = self.next_events.peek() {
            if self.entry_is_live(top) {
                return Some(top.time);
            }
            self.next_events.pop();
        }
        None
    }

    /// Pops every live entry with `time <= bound` and returns the (sorted,
    /// distinct) shards they name — the shards that may have a gate or
    /// completion due at the current event. The caller must
    /// [`Self::refresh_next`] each one after processing it.
    pub(crate) fn take_candidates(&mut self, bound: f64) -> Vec<usize> {
        let mut out = std::mem::take(&mut self.candidates);
        out.clear();
        while let Some(top) = self.next_events.peek() {
            if top.time > bound {
                break;
            }
            let entry = self.next_events.pop().expect("peeked entry pops");
            if self.entry_is_live(&entry) {
                out.push(entry.shard);
            }
        }
        // At most one live entry exists per shard (each refresh bumps the
        // version), so the list is already duplicate-free; sort it so
        // simultaneous events process in deterministic shard order.
        out.sort_unstable();
        out
    }

    /// Returns a candidate list taken with [`Self::take_candidates`] for
    /// buffer reuse.
    pub(crate) fn recycle_candidates(&mut self, buf: Vec<usize>) {
        self.candidates = buf;
    }

    fn entry_is_live(&self, entry: &ShardNext) -> bool {
        self.shards[entry.shard]
            .as_ref()
            .is_some_and(|sh| sh.version == entry.version)
    }

    /// Aggregated cache counters: live shards plus everything retired,
    /// plus the served-from-cache settles the set itself noted.
    pub(crate) fn cache_stats(&self) -> CacheStats {
        let mut stats = self.retired_cache;
        for sh in self.shards.iter().flatten() {
            stats.absorb(sh.cache.stats());
        }
        stats.reuses += self.reused_settles;
        stats
    }

    /// Aggregated timeline counters: live shards plus reset-retired ones.
    pub(crate) fn timeline_stats(&self) -> TimelineStats {
        let mut stats = self.retired_timeline;
        for sh in self.shards.iter().flatten() {
            stats.absorb(sh.events.stats);
        }
        stats
    }

    /// An independent deep copy of the whole shard table: tracker,
    /// per-shard caches (scratch included) and heaps, the dirty list and
    /// the cross-shard event heap. The fork and the original settle
    /// bit-for-bit identically from here on without sharing any state.
    pub(crate) fn fork(&self) -> ShardSet {
        ShardSet {
            tracker: self.tracker.clone(),
            shard_of_root: self.shard_of_root.clone(),
            shards: self
                .shards
                .iter()
                .map(|slot| slot.as_ref().map(Shard::fork))
                .collect(),
            live: self.live,
            dirty: self.dirty.clone(),
            next_events: self.next_events.clone(),
            retired_cache: self.retired_cache,
            retired_timeline: self.retired_timeline,
            collapsed_into: self.collapsed_into,
            reused_settles: self.reused_settles,
            candidates: Vec::new(),
        }
    }

    /// Quiescent-barrier reset, called by the engine when the flow
    /// population drains to empty: every shard is provably memberless, so
    /// the partition (and, crucially, a [`Self::collapse_all`] pin left by
    /// a Myrinet budget fallback) can be forgotten wholesale. Without this
    /// a single budget refusal would degrade a long-lived network to one
    /// global shard *forever*; with it the next churn phase re-partitions
    /// from scratch. Counters fold into the retired accumulators exactly
    /// like [`Self::reset`], so stats stay cumulative across the barrier.
    pub(crate) fn quiesce(&mut self) {
        self.reset();
    }

    /// Drops every shard and the component structure while folding their
    /// counters into the retired accumulators — stats stay cumulative
    /// across resets, exactly like the unsharded engine's.
    pub(crate) fn reset(&mut self) {
        for sh in self.shards.iter().flatten() {
            self.retired_cache.absorb(sh.cache.stats());
            self.retired_timeline.absorb(sh.events.stats);
        }
        self.tracker.clear();
        self.shard_of_root.clear();
        self.shards.clear();
        self.live = 0;
        self.dirty.clear();
        self.next_events.clear();
        self.collapsed_into = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(src: u32, dst: u32) -> Communication {
        Communication::new(src, dst, 100)
    }

    #[test]
    fn assign_creates_joins_and_merges() {
        let mut set = ShardSet::default();
        let a = set.assign(&comm(0, 1));
        let b = set.assign(&comm(2, 3));
        assert_ne!(a, b);
        assert_eq!(set.live_count(), 2);
        assert_eq!(set.assign(&comm(0, 4)), a, "shared endpoint joins");
        let bridged = set.assign(&comm(1, 2));
        assert!(bridged == a || bridged == b);
        assert_eq!(set.live_count(), 1, "bridge retires the loser");
        // the whole union now routes to the surviving shard
        assert_eq!(set.assign(&comm(3, 4)), bridged);
    }

    #[test]
    fn merge_moves_members_and_invalidates_the_winner() {
        let mut set = ShardSet::default();
        let mut slab: Slab<()> = Slab::new();
        let (k0, k1) = (slab.insert(()), slab.insert(()));
        let a = set.assign(&comm(0, 1));
        let b = set.assign(&comm(2, 3));
        set.shard_mut(a).members.push(k0);
        set.shard_mut(b).members.push(k1);
        set.shard_mut(b).events.push_gate(5.0, k1);
        set.refresh_next(b, &slab);
        assert_eq!(set.peek_next(), Some(5.0));
        let survivor = set.assign(&comm(1, 2));
        assert_eq!(set.shard_mut(survivor).members.len(), 2);
        assert!(set.shard_mut(survivor).dirty, "merge queues a rebuild");
        assert_eq!(set.dirty, vec![survivor]);
        // the merged gate survives in the winner's heaps...
        assert_eq!(set.shard_mut(survivor).events.peek_gate(), Some(5.0));
        // ...but the retired shard's cross-shard entry went stale, and the
        // winner republishes under a fresh version
        set.refresh_next(survivor, &slab);
        assert_eq!(set.peek_next(), Some(5.0));
        assert_eq!(set.take_candidates(5.0), vec![survivor]);
    }

    #[test]
    fn stale_versions_are_discarded_on_peek_and_pop() {
        let mut set = ShardSet::default();
        let mut slab: Slab<()> = Slab::new();
        let (k0, k1) = (slab.insert(()), slab.insert(()));
        let a = set.assign(&comm(0, 1));
        set.shard_mut(a).events.push_gate(3.0, k0);
        set.refresh_next(a, &slab);
        // a second refresh supersedes the first entry
        set.shard_mut(a).events.push_gate(1.0, k1);
        set.refresh_next(a, &slab);
        assert_eq!(set.peek_next(), Some(1.0));
        let c = set.take_candidates(1.0);
        assert_eq!(c, vec![a]);
        set.recycle_candidates(c);
        // both entries are gone (one live, one stale) until republished
        assert_eq!(set.peek_next(), None);
    }

    #[test]
    fn dirty_marking_is_idempotent() {
        let mut set = ShardSet::default();
        let a = set.assign(&comm(0, 1));
        set.mark_dirty(a);
        set.mark_dirty(a);
        assert_eq!(set.dirty, vec![a]);
    }

    #[test]
    fn disjoint_mut_hands_out_every_requested_shard() {
        let mut set = ShardSet::default();
        let ids = [
            set.assign(&comm(0, 1)),
            set.assign(&comm(2, 3)),
            set.assign(&comm(4, 5)),
        ];
        let picked = [ids[0], ids[2]];
        let shards = set.disjoint_mut(&picked);
        assert_eq!(shards.len(), 2);
        for sh in shards {
            sh.version += 1;
        }
    }

    #[test]
    fn collapse_merges_everything_and_pins_future_assignments() {
        let mut set = ShardSet::default();
        let a = set.assign(&comm(0, 1));
        let _b = set.assign(&comm(2, 3));
        let _c = set.assign(&comm(4, 5));
        assert_eq!(set.live_count(), 3);
        let survivor = set.collapse_all();
        assert_eq!(survivor, a, "lowest live shard survives");
        assert!(set.is_collapsed());
        assert_eq!(set.live_count(), 1);
        assert_eq!(set.dirty, vec![survivor], "exactly the survivor is queued");
        // A brand-new component would have created a shard before the
        // collapse; now it routes straight to the survivor.
        assert_eq!(set.assign(&comm(6, 7)), survivor);
        assert_eq!(set.live_count(), 1);
        // ...and a reset lifts the collapse along with the partition.
        set.reset();
        assert!(!set.is_collapsed());
        assert_ne!(set.assign(&comm(0, 1)), set.assign(&comm(2, 3)));
    }

    #[test]
    fn reset_folds_counters_and_forgets_structure() {
        let mut set = ShardSet::default();
        let mut slab: Slab<()> = Slab::new();
        let k0 = slab.insert(());
        let a = set.assign(&comm(0, 1));
        set.shard_mut(a).events.push_gate(1.0, k0);
        set.note_reused_settle();
        let before = set.timeline_stats();
        assert_eq!(before.gate_pushes, 1);
        set.reset();
        assert_eq!(set.live_count(), 0);
        assert_eq!(set.peek_next(), None);
        assert_eq!(set.timeline_stats().gate_pushes, 1, "stats survive reset");
        assert_eq!(set.cache_stats().reuses, 1);
        // and the next assignment starts a fresh shard table
        let b = set.assign(&comm(0, 1));
        assert_eq!(set.live_count(), 1);
        let _ = b;
    }
}
