//! Component shards: per-conflict-component timelines and penalty caches
//! for [`crate::FluidNetwork::with_sharded`].
//!
//! The penalty models are component-local (see
//! [`netbw_core::components`]): flows in disjoint connected components of
//! the shared-endpoint graph never influence each other's penalty. The
//! sharded engine exploits that by partitioning the slab-backed flow
//! population into such components ("shards") and giving each its own
//! [`crate::event_heap`] timeline and [`PenaltyCache`] (with its own model
//! scratch). A settle then refreshes only the *dirty* shards — and those
//! refreshes are independent, so they can run in parallel through a
//! [`crate::dispatch::SettleDispatch`].
//!
//! The partition **refines in both directions**, driven by the
//! [`ComponentTracker`]. Arrivals coarsen it: a new flow joins an
//! existing shard, creates a fresh one, or *bridges* two — in which case
//! the loser shard is retired: its member list and event heaps are
//! spliced into the winner, its cache counters fold into the set-wide
//! accumulator, and the winner's cache is invalidated for a full rebuild.
//! Departures refine it back apart: the tracker classifies each one as
//! [`ComponentRemoval::Shrunk`], [`ComponentRemoval::Drained`] (the
//! shard's last flow left, so its slot retires), or
//! [`ComponentRemoval::Split`] — in which case `ShardSet::split` carves
//! the splinter component out of its shard: member keys are partitioned
//! by a tracker lookup, the splinter gets a [`PenaltyCache::fork`] of the
//! kept cache with each side noting the other's members as departures
//! (penalties are component-local, so both sides' next delta refresh
//! reproduces identical values and the engine's resync skips — the split
//! is bitwise invisible), and the splinter's event heaps are rebuilt from
//! its members under freshly bumped slot epochs so the kept shard's old
//! entries go stale lazily. A union of true components is still a safe
//! partition cell, so splitting is purely a performance refinement —
//! without it any long-lived population degrades toward one mega-shard.
//!
//! One model behaviour is *not* component-local: a Myrinet state-set
//! budget refusal degrades the whole query population to the max-conflict
//! approximation, so an over-budget component in the unsharded engine
//! changes the penalties of every other component in the same query. The
//! first time any shard's refresh reports such a fallback, the settle
//! barrier `ShardSet::collapse_all`s the partition into a single global
//! shard — *pinned* to the offending component's root — and redoes the
//! settle globally, keeping the modes bit-for-bit equal in every regime.
//! The collapse is no longer permanent until drain: the tracker keeps
//! running underneath it, and the moment the pinned component drains or
//! splits, `ShardSet::explode` rebuilds the true partition from the
//! live slab and per-component settling resumes. (If some component is
//! *still* over budget, its fresh cache's first refresh reports a new
//! fallback and the barrier re-collapses at the same instant — exactly
//! matching the unsharded engine's global degradation, so equality holds
//! through the thrash.)
//!
//! Cross-shard event ordering goes through one lazy min-heap of
//! `(next event time, shard, version)` entries: every change to a shard's
//! timeline bumps its version and pushes a fresh entry, and stale entries
//! are discarded on pop — the same lazy-invalidation idea the per-shard
//! completion heaps already use, one level up. Retired shard slots *are*
//! reused (drains and splits would otherwise leak slots forever on a
//! churning population), which is safe because a slot's version continues
//! from where the previous occupant left off: every stale entry carries a
//! version at most the retired shard's last, and the new occupant starts
//! strictly above it.

use crate::cache::{CacheStats, PenaltyCache};
use crate::event_heap::{EventHeaps, TimelineStats};
use crate::slab::{FlowKey, Slab};
use netbw_core::{ComponentChange, ComponentRemoval, ComponentRoot, ComponentTracker};
use netbw_graph::Communication;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The slot fields the shard table reads when re-partitioning live flows.
/// Implemented by the engine's (private) slot type so [`ShardSet`] can
/// move members between shards without knowing the slot layout.
pub(crate) trait SlotView {
    /// The flow's endpoints.
    fn comm(&self) -> &Communication;
    /// Whether the flow is past its gate and contending for bandwidth.
    fn contending(&self) -> bool;
    /// The cached completion time (meaningful while contending).
    fn finish(&self) -> f64;
    /// The gate time (meaningful while not contending).
    fn gate(&self) -> f64;
}

/// Partition-shape counters for the sharded engine: how many shards are
/// live right now and how often the partition has refined (split),
/// coarsened (merged), drained, budget-collapsed or un-collapsed since
/// the engine was built. Cumulative across resets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Live shards in the current partition.
    pub live_shards: usize,
    /// Shards carved apart because a departure split their component.
    pub splits: u64,
    /// Shard pairs merged because an arrival bridged their components.
    pub merges: u64,
    /// Shards retired because their last member departed.
    pub drains: u64,
    /// Partition collapses forced by a Myrinet budget fallback.
    pub budget_collapses: u64,
    /// Collapses undone early because the pinned component departed.
    pub uncollapses: u64,
    /// Whether the partition is currently collapsed into one shard.
    pub collapsed: bool,
}

/// One conflict component's private engine state.
pub(crate) struct Shard {
    /// The tracker root of the component this shard holds. Kept in sync
    /// through root re-seats and splits; meaningless while the partition
    /// is collapsed.
    pub(crate) root: ComponentRoot,
    /// The shard's penalty cache (and model scratch).
    pub(crate) cache: PenaltyCache,
    /// The shard's completion/gate heaps.
    pub(crate) events: EventHeaps,
    /// Every flow ever assigned to this shard and not yet known-dead;
    /// stale keys (completed flows) are compacted lazily before a rebuild
    /// gather or a split. Only those two read this — warm settles stage
    /// the population from the cache's pending change sets.
    pub(crate) members: Vec<FlowKey>,
    /// Staging buffer for the next refresh's population (recycled through
    /// [`PenaltyCache::refresh`] like the unsharded engine's buffer).
    pub(crate) staged: Vec<FlowKey>,
    /// Communications aligned with `staged` (same recycling).
    pub(crate) comms_buf: Vec<Communication>,
    /// Bumped on every timeline change; the cross-shard event heap stamps
    /// its entries with this, so superseded entries go stale. Survives the
    /// shard's retirement: a reused slot continues from the last version.
    pub(crate) version: u64,
    /// Whether the shard sits in the dirty list awaiting a settle.
    pub(crate) dirty: bool,
}

impl Shard {
    fn new(root: ComponentRoot) -> Self {
        Shard {
            root,
            cache: PenaltyCache::new(),
            events: EventHeaps::default(),
            members: Vec::new(),
            staged: Vec::new(),
            comms_buf: Vec::new(),
            version: 0,
            dirty: false,
        }
    }

    /// An independent deep copy (cache via [`PenaltyCache::fork`], heaps
    /// entry-for-entry) that settles bit-for-bit like the original.
    fn fork(&self) -> Shard {
        Shard {
            root: self.root,
            cache: self.cache.fork(),
            events: self.events.clone(),
            members: self.members.clone(),
            staged: self.staged.clone(),
            comms_buf: self.comms_buf.clone(),
            version: self.version,
            dirty: self.dirty,
        }
    }

    /// [`Self::fork`] into an existing shard, reusing its allocations
    /// (cache via [`PenaltyCache::fork_into`], heaps via
    /// [`EventHeaps::fork_into`]). Bitwise identical outcome to `fork`.
    fn fork_into(&self, target: &mut Shard) {
        target.root = self.root;
        self.cache.fork_into(&mut target.cache);
        self.events.fork_into(&mut target.events);
        target.members.clone_from(&self.members);
        target.staged.clone_from(&self.staged);
        target.comms_buf.clone_from(&self.comms_buf);
        target.version = self.version;
        target.dirty = self.dirty;
    }
}

/// A cross-shard event-heap entry: one shard's next completion-or-gate
/// time as of `version`. Min-ordered by time with a shard-id tiebreak so
/// simultaneous events pop deterministically.
#[derive(Clone, Copy, Debug)]
struct ShardNext {
    time: f64,
    shard: usize,
    version: u64,
}

impl PartialEq for ShardNext {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ShardNext {}
impl PartialOrd for ShardNext {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ShardNext {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.shard.cmp(&self.shard))
            .then_with(|| other.version.cmp(&self.version))
    }
}

/// The engine's shard table: component tracker, live shards, the dirty
/// list and the cross-shard event heap, plus the counters of retired
/// shards (so aggregate stats survive merges and resets).
#[derive(Default)]
pub(crate) struct ShardSet {
    tracker: ComponentTracker,
    /// Shard index per tracker root index. Entries go stale when a root
    /// is absorbed, re-seated or drained; lookups that may hit a stale
    /// entry (only [`Self::explode`]'s) validate against the shard's own
    /// `root` field before trusting it.
    shard_of_root: Vec<usize>,
    /// Live shards; a retired slot goes to `None` and onto `free_slots`
    /// for reuse.
    shards: Vec<Option<Shard>>,
    /// Count of `Some` entries in `shards`.
    live: usize,
    /// Retired shard slots, each with the version its last occupant
    /// reached — a new occupant's version continues strictly above it so
    /// stale [`ShardNext`] entries can never alias across occupancies.
    free_slots: Vec<(usize, u64)>,
    /// Indices of shards with pending population changes, in marking
    /// order (settles sort it).
    pub(crate) dirty: Vec<usize>,
    next_events: BinaryHeap<ShardNext>,
    /// Cache counters of retired shards (merged away, drained, or cleared
    /// by a reset).
    retired_cache: CacheStats,
    /// Timeline counters of drained/exploded/reset shards (merges fold
    /// the loser's counters into the winner's heaps directly).
    retired_timeline: TimelineStats,
    /// Set while the partition is collapsed into a single global shard
    /// (see [`Self::collapse_all`]); every assignment routes here until
    /// the pinned component departs or the population drains.
    collapsed_into: Option<usize>,
    /// The root of the component whose budget fallback forced the
    /// collapse. The tracker keeps running while collapsed so this pin
    /// follows bridges and root re-seats; the moment the pinned component
    /// drains or splits, [`Self::explode`] rebuilds the partition.
    collapsed_pin: Option<ComponentRoot>,
    /// Ablation switch: when set, departures are ignored entirely (the
    /// tracker keeps every edge forever) and the partition only coarsens
    /// — the pre-refinement behaviour, kept as the baseline the split
    /// benchmarks compare against.
    pub(crate) merge_only: bool,
    /// Settles served entirely from valid shard caches — the sharded
    /// analogue of [`CacheStats::reuses`] on the unsharded engine.
    reused_settles: u64,
    /// Scratch buffer for the candidate shards of one event.
    candidates: Vec<usize>,
    splits: u64,
    merges: u64,
    drains: u64,
    collapses: u64,
    uncollapses: u64,
}

impl ShardSet {
    /// Number of live shards.
    pub(crate) fn live_count(&self) -> usize {
        self.live
    }

    /// Partition-shape counters (live count plus cumulative transitions).
    pub(crate) fn shard_stats(&self) -> ShardStats {
        ShardStats {
            live_shards: self.live,
            splits: self.splits,
            merges: self.merges,
            drains: self.drains,
            budget_collapses: self.collapses,
            uncollapses: self.uncollapses,
            collapsed: self.collapsed_into.is_some(),
        }
    }

    /// Routes a flow's endpoints through the component tracker, creating
    /// or merging shards as needed, and returns the index of the shard
    /// the flow belongs to.
    pub(crate) fn assign(&mut self, comm: &Communication) -> usize {
        if let Some(id) = self.collapsed_into {
            // The partition is pinned flat, but the tracker keeps running
            // so departures can still un-collapse it: if the new flow
            // bridges the pinned component into a union, the pin follows
            // the union's root.
            if !self.merge_only {
                if let ComponentChange::Bridged { root, absorbed } =
                    self.tracker.insert(comm.src, comm.dst)
                {
                    if self.collapsed_pin == Some(absorbed) {
                        self.collapsed_pin = Some(root);
                    }
                }
            }
            return id;
        }
        match self.tracker.insert(comm.src, comm.dst) {
            ComponentChange::Created { root } => self.alloc(root),
            ComponentChange::Joined { root } => self.shard_of_root[root as usize],
            ComponentChange::Bridged { root, absorbed } => {
                let winner = self.shard_of_root[root as usize];
                let loser = self.shard_of_root[absorbed as usize];
                self.merge(winner, loser);
                winner
            }
        }
    }

    /// Handles a completed flow's departure: removes its edge from the
    /// tracker and refines the partition to match — re-seating a root,
    /// retiring a drained shard, splitting a disconnected one, or
    /// un-collapsing a budget-collapsed partition whose pinned component
    /// just departed. Call after the flow's slot has left the slab.
    pub(crate) fn depart<S: SlotView>(&mut self, comm: &Communication, slots: &mut Slab<S>) {
        if self.merge_only {
            return;
        }
        let removal = self.tracker.remove(comm.src, comm.dst);
        if self.collapsed_into.is_some() {
            // Only the global shard exists: no per-shard bookkeeping, but
            // keep the pin pointing at the offending component — and the
            // moment that component drains or breaks apart, the reason
            // for the collapse is gone, so rebuild the true partition.
            match removal {
                ComponentRemoval::Shrunk { old_root, root } => {
                    if self.collapsed_pin == Some(old_root) {
                        self.collapsed_pin = Some(root);
                    }
                }
                ComponentRemoval::Drained { root } | ComponentRemoval::Split { root, .. } => {
                    if self.collapsed_pin == Some(root) {
                        self.explode(slots);
                    }
                }
            }
            return;
        }
        match removal {
            ComponentRemoval::Shrunk { old_root, root } => {
                if old_root != root {
                    let id = self.shard_of_root[old_root as usize];
                    self.shards[id].as_mut().expect("shrunk shard is live").root = root;
                    self.map_root(root, id);
                }
            }
            ComponentRemoval::Drained { root } => {
                // Gated flows hold tracker edges until their own
                // completion, so a drained component has no live members
                // of any kind: the shard retires wholesale.
                let id = self.shard_of_root[root as usize];
                self.retire(id);
                self.drains += 1;
            }
            ComponentRemoval::Split { root, split_root } => {
                let id = self.shard_of_root[root as usize];
                self.split(id, split_root, slots);
            }
        }
    }

    /// Carves the `split_root` component out of shard `id` into a fresh
    /// shard. Member keys are partitioned by a tracker lookup (compacting
    /// stale keys on the way); the splinter's cache is a fork of the kept
    /// cache with each side noting the other's contending members as
    /// departures, so both sides' next delta refresh reproduces exactly
    /// the penalties the joint query would have (penalties are
    /// component-local) and the engine's resync skips every slot — the
    /// split never perturbs the trajectory. Moved members get their slot
    /// epoch bumped and their due event re-pushed into the splinter's
    /// fresh heaps, lazily invalidating the kept shard's old entries.
    fn split<S: SlotView>(&mut self, id: usize, split_root: ComponentRoot, slots: &mut Slab<S>) {
        self.splits += 1;
        let mut moved: Vec<FlowKey> = Vec::new();
        {
            let tracker = &mut self.tracker;
            let kept = self.shards[id].as_mut().expect("split shard is live");
            kept.members.retain(|&k| match slots.get(k) {
                None => false,
                Some(slot) => {
                    if tracker.find(slot.comm().src) == Some(split_root) {
                        moved.push(k);
                        false
                    } else {
                        true
                    }
                }
            });
        }
        let kept = self.shards[id].as_mut().expect("split shard is live");
        let mut sp_cache = kept.cache.fork();
        let mut sp_events = EventHeaps::default();
        for &k in &kept.members {
            if slots.get(k).expect("retained member is live").contending() {
                sp_cache.note_departure(k);
            }
        }
        for &k in &moved {
            let slot = slots.get(k).expect("moved member is live");
            let contending = slot.contending();
            let (finish, gate) = (slot.finish(), slot.gate());
            if contending {
                kept.cache.note_departure(k);
            }
            let epoch = slots.bump_epoch(k).expect("moved member is live");
            if contending {
                sp_events.push_completion(finish, k, epoch);
            } else {
                sp_events.push_gate(gate, k, epoch);
            }
        }
        let sid = self.alloc(split_root);
        let sp = self.shards[sid].as_mut().expect("splinter shard is live");
        sp.cache = sp_cache;
        sp.events = sp_events;
        sp.members = moved;
        self.mark_dirty(id);
        self.mark_dirty(sid);
        self.refresh_next(id, slots);
        self.refresh_next(sid, slots);
    }

    /// Undoes a budget collapse early: retires the global shard and
    /// rebuilds the true partition from the live slab, one shard per
    /// tracker component, with every flow's due event pushed at its
    /// current epoch. Each reborn cache is fresh, so every shard's first
    /// settle is a full component-local rebuild — identical to the global
    /// non-refused query restricted to that component. If some component
    /// is still over budget, its first refresh reports a new fallback and
    /// the barrier re-collapses at the same instant.
    fn explode<S: SlotView>(&mut self, slots: &Slab<S>) {
        self.uncollapses += 1;
        let gid = self
            .collapsed_into
            .take()
            .expect("explode undoes a collapse");
        self.collapsed_pin = None;
        self.retire(gid);
        debug_assert!(
            self.dirty.is_empty(),
            "retiring the global shard leaves nothing dirty"
        );
        let mut created: Vec<usize> = Vec::new();
        for k in slots.keys() {
            let slot = slots.get(k).expect("iterated key is live");
            let root = self
                .tracker
                .find(slot.comm().src)
                .expect("live flow endpoints are tracked");
            let id = self.root_shard_or_alloc(root, &mut created);
            let epoch = slots.epoch(k).expect("iterated key is live");
            let sh = self.shards[id].as_mut().expect("reborn shard is live");
            sh.members.push(k);
            if slot.contending() {
                sh.events.push_completion(slot.finish(), k, epoch);
            } else {
                sh.events.push_gate(slot.gate(), k, epoch);
            }
        }
        for id in created {
            self.mark_dirty(id);
            self.refresh_next(id, slots);
        }
    }

    /// A validated root→shard lookup for [`Self::explode`]: mappings left
    /// over from before the collapse (or from roots re-seated while
    /// collapsed) are garbage, so only trust an entry whose shard is live
    /// and agrees it holds `root`; otherwise allocate.
    fn root_shard_or_alloc(&mut self, root: ComponentRoot, created: &mut Vec<usize>) -> usize {
        if let Some(&id) = self.shard_of_root.get(root as usize) {
            if id != usize::MAX
                && self
                    .shards
                    .get(id)
                    .and_then(Option::as_ref)
                    .is_some_and(|sh| sh.root == root)
            {
                return id;
            }
        }
        let id = self.alloc(root);
        created.push(id);
        id
    }

    /// Creates a live shard for `root`, reusing a retired slot when one
    /// is free (continuing its version) and mapping the root to it.
    fn alloc(&mut self, root: ComponentRoot) -> usize {
        let id = match self.free_slots.pop() {
            Some((slot, version)) => {
                debug_assert!(self.shards[slot].is_none(), "free slot is vacant");
                let mut sh = Shard::new(root);
                sh.version = version + 1;
                self.shards[slot] = Some(sh);
                slot
            }
            None => {
                self.shards.push(Some(Shard::new(root)));
                self.shards.len() - 1
            }
        };
        self.live += 1;
        self.map_root(root, id);
        id
    }

    /// Points `root` at shard `id`, growing the map as needed.
    fn map_root(&mut self, root: ComponentRoot, id: usize) {
        let root = root as usize;
        if self.shard_of_root.len() <= root {
            self.shard_of_root.resize(root + 1, usize::MAX);
        }
        self.shard_of_root[root] = id;
    }

    /// Retires shard `id`: folds its counters into the retired
    /// accumulators, drops it from the dirty list, and frees its slot for
    /// reuse (recording the version its successor must continue from).
    fn retire(&mut self, id: usize) {
        let sh = self.shards[id].take().expect("retired shard is live");
        self.live -= 1;
        self.retired_cache.absorb(sh.cache.stats());
        self.retired_timeline.absorb(sh.events.stats);
        if sh.dirty {
            self.dirty.retain(|&d| d != id);
        }
        self.free_slots.push((id, sh.version));
    }

    /// Splices shard `loser` into shard `winner`: members and event heaps
    /// move over verbatim (slab keys and epochs are global, so every
    /// entry stays valid), the loser's cache counters are folded into the
    /// retired accumulator, and the winner is invalidated for a full
    /// rebuild — no positional delta can describe two populations
    /// becoming one.
    fn merge(&mut self, winner: usize, loser: usize) {
        debug_assert_ne!(winner, loser);
        self.merges += 1;
        let loser_shard = self.shards[loser].take().expect("absorbed shard is live");
        self.live -= 1;
        self.retired_cache.absorb(loser_shard.cache.stats());
        let w = self.shards[winner].as_mut().expect("winning shard is live");
        w.members.extend(loser_shard.members);
        w.events.append(loser_shard.events);
        w.cache.invalidate_rebuild();
        // The loser's global entries go stale by its slot retiring; the
        // winner's by the version bump at its next refresh.
        if !w.dirty {
            w.dirty = true;
            self.dirty.push(winner);
        }
        if loser_shard.dirty {
            self.dirty.retain(|&d| d != loser);
        }
        self.free_slots.push((loser, loser_shard.version));
    }

    /// Whether the partition has been collapsed into one global shard.
    #[cfg(test)]
    pub(crate) fn is_collapsed(&self) -> bool {
        self.collapsed_into.is_some()
    }

    /// Merges every live shard into the lowest-indexed one and routes all
    /// future assignments there, leaving exactly the merged shard dirty
    /// (queued for a full rebuild). `pin` names the root of the component
    /// whose refusal forced the collapse; its departure (drain or split)
    /// triggers [`Self::explode`], un-collapsing early. `None` keeps the
    /// collapse pinned until the population drains.
    ///
    /// This is the bitwise-equality escape hatch for models whose answers
    /// have cross-component reach: a Myrinet budget refusal degrades the
    /// *whole* query population to the max-conflict approximation, so the
    /// moment any shard's refresh reports [`QueryOutcome::budget_fallback`]
    /// the per-component factoring stops being safe. A single global shard
    /// runs the exact same queries as the unsharded engine, restoring
    /// bit-for-bit equality at the cost of the partition.
    ///
    /// [`QueryOutcome::budget_fallback`]: netbw_core::QueryOutcome
    pub(crate) fn collapse_all(&mut self, pin: Option<ComponentRoot>) -> usize {
        self.collapses += 1;
        let survivor = self
            .shards
            .iter()
            .position(Option::is_some)
            .expect("collapse needs a live shard");
        let losers: Vec<usize> = (survivor + 1..self.shards.len())
            .filter(|&id| self.shards[id].is_some())
            .collect();
        for id in losers {
            self.merge(survivor, id);
        }
        // Re-derive the dirty list from scratch: every loser is gone and
        // the survivor needs a full rebuild regardless of its prior state.
        self.dirty.clear();
        self.dirty.push(survivor);
        let sh = self.shards[survivor].as_mut().expect("survivor is live");
        sh.dirty = true;
        sh.cache.invalidate_rebuild();
        self.collapsed_into = Some(survivor);
        self.collapsed_pin = pin;
        survivor
    }

    /// Marks a shard's population as changed, queueing it for the next
    /// settle.
    pub(crate) fn mark_dirty(&mut self, id: usize) {
        let sh = self.shards[id].as_mut().expect("dirty shard is live");
        if !sh.dirty {
            sh.dirty = true;
            self.dirty.push(id);
        }
    }

    /// Mutable access to one live shard.
    pub(crate) fn shard_mut(&mut self, id: usize) -> &mut Shard {
        self.shards[id].as_mut().expect("shard is live")
    }

    /// Mutable access to each of the (sorted, distinct) shard indices at
    /// once — the borrow split that lets one settle barrier hand disjoint
    /// shards to parallel jobs.
    pub(crate) fn disjoint_mut(&mut self, ids: &[usize]) -> Vec<&mut Shard> {
        let mut out = Vec::with_capacity(ids.len());
        let mut rest: &mut [Option<Shard>] = &mut self.shards;
        let mut offset = 0;
        for &id in ids {
            debug_assert!(id >= offset, "ids must be sorted and distinct");
            let (_, tail) = rest.split_at_mut(id - offset);
            let (head, tail) = tail.split_at_mut(1);
            out.push(head[0].as_mut().expect("dirty shard is live"));
            rest = tail;
            offset = id + 1;
        }
        out
    }

    /// Records a settle that found every shard cache valid.
    pub(crate) fn note_reused_settle(&mut self) {
        self.reused_settles += 1;
    }

    /// Recomputes shard `id`'s next event (earliest live completion or
    /// gate) and publishes it to the cross-shard heap under a fresh
    /// version, invalidating every earlier entry for the shard. Call
    /// after anything that may move the shard's timeline.
    pub(crate) fn refresh_next<T>(&mut self, id: usize, slots: &Slab<T>) {
        let sh = self.shards[id].as_mut().expect("shard is live");
        sh.version += 1;
        let next = match (sh.events.peek_finish(slots), sh.events.peek_gate(slots)) {
            (None, None) => return,
            (Some(c), None) => c,
            (None, Some(g)) => g,
            (Some(c), Some(g)) => c.min(g),
        };
        self.next_events.push(ShardNext {
            time: next,
            shard: id,
            version: sh.version,
        });
    }

    /// The earliest next-event time across all shards, discarding stale
    /// entries from the top of the cross-shard heap.
    pub(crate) fn peek_next(&mut self) -> Option<f64> {
        while let Some(top) = self.next_events.peek() {
            if self.entry_is_live(top) {
                return Some(top.time);
            }
            self.next_events.pop();
        }
        None
    }

    /// Pops every live entry with `time <= bound` and returns the (sorted,
    /// distinct) shards they name — the shards that may have a gate or
    /// completion due at the current event. The caller must
    /// [`Self::refresh_next`] each one after processing it.
    pub(crate) fn take_candidates(&mut self, bound: f64) -> Vec<usize> {
        let mut out = std::mem::take(&mut self.candidates);
        out.clear();
        while let Some(top) = self.next_events.peek() {
            if top.time > bound {
                break;
            }
            let entry = self.next_events.pop().expect("peeked entry pops");
            if self.entry_is_live(&entry) {
                out.push(entry.shard);
            }
        }
        // At most one live entry exists per shard (each refresh bumps the
        // version), so the list is already duplicate-free; sort it so
        // simultaneous events process in deterministic shard order.
        out.sort_unstable();
        out
    }

    /// Returns a candidate list taken with [`Self::take_candidates`] for
    /// buffer reuse.
    pub(crate) fn recycle_candidates(&mut self, buf: Vec<usize>) {
        self.candidates = buf;
    }

    fn entry_is_live(&self, entry: &ShardNext) -> bool {
        self.shards[entry.shard]
            .as_ref()
            .is_some_and(|sh| sh.version == entry.version)
    }

    /// Aggregated cache counters: live shards plus everything retired,
    /// plus the served-from-cache settles the set itself noted.
    pub(crate) fn cache_stats(&self) -> CacheStats {
        let mut stats = self.retired_cache;
        for sh in self.shards.iter().flatten() {
            stats.absorb(sh.cache.stats());
        }
        stats.reuses += self.reused_settles;
        stats
    }

    /// Aggregated timeline counters: live shards plus retired ones.
    pub(crate) fn timeline_stats(&self) -> TimelineStats {
        let mut stats = self.retired_timeline;
        for sh in self.shards.iter().flatten() {
            stats.absorb(sh.events.stats);
        }
        stats
    }

    /// An independent deep copy of the whole shard table: tracker,
    /// per-shard caches (scratch included) and heaps, the dirty list and
    /// the cross-shard event heap. The fork and the original settle
    /// bit-for-bit identically from here on without sharing any state.
    pub(crate) fn fork(&self) -> ShardSet {
        ShardSet {
            tracker: self.tracker.clone(),
            shard_of_root: self.shard_of_root.clone(),
            shards: self
                .shards
                .iter()
                .map(|slot| slot.as_ref().map(Shard::fork))
                .collect(),
            live: self.live,
            free_slots: self.free_slots.clone(),
            dirty: self.dirty.clone(),
            next_events: self.next_events.clone(),
            retired_cache: self.retired_cache,
            retired_timeline: self.retired_timeline,
            collapsed_into: self.collapsed_into,
            collapsed_pin: self.collapsed_pin,
            merge_only: self.merge_only,
            reused_settles: self.reused_settles,
            candidates: Vec::new(),
            splits: self.splits,
            merges: self.merges,
            drains: self.drains,
            collapses: self.collapses,
            uncollapses: self.uncollapses,
        }
    }

    /// [`Self::fork`] into an existing shard table, reusing its
    /// allocations: the tracker, the shard slots (matching `Some`/`Some`
    /// slots clone in place, shard caches and heaps included) and every
    /// side table `clone_from` into the target. Bitwise identical outcome
    /// to `fork` — including the always-empty `candidates` scratch.
    pub(crate) fn fork_into(&self, target: &mut ShardSet) {
        self.tracker.fork_into(&mut target.tracker);
        target.shard_of_root.clone_from(&self.shard_of_root);
        target.shards.truncate(self.shards.len());
        for (i, slot) in self.shards.iter().enumerate() {
            if let Some(tgt) = target.shards.get_mut(i) {
                match (slot, tgt) {
                    (Some(src), Some(t)) => src.fork_into(t),
                    (src, t) => *t = src.as_ref().map(Shard::fork),
                }
            } else {
                target.shards.push(slot.as_ref().map(Shard::fork));
            }
        }
        target.live = self.live;
        target.free_slots.clone_from(&self.free_slots);
        target.dirty.clone_from(&self.dirty);
        target.next_events.clone_from(&self.next_events);
        target.retired_cache = self.retired_cache;
        target.retired_timeline = self.retired_timeline;
        target.collapsed_into = self.collapsed_into;
        target.collapsed_pin = self.collapsed_pin;
        target.merge_only = self.merge_only;
        target.reused_settles = self.reused_settles;
        target.candidates.clear();
        target.splits = self.splits;
        target.merges = self.merges;
        target.drains = self.drains;
        target.collapses = self.collapses;
        target.uncollapses = self.uncollapses;
    }

    /// Quiescent-barrier reset, called by the engine when the flow
    /// population drains to empty: every shard is provably memberless, so
    /// the partition (and a [`Self::collapse_all`] pin left by a Myrinet
    /// budget fallback) can be forgotten wholesale. Counters fold into
    /// the retired accumulators exactly like [`Self::reset`], so stats
    /// stay cumulative across the barrier.
    pub(crate) fn quiesce(&mut self) {
        self.reset();
    }

    /// Drops every shard and the component structure while folding their
    /// counters into the retired accumulators — stats (including the
    /// partition-shape counters) stay cumulative across resets, exactly
    /// like the unsharded engine's.
    pub(crate) fn reset(&mut self) {
        for sh in self.shards.iter().flatten() {
            self.retired_cache.absorb(sh.cache.stats());
            self.retired_timeline.absorb(sh.events.stats);
        }
        self.tracker.clear();
        self.shard_of_root.clear();
        self.shards.clear();
        self.live = 0;
        self.free_slots.clear();
        self.dirty.clear();
        self.next_events.clear();
        self.collapsed_into = None;
        self.collapsed_pin = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(src: u32, dst: u32) -> Communication {
        Communication::new(src, dst, 100)
    }

    /// A minimal slot for exercising the re-partitioning paths.
    struct TSlot {
        comm: Communication,
        contending: bool,
        finish: f64,
        gate: f64,
    }

    impl TSlot {
        fn running(src: u32, dst: u32, finish: f64) -> TSlot {
            TSlot {
                comm: comm(src, dst),
                contending: true,
                finish,
                gate: 0.0,
            }
        }
    }

    impl SlotView for TSlot {
        fn comm(&self) -> &Communication {
            &self.comm
        }
        fn contending(&self) -> bool {
            self.contending
        }
        fn finish(&self) -> f64 {
            self.finish
        }
        fn gate(&self) -> f64 {
            self.gate
        }
    }

    #[test]
    fn assign_creates_joins_and_merges() {
        let mut set = ShardSet::default();
        let a = set.assign(&comm(0, 1));
        let b = set.assign(&comm(2, 3));
        assert_ne!(a, b);
        assert_eq!(set.live_count(), 2);
        assert_eq!(set.assign(&comm(0, 4)), a, "shared endpoint joins");
        let bridged = set.assign(&comm(1, 2));
        assert!(bridged == a || bridged == b);
        assert_eq!(set.live_count(), 1, "bridge retires the loser");
        assert_eq!(set.shard_stats().merges, 1);
        // the whole union now routes to the surviving shard
        assert_eq!(set.assign(&comm(3, 4)), bridged);
    }

    #[test]
    fn merge_moves_members_and_invalidates_the_winner() {
        let mut set = ShardSet::default();
        let mut slab: Slab<()> = Slab::new();
        let (k0, k1) = (slab.insert(()), slab.insert(()));
        let a = set.assign(&comm(0, 1));
        let b = set.assign(&comm(2, 3));
        set.shard_mut(a).members.push(k0);
        set.shard_mut(b).members.push(k1);
        set.shard_mut(b).events.push_gate(5.0, k1, 0);
        set.refresh_next(b, &slab);
        assert_eq!(set.peek_next(), Some(5.0));
        let survivor = set.assign(&comm(1, 2));
        assert_eq!(set.shard_mut(survivor).members.len(), 2);
        assert!(set.shard_mut(survivor).dirty, "merge queues a rebuild");
        assert_eq!(set.dirty, vec![survivor]);
        // the merged gate survives in the winner's heaps...
        assert_eq!(set.shard_mut(survivor).events.peek_gate(&slab), Some(5.0));
        // ...but the retired shard's cross-shard entry went stale, and the
        // winner republishes under a fresh version
        set.refresh_next(survivor, &slab);
        assert_eq!(set.peek_next(), Some(5.0));
        assert_eq!(set.take_candidates(5.0), vec![survivor]);
    }

    #[test]
    fn stale_versions_are_discarded_on_peek_and_pop() {
        let mut set = ShardSet::default();
        let mut slab: Slab<()> = Slab::new();
        let (k0, k1) = (slab.insert(()), slab.insert(()));
        let a = set.assign(&comm(0, 1));
        set.shard_mut(a).events.push_gate(3.0, k0, 0);
        set.refresh_next(a, &slab);
        // a second refresh supersedes the first entry
        set.shard_mut(a).events.push_gate(1.0, k1, 0);
        set.refresh_next(a, &slab);
        assert_eq!(set.peek_next(), Some(1.0));
        let c = set.take_candidates(1.0);
        assert_eq!(c, vec![a]);
        set.recycle_candidates(c);
        // both entries are gone (one live, one stale) until republished
        assert_eq!(set.peek_next(), None);
    }

    #[test]
    fn dirty_marking_is_idempotent() {
        let mut set = ShardSet::default();
        let a = set.assign(&comm(0, 1));
        set.mark_dirty(a);
        set.mark_dirty(a);
        assert_eq!(set.dirty, vec![a]);
    }

    #[test]
    fn disjoint_mut_hands_out_every_requested_shard() {
        let mut set = ShardSet::default();
        let ids = [
            set.assign(&comm(0, 1)),
            set.assign(&comm(2, 3)),
            set.assign(&comm(4, 5)),
        ];
        let picked = [ids[0], ids[2]];
        let shards = set.disjoint_mut(&picked);
        assert_eq!(shards.len(), 2);
        for sh in shards {
            sh.version += 1;
        }
    }

    #[test]
    fn collapse_merges_everything_and_pins_future_assignments() {
        let mut set = ShardSet::default();
        let a = set.assign(&comm(0, 1));
        let _b = set.assign(&comm(2, 3));
        let _c = set.assign(&comm(4, 5));
        assert_eq!(set.live_count(), 3);
        let survivor = set.collapse_all(None);
        assert_eq!(survivor, a, "lowest live shard survives");
        assert!(set.is_collapsed());
        assert_eq!(set.live_count(), 1);
        assert_eq!(set.dirty, vec![survivor], "exactly the survivor is queued");
        assert_eq!(set.shard_stats().budget_collapses, 1);
        assert!(set.shard_stats().collapsed);
        // A brand-new component would have created a shard before the
        // collapse; now it routes straight to the survivor.
        assert_eq!(set.assign(&comm(6, 7)), survivor);
        assert_eq!(set.live_count(), 1);
        // ...and a reset lifts the collapse along with the partition.
        set.reset();
        assert!(!set.is_collapsed());
        assert_ne!(set.assign(&comm(0, 1)), set.assign(&comm(2, 3)));
    }

    #[test]
    fn reset_folds_counters_and_forgets_structure() {
        let mut set = ShardSet::default();
        let mut slab: Slab<()> = Slab::new();
        let k0 = slab.insert(());
        let a = set.assign(&comm(0, 1));
        set.shard_mut(a).events.push_gate(1.0, k0, 0);
        set.note_reused_settle();
        let before = set.timeline_stats();
        assert_eq!(before.gate_pushes, 1);
        set.reset();
        assert_eq!(set.live_count(), 0);
        assert_eq!(set.peek_next(), None);
        assert_eq!(set.timeline_stats().gate_pushes, 1, "stats survive reset");
        assert_eq!(set.cache_stats().reuses, 1);
        // and the next assignment starts a fresh shard table
        let b = set.assign(&comm(0, 1));
        assert_eq!(set.live_count(), 1);
        let _ = b;
    }

    #[test]
    fn departures_split_shards_and_reuse_slots() {
        let mut set = ShardSet::default();
        let mut slab: Slab<TSlot> = Slab::new();
        // One chain component 0-1-2-3 out of three flows.
        let a = set.assign(&comm(0, 1));
        assert_eq!(set.assign(&comm(1, 2)), a);
        assert_eq!(set.assign(&comm(2, 3)), a);
        let k01 = slab.insert(TSlot::running(0, 1, 10.0));
        let k12 = slab.insert(TSlot::running(1, 2, 20.0));
        let k23 = slab.insert(TSlot::running(2, 3, 30.0));
        let sh = set.shard_mut(a);
        sh.members.extend([k01, k12, k23]);
        for (k, t) in [(k01, 10.0), (k12, 20.0), (k23, 30.0)] {
            sh.events.push_completion(t, k, 0);
        }
        set.refresh_next(a, &slab);
        assert_eq!(set.peek_next(), Some(10.0));
        // The middle flow completes: its slot leaves the slab, then the
        // departure splits {0,1,2,3} into {0,1} and {2,3}.
        slab.remove(k12);
        set.depart(&comm(1, 2), &mut slab);
        assert_eq!(set.live_count(), 2);
        let stats = set.shard_stats();
        assert_eq!((stats.splits, stats.drains), (1, 0));
        // The kept shard holds {k01}, the splinter {k23}, both dirty.
        assert_eq!(set.shard_mut(a).members, vec![k01]);
        let sid = *set.dirty.iter().find(|&&d| d != a).expect("splinter dirty");
        assert_eq!(set.shard_mut(sid).members, vec![k23]);
        // The splinter's completion entry was re-pushed under the bumped
        // epoch; the kept shard's old k23 entry is stale and lazily
        // skipped, so both shards report their true next events.
        assert_eq!(set.shard_mut(a).events.peek_finish(&slab), Some(10.0));
        assert_eq!(set.shard_mut(sid).events.peek_finish(&slab), Some(30.0));
        assert_eq!(set.peek_next(), Some(10.0));
        // Draining {0,1} retires the kept shard and frees its slot...
        slab.remove(k01);
        set.depart(&comm(0, 1), &mut slab);
        assert_eq!(set.live_count(), 1);
        assert_eq!(set.shard_stats().drains, 1);
        // ...which the next brand-new component reuses.
        assert_eq!(set.assign(&comm(8, 9)), a, "retired slot is reused");
        // A stale cross-shard entry for the old occupant can never fire
        // against the new one: versions continued past the retiree's.
        set.refresh_next(a, &slab);
        assert_eq!(set.peek_next(), Some(30.0), "splinter's completion leads");
    }

    #[test]
    fn pinned_component_departure_uncollapses() {
        let mut set = ShardSet::default();
        let mut slab: Slab<TSlot> = Slab::new();
        let a = set.assign(&comm(0, 1));
        let b = set.assign(&comm(2, 3));
        let k01 = slab.insert(TSlot::running(0, 1, 5.0));
        let k23 = slab.insert(TSlot::running(2, 3, 7.0));
        set.shard_mut(a).members.push(k01);
        set.shard_mut(a).events.push_completion(5.0, k01, 0);
        set.shard_mut(b).members.push(k23);
        set.shard_mut(b).events.push_completion(7.0, k23, 0);
        let pin = set
            .tracker
            .find(comm(0, 1).src)
            .expect("component 0-1 is tracked");
        let gid = set.collapse_all(Some(pin));
        assert!(set.is_collapsed());
        assert_eq!(set.live_count(), 1);
        // A departure in the non-pinned component keeps the collapse.
        slab.remove(k23);
        set.depart(&comm(2, 3), &mut slab);
        assert!(set.is_collapsed(), "non-pinned departure keeps the pin");
        // Re-admit the 2-3 flow (routes to the global shard while
        // collapsed), then drain the pinned component: the collapse lifts
        // and the true partition is rebuilt from the live slab.
        assert_eq!(set.assign(&comm(2, 3)), gid);
        let k23b = slab.insert(TSlot::running(2, 3, 7.0));
        set.shard_mut(gid).members.push(k23b);
        set.shard_mut(gid)
            .events
            .push_completion(7.0, k23b, slab.epoch(k23b).unwrap());
        slab.remove(k01);
        set.depart(&comm(0, 1), &mut slab);
        assert!(!set.is_collapsed(), "pinned drain un-collapses");
        assert_eq!(set.live_count(), 1);
        assert_eq!(set.shard_stats().uncollapses, 1);
        // The reborn shard holds the surviving flow, is queued for a full
        // rebuild, and republished its next event.
        assert_eq!(set.dirty.len(), 1);
        let reborn = set.dirty[0];
        assert_eq!(set.shard_mut(reborn).members, vec![k23b]);
        assert!(set.shard_mut(reborn).dirty);
        assert_eq!(set.peek_next(), Some(7.0));
    }
}
