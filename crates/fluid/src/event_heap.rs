//! Lazy event heaps for the fluid engine's timeline: completion times and
//! latency gates as min-heaps instead of per-settle population scans.
//!
//! Between penalty changes every flow's rate is constant, so its absolute
//! finish time is a *cached value*, not something to re-derive by scanning
//! the population (the dslab fair-sharing "fast algorithm" shape, adapted
//! to unequal per-flow rates). The engine keeps one heap entry per
//! *anchoring* of a flow:
//!
//! * when a flow's rate changes, the engine re-anchors it, bumps the
//!   slab's per-occupancy epoch stamp ([`crate::Slab::bump_epoch`]) and
//!   pushes a fresh `(finish, key, epoch)` entry — the old entries stay in
//!   the heap;
//! * on peek/pop, entries whose `(key, epoch)` no longer matches the slab
//!   are **stale** — the flow completed, or was re-anchored since — and
//!   are discarded ([`TimelineStats::lazy_pops`]).
//!
//! The invariant this buys: every contending flow has exactly one *live*
//! entry, carrying exactly its current cached finish time, so the earliest
//! completion is a heap peek (amortized O(log n)) rather than an O(n)
//! scan. Latency gates get the same treatment with a simpler lifecycle:
//! gates are immutable once a transfer is added and gated flows never
//! complete, so in a single-timeline engine gate entries are never stale.
//! Gate entries still carry the slab epoch, because the *sharded* engine
//! migrates gated flows between per-shard heaps when a shard splits: the
//! migration bumps the flow's epoch and re-pushes its gate into the
//! splinter heap, leaving the old shard's entry to be lazily discarded
//! ([`TimelineStats::gate_lazy_pops`]) exactly like a re-anchored
//! completion entry.
//!
//! The full-recompute oracle mode keeps the linear scans (see
//! `ARCHITECTURE.md`, "Event timeline"), which is what lets the
//! equivalence proptests pin the heap path bit-for-bit.

use crate::slab::{FlowKey, Slab};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Counters describing how the event timeline is doing — the heap-era
/// sibling of [`crate::CacheStats`]. Cumulative across resets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineStats {
    /// Completion-heap entries pushed (one per flow anchoring: arrival
    /// into contention, or re-anchor after a penalty change).
    pub heap_pushes: u64,
    /// Stale completion entries discarded on peek/pop (their flow
    /// completed or re-anchored since the push). The lazy-invalidation
    /// cost: bounded by `heap_pushes`.
    pub lazy_pops: u64,
    /// Latency-gate entries pushed at [`crate::FluidNetwork::add`] time.
    pub gate_pushes: u64,
    /// Gate openings served from the gate heap (each live pop is one
    /// opening).
    pub gate_heap_hits: u64,
    /// Stale gate entries discarded on peek/pop — only shard splits make
    /// gate entries stale (migrating a gated flow re-pushes its gate under
    /// a fresh epoch), so this stays 0 in the unsharded engines.
    pub gate_lazy_pops: u64,
    /// Settles that fell back to re-syncing the whole active population
    /// (an [`netbw_core::AffectedSet::All`] answer — full recomputes,
    /// scratch rebuilds, budget fallbacks — and every settle of the
    /// linear-timeline modes).
    pub rescans: u64,
}

impl TimelineStats {
    /// Adds `other`'s counters into `self`. The sharded engine keeps one
    /// timeline per shard and reports their sum; shard merges and resets
    /// fold counters through this, so aggregate stats stay cumulative no
    /// matter how components coalesce.
    pub fn absorb(&mut self, other: TimelineStats) {
        self.heap_pushes += other.heap_pushes;
        self.lazy_pops += other.lazy_pops;
        self.gate_pushes += other.gate_pushes;
        self.gate_heap_hits += other.gate_heap_hits;
        self.gate_lazy_pops += other.gate_lazy_pops;
        self.rescans += other.rescans;
    }
}

/// A completion-heap entry: the cached absolute finish time of one
/// anchoring of one flow. Compares by finish time (total order over f64;
/// the engine clamps NaN before pushing), with key/epoch tiebreaks only
/// so the order is well-defined.
#[derive(Clone, Copy, Debug)]
struct FinishEntry {
    finish: f64,
    key: FlowKey,
    epoch: u64,
}

impl PartialEq for FinishEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for FinishEntry {}
impl PartialOrd for FinishEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FinishEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest finish
        // on top
        other
            .finish
            .total_cmp(&self.finish)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.epoch.cmp(&self.epoch))
    }
}

/// A gate-heap entry: the instant a transfer starts contending, stamped
/// with the slab epoch at push time so shard splits can invalidate it
/// lazily.
#[derive(Clone, Copy, Debug)]
struct GateEntry {
    gate: f64,
    key: FlowKey,
    epoch: u64,
}

impl PartialEq for GateEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for GateEntry {}
impl PartialOrd for GateEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GateEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .gate
            .total_cmp(&self.gate)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.epoch.cmp(&self.epoch))
    }
}

/// The engine's two lazy min-heaps plus their counters. Cloning copies
/// both heaps entry-for-entry (entries are `Copy`), which is what lets a
/// forked network resume its timeline without a rescan.
#[derive(Debug, Default, Clone)]
pub(crate) struct EventHeaps {
    completions: BinaryHeap<FinishEntry>,
    gates: BinaryHeap<GateEntry>,
    pub(crate) stats: TimelineStats,
}

impl EventHeaps {
    /// Drops every entry while keeping the allocations warm (stats are
    /// cumulative, like [`crate::CacheStats`]).
    pub(crate) fn clear(&mut self) {
        self.completions.clear();
        self.gates.clear();
    }

    /// Makes `target` an exact copy of `self` — heap layout, stamps and
    /// stats included — while reusing `target`'s heap allocations
    /// (`BinaryHeap::clone_from` delegates to the backing `Vec`'s). The
    /// allocation-preserving counterpart of `clone`.
    pub(crate) fn fork_into(&self, target: &mut Self) {
        target.completions.clone_from(&self.completions);
        target.gates.clone_from(&self.gates);
        target.stats = self.stats;
    }

    /// Records a (re-)anchored flow's cached finish time. `epoch` must be
    /// the slab's *current* stamp for `key` (i.e. the caller bumped it
    /// just before), so exactly one entry per flow is live.
    pub(crate) fn push_completion(&mut self, finish: f64, key: FlowKey, epoch: u64) {
        debug_assert!(!finish.is_nan(), "finish times are clamped before push");
        self.stats.heap_pushes += 1;
        self.completions.push(FinishEntry { finish, key, epoch });
    }

    /// The earliest live cached finish time, discarding stale entries
    /// (completed or re-anchored flows) from the top.
    pub(crate) fn peek_finish<T>(&mut self, slots: &Slab<T>) -> Option<f64> {
        while let Some(top) = self.completions.peek() {
            if slots.epoch(top.key) == Some(top.epoch) {
                return Some(top.finish);
            }
            self.completions.pop();
            self.stats.lazy_pops += 1;
        }
        None
    }

    /// Pops every live entry with `finish <= t` into `out` (stale entries
    /// under the bound are discarded as a side effect). With the
    /// one-live-entry invariant this is exactly the set of flows whose
    /// cached finish time is due — the completion batch the oracle finds
    /// by scanning. Keys land in `out` in heap (finish) order; the caller
    /// re-sorts the batch by its own key anyway.
    pub(crate) fn pop_due_completions<T>(
        &mut self,
        t: f64,
        slots: &Slab<T>,
        out: &mut Vec<FlowKey>,
    ) {
        while let Some(top) = self.completions.peek() {
            if top.finish > t {
                break;
            }
            let entry = self.completions.pop().expect("peeked entry pops");
            if slots.epoch(entry.key) == Some(entry.epoch) {
                out.push(entry.key);
            } else {
                self.stats.lazy_pops += 1;
            }
        }
    }

    /// Records a transfer's latency gate, stamped with the slab's current
    /// epoch for `key`. Only future gates belong in the heap —
    /// immediately-contending transfers are noted as arrivals directly.
    pub(crate) fn push_gate(&mut self, gate: f64, key: FlowKey, epoch: u64) {
        debug_assert!(!gate.is_nan());
        self.stats.gate_pushes += 1;
        self.gates.push(GateEntry { gate, key, epoch });
    }

    /// The earliest unopened live gate, discarding stale entries (flows a
    /// shard split migrated away under a fresh epoch) from the top.
    pub(crate) fn peek_gate<T>(&mut self, slots: &Slab<T>) -> Option<f64> {
        while let Some(top) = self.gates.peek() {
            if slots.epoch(top.key) == Some(top.epoch) {
                return Some(top.gate);
            }
            self.gates.pop();
            self.stats.gate_lazy_pops += 1;
        }
        None
    }

    /// Splices `other`'s entries (and counters) into `self` — the heap
    /// half of a shard merge. Entries stay valid verbatim: completion
    /// entries carry slab epochs (the slab is shared across shards) and
    /// gate entries are immutable, so a merged timeline answers exactly as
    /// the two separate ones would have.
    pub(crate) fn append(&mut self, mut other: EventHeaps) {
        self.completions.append(&mut other.completions);
        self.gates.append(&mut other.gates);
        self.stats.absorb(other.stats);
    }

    /// Pops every live gate with `gate <= t` into `out` — these flows
    /// start contending now and must be noted as arrivals by the caller.
    /// Stale entries under the bound are discarded as a side effect.
    pub(crate) fn pop_gates_through<T>(&mut self, t: f64, slots: &Slab<T>, out: &mut Vec<FlowKey>) {
        while let Some(top) = self.gates.peek() {
            if top.gate > t {
                break;
            }
            let entry = self.gates.pop().expect("peeked entry pops");
            if slots.epoch(entry.key) == Some(entry.epoch) {
                self.stats.gate_heap_hits += 1;
                out.push(entry.key);
            } else {
                self.stats.gate_lazy_pops += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab_with(n: usize) -> (Slab<u32>, Vec<FlowKey>) {
        let mut slab = Slab::new();
        let keys = (0..n as u32).map(|i| slab.insert(i)).collect();
        (slab, keys)
    }

    #[test]
    fn peek_discards_stale_epochs_and_counts_them() {
        let (mut slab, keys) = slab_with(2);
        let mut heaps = EventHeaps::default();
        heaps.push_completion(5.0, keys[0], 0);
        // re-anchor flow 0: epoch bumps, new entry at an earlier finish
        let e = slab.bump_epoch(keys[0]).unwrap();
        heaps.push_completion(3.0, keys[0], e);
        heaps.push_completion(4.0, keys[1], 0);
        assert_eq!(heaps.peek_finish(&slab), Some(3.0));
        let mut due = Vec::new();
        heaps.pop_due_completions(4.5, &slab, &mut due);
        assert_eq!(due, vec![keys[0], keys[1]]);
        // the stale epoch-0 entry for flow 0 sits at 5.0, beyond the bound
        assert_eq!(heaps.peek_finish(&slab), None);
        assert_eq!(heaps.stats.lazy_pops, 1);
        assert_eq!(heaps.stats.heap_pushes, 3);
    }

    #[test]
    fn completed_flows_entries_go_stale() {
        let (mut slab, keys) = slab_with(1);
        let mut heaps = EventHeaps::default();
        heaps.push_completion(2.0, keys[0], 0);
        slab.remove(keys[0]);
        assert_eq!(heaps.peek_finish(&slab), None);
        assert_eq!(heaps.stats.lazy_pops, 1);
    }

    #[test]
    fn gates_pop_in_time_order() {
        let (slab, keys) = slab_with(3);
        let mut heaps = EventHeaps::default();
        heaps.push_gate(3.0, keys[0], 0);
        heaps.push_gate(1.0, keys[1], 0);
        heaps.push_gate(2.0, keys[2], 0);
        assert_eq!(heaps.peek_gate(&slab), Some(1.0));
        let mut opened = Vec::new();
        heaps.pop_gates_through(2.5, &slab, &mut opened);
        assert_eq!(opened, vec![keys[1], keys[2]]);
        assert_eq!(heaps.peek_gate(&slab), Some(3.0));
        assert_eq!(heaps.stats.gate_heap_hits, 2);
        assert_eq!(heaps.stats.gate_pushes, 3);
        assert_eq!(heaps.stats.gate_lazy_pops, 0);
    }

    #[test]
    fn migrated_gate_entries_go_stale() {
        // a shard split re-pushes a gated flow's entry under a bumped
        // epoch; the old entry must be skipped on peek and pop
        let (mut slab, keys) = slab_with(2);
        let mut heaps = EventHeaps::default();
        heaps.push_gate(1.0, keys[0], 0);
        heaps.push_gate(2.0, keys[1], 0);
        let e = slab.bump_epoch(keys[0]).unwrap();
        let mut splinter = EventHeaps::default();
        splinter.push_gate(1.0, keys[0], e);
        assert_eq!(heaps.peek_gate(&slab), Some(2.0));
        assert_eq!(heaps.stats.gate_lazy_pops, 1);
        assert_eq!(splinter.peek_gate(&slab), Some(1.0));
        let mut opened = Vec::new();
        heaps.push_gate(1.5, keys[0], 99); // another stale anchoring
        heaps.pop_gates_through(3.0, &slab, &mut opened);
        assert_eq!(opened, vec![keys[1]]);
        assert_eq!(heaps.stats.gate_lazy_pops, 2);
        assert_eq!(heaps.stats.gate_heap_hits, 1);
    }

    #[test]
    fn equal_finish_ties_pop_deterministically() {
        // simultaneous completions: all entries at the same instant come
        // out, ordered by key (the tiebreak), under a single bound
        let (slab, keys) = slab_with(4);
        let mut heaps = EventHeaps::default();
        for &k in keys.iter().rev() {
            heaps.push_completion(7.0, k, 0);
        }
        let mut due = Vec::new();
        heaps.pop_due_completions(7.0, &slab, &mut due);
        assert_eq!(due, keys);
    }
}
