//! Incremental penalty cache for the fluid engine.
//!
//! Penalties only change when the *contending population* changes — a
//! transfer arrives, a latency gate opens, or a transfer completes. Pure
//! time advances (including every [`crate::FluidNetwork::next_event_time`]
//! probe between events) leave them untouched. The cache makes that
//! query-on-change policy explicit and, since the slab refactor, also
//! tracks *which* flows changed: population members are identified by
//! stable [`FlowKey`]s, pending arrivals and departures are accumulated as
//! key sets, and [`PenaltyCache::refresh`] turns them into a positional
//! [`PopulationDelta`] — simultaneous arrival+departure batches become
//! chained [`PopulationDelta::Mixed`] deltas (departures first, then
//! arrivals) instead of degrading to a rebuild — that lets
//! [`PenaltyModel::penalties_with_scratch`] patch only the affected part
//! of the fabric instead of recomputing all of it.
//!
//! The cache also owns the model's opaque **scratch**
//! ([`netbw_core::ModelScratch`], created lazily via
//! [`PenaltyModel::new_scratch`]): the state the models keep *between*
//! settles — endpoint indices for GigE/InfiniBand, union–find conflict
//! components plus a cached Moon–Moser budget certification for Myrinet —
//! lives here, not in the (thread-shared) model. Every query reports a
//! [`netbw_core::QueryOutcome`], so the stats distinguish deltas *offered*
//! from patches *performed* and count scratch rebuilds and budget
//! fallbacks.
//!
//! Two bookkeeping niceties fall out of stable keys:
//!
//! * a flow that arrives *and* departs between two settles (a zero-size
//!   transfer) cancels out — the population did not change, so the next
//!   settle revalidates without querying the model at all;
//! * completions no longer poison the cache: the surviving keys (and their
//!   relative order) are untouched, so a completion batch yields a clean
//!   `Departed` delta instead of a rebuild.

use crate::slab::FlowKey;
use netbw_core::{AffectedSet, ModelScratch, Penalty, PenaltyModel, PopulationDelta};
use netbw_graph::Communication;
use std::collections::HashSet;

/// Counters describing how well query-on-change is working.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Model evaluations performed (the expensive operation).
    pub model_queries: u64,
    /// Times a settled population was served from the cache.
    pub reuses: u64,
    /// Population changes observed (arrivals, gate openings, departures).
    pub invalidations: u64,
    /// Model queries that carried a positional delta (`Arrived`,
    /// `Departed` or chained `Mixed`), giving the model the chance to
    /// patch in O(affected). This counts deltas *offered*;
    /// [`CacheStats::patched_queries`] counts the patches the model
    /// actually *performed*.
    pub delta_queries: u64,
    /// Model queries the model answered with an O(affected) patch (the
    /// [`netbw_core::QueryOutcome::patched`] flag). Always ≤
    /// [`CacheStats::delta_queries`]: a delta-carrying query may still
    /// recompute in full when the model cannot honour the hint (failed
    /// alignment, or Myrinet's budget certification refusing reuse).
    pub patched_queries: u64,
    /// Queries in which the model (re)built its per-cache scratch state
    /// with a full O(n) pass — the first settle, every forced rebuild, and
    /// any bookkeeping surprise.
    pub scratch_rebuilds: u64,
    /// Queries in which Myrinet's Moon–Moser budget certification refused
    /// penalty reuse or the state-set enumeration hit its budget (always 0
    /// for the closed-form models).
    pub budget_fallbacks: u64,
    /// Settles where pending changes cancelled out (arrive + depart
    /// between settles): revalidated without touching the model.
    pub cancelled_refreshes: u64,
}

impl CacheStats {
    /// Model queries that had to rebuild from scratch (first query, forced
    /// full recomputes, or transitions no positional delta could explain).
    pub fn rebuild_queries(&self) -> u64 {
        self.model_queries - self.delta_queries
    }

    /// Adds `other`'s counters into `self`. The sharded engine keeps one
    /// penalty cache per shard and reports their sum; retiring a shard (a
    /// component merge, or a reset) folds its counters through this, so
    /// the aggregate stays cumulative.
    pub fn absorb(&mut self, other: CacheStats) {
        self.model_queries += other.model_queries;
        self.reuses += other.reuses;
        self.invalidations += other.invalidations;
        self.delta_queries += other.delta_queries;
        self.patched_queries += other.patched_queries;
        self.scratch_rebuilds += other.scratch_rebuilds;
        self.budget_fallbacks += other.budget_fallbacks;
        self.cancelled_refreshes += other.cancelled_refreshes;
    }
}

/// Cached penalties for the currently contending population.
///
/// Owned by [`crate::FluidNetwork`]; `active` holds the stable slab keys
/// of the contending flows, `penalties` is aligned with it. The cache also
/// owns the model's opaque scratch state (created lazily on the first
/// refresh), which is what makes warm settles O(affected) on the model
/// side.
#[derive(Default)]
pub struct PenaltyCache {
    active: Vec<FlowKey>,
    comms: Vec<Communication>,
    penalties: Vec<Penalty>,
    valid: bool,
    settled_once: bool,
    pending_arrivals: HashSet<FlowKey>,
    pending_departures: HashSet<FlowKey>,
    pending_rebuild: bool,
    scratch: Option<Box<dyn ModelScratch>>,
    /// The model's answer to "whose penalty may have changed?" from the
    /// most recent refresh, consumed by the engine's kinetics resync via
    /// [`Self::take_affected`].
    affected: AffectedSet,
    /// Reusable buffer for [`Self::staged_active`]'s sorted arrivals.
    staged_arrivals: Vec<FlowKey>,
    stats: CacheStats,
}

impl std::fmt::Debug for PenaltyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PenaltyCache")
            .field("active", &self.active)
            .field("penalties", &self.penalties)
            .field("valid", &self.valid)
            .field("settled_once", &self.settled_once)
            .field("has_scratch", &self.scratch.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PenaltyCache {
    /// An empty, invalid cache (first use always queries the model).
    pub fn new() -> Self {
        PenaltyCache::default()
    }

    /// Whether the cached penalties still describe the population.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Stable keys of the contending population (valid caches only).
    pub fn active(&self) -> &[FlowKey] {
        debug_assert!(self.valid, "reading an invalidated penalty cache");
        &self.active
    }

    /// Penalties aligned with [`Self::active`] (valid caches only).
    pub fn penalties(&self) -> &[Penalty] {
        debug_assert!(self.valid, "reading an invalidated penalty cache");
        &self.penalties
    }

    /// Usage counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// An independent deep copy: settled population, pending deltas, and
    /// the model scratch (via [`ModelScratch::fork`]) are all duplicated,
    /// so the fork answers subsequent refreshes bit-for-bit like the
    /// original would have — without the two ever sharing mutable state.
    /// Stats are copied as-of-now and diverge from here on.
    pub fn fork(&self) -> PenaltyCache {
        PenaltyCache {
            active: self.active.clone(),
            comms: self.comms.clone(),
            penalties: self.penalties.clone(),
            valid: self.valid,
            settled_once: self.settled_once,
            pending_arrivals: self.pending_arrivals.clone(),
            pending_departures: self.pending_departures.clone(),
            pending_rebuild: self.pending_rebuild,
            scratch: self.scratch.as_ref().map(|s| s.fork()),
            affected: self.affected.clone(),
            staged_arrivals: self.staged_arrivals.clone(),
            stats: self.stats,
        }
    }

    /// [`Self::fork`] into an existing cache, reusing its allocations.
    /// Identical outcome to `*target = self.fork()` — bitwise, scratch
    /// included — but steady-state re-forks into a warm target allocate
    /// nothing: containers `clone_from`, and the model scratch clones in
    /// place via [`ModelScratch::fork_into`] whenever the concrete scratch
    /// types line up (falling back to a fresh `fork` when they don't).
    pub fn fork_into(&self, target: &mut PenaltyCache) {
        target.active.clone_from(&self.active);
        target.comms.clone_from(&self.comms);
        target.penalties.clone_from(&self.penalties);
        target.valid = self.valid;
        target.settled_once = self.settled_once;
        target.pending_arrivals.clone_from(&self.pending_arrivals);
        target
            .pending_departures
            .clone_from(&self.pending_departures);
        target.pending_rebuild = self.pending_rebuild;
        let scratch_reused = match (&self.scratch, &mut target.scratch) {
            (Some(src), Some(tgt)) => src.fork_into(&mut **tgt),
            _ => false,
        };
        if !scratch_reused {
            target.scratch = self.scratch.as_ref().map(|s| s.fork());
        }
        target.affected.clone_from(&self.affected);
        target.staged_arrivals.clone_from(&self.staged_arrivals);
        target.stats = self.stats;
    }

    /// Returns the cache to its pre-first-settle state while keeping the
    /// model scratch allocation and the cumulative stats. The next refresh
    /// issues a full rebuild query (no positional delta can bridge a
    /// reset), and the models re-seed their scratch from that query — so a
    /// reset cache answers bit-for-bit like a fresh one while reusing the
    /// scratch's allocations. This is what makes
    /// [`crate::FluidSolver`]'s network reuse sound.
    pub fn reset(&mut self) {
        self.active.clear();
        self.comms.clear();
        self.penalties.clear();
        self.valid = false;
        self.settled_once = false;
        self.pending_arrivals.clear();
        self.pending_departures.clear();
        self.pending_rebuild = false;
        self.affected = AffectedSet::All;
    }

    /// The affected set reported by the most recent refresh, leaving the
    /// conservative [`AffectedSet::All`] behind. The engine uses it to
    /// re-anchor only the flows whose penalty may actually have changed;
    /// a cancelled refresh leaves an empty set (nobody moved).
    pub fn take_affected(&mut self) -> AffectedSet {
        std::mem::take(&mut self.affected)
    }

    /// Stages the post-change contending population into `out` without
    /// touching the slab: the previously settled population minus pending
    /// departures, merged (by slot index, i.e. slab iteration order) with
    /// pending arrivals. Returns `false` — caller must gather by scanning
    /// the slab instead — when no settled population exists yet or a
    /// rebuild is pending.
    ///
    /// This is what keeps a settle O(changed + log n) end to end: with
    /// 100k queued transfers and a few hundred contending, re-deriving the
    /// population from the slab would cost O(total) per event even though
    /// the penalty query itself is O(affected).
    pub fn staged_active(&mut self, out: &mut Vec<FlowKey>) -> bool {
        if self.pending_rebuild || !self.settled_once {
            return false;
        }
        out.clear();
        self.staged_arrivals.clear();
        self.staged_arrivals.extend(self.pending_arrivals.iter());
        self.staged_arrivals
            .sort_unstable_by_key(|k| k.slot_index());
        let mut next_arrival = 0;
        for &k in &self.active {
            if self.pending_departures.contains(&k) {
                continue;
            }
            while let Some(&a) = self.staged_arrivals.get(next_arrival) {
                if a.slot_index() < k.slot_index() {
                    out.push(a);
                    next_arrival += 1;
                } else {
                    break;
                }
            }
            out.push(k);
        }
        out.extend_from_slice(&self.staged_arrivals[next_arrival..]);
        true
    }

    /// Records that the flow `key` joined the contending population (a new
    /// transfer, or a latency gate opening).
    pub fn note_arrival(&mut self, key: FlowKey) {
        self.stats.invalidations += 1;
        self.valid = false;
        self.pending_arrivals.insert(key);
    }

    /// Records that the flow `key` left the contending population. An
    /// arrival that never reached a settle cancels out instead.
    pub fn note_departure(&mut self, key: FlowKey) {
        self.stats.invalidations += 1;
        self.valid = false;
        if !self.pending_arrivals.remove(&key) {
            self.pending_departures.insert(key);
        }
    }

    /// Marks the population as changed in a way no positional delta
    /// describes: the next refresh issues a full rebuild query. Used by
    /// [`crate::FluidNetwork::with_full_recompute`] and as the defensive
    /// answer to any bookkeeping surprise.
    pub fn invalidate_rebuild(&mut self) {
        self.stats.invalidations += 1;
        self.valid = false;
        self.pending_rebuild = true;
    }

    /// Records a served-from-cache settle.
    pub fn note_reuse(&mut self) {
        debug_assert!(self.valid);
        self.stats.reuses += 1;
    }

    /// Derives the [`PopulationDelta`] for a refresh against `new_active`,
    /// consuming the pending change sets. A simultaneous arrival+departure
    /// batch becomes a chained [`PopulationDelta::Mixed`] (departures
    /// applied against the previous population first, then arrivals
    /// against the new one); the cache only falls back to
    /// [`PopulationDelta::Rebuilt`] on the first settle, on a forced
    /// rebuild, or when a pending key fails to line up with either
    /// population.
    fn take_delta(&mut self, new_active: &[FlowKey]) -> PopulationDelta {
        let rebuild = std::mem::take(&mut self.pending_rebuild);
        let arrivals = std::mem::take(&mut self.pending_arrivals);
        let departures = std::mem::take(&mut self.pending_departures);
        if rebuild || !self.settled_once {
            return PopulationDelta::Rebuilt;
        }
        let arrived: Vec<usize> = new_active
            .iter()
            .enumerate()
            .filter(|(_, k)| arrivals.contains(k))
            .map(|(i, _)| i)
            .collect();
        let departed: Vec<usize> = self
            .active
            .iter()
            .enumerate()
            .filter(|(_, k)| departures.contains(k))
            .map(|(i, _)| i)
            .collect();
        let consistent = arrived.len() == arrivals.len()
            && departed.len() == departures.len()
            && new_active.len() + departed.len() == self.active.len() + arrived.len();
        if !consistent {
            return PopulationDelta::Rebuilt;
        }
        match (departed.is_empty(), arrived.is_empty()) {
            (true, _) => PopulationDelta::Arrived(arrived),
            (false, true) => PopulationDelta::Departed(departed),
            (false, false) => PopulationDelta::Mixed { departed, arrived },
        }
    }

    /// Re-queries `model` for the new population and revalidates. The
    /// pending change sets are distilled into a positional
    /// [`PopulationDelta`] (chained mixed deltas included), and the query
    /// goes to the model's stateful batch-delta entry point
    /// [`PenaltyModel::penalties_with_scratch`] over the scratch this
    /// cache owns — the previously settled population is still forwarded
    /// as a seeding hint; `comms` must be aligned with `active`. When the
    /// pending changes cancel out exactly, the model is not queried at
    /// all.
    ///
    /// Returns the *previous* population's vectors (or the passed-in ones,
    /// when the refresh cancelled) so a hot caller can recycle their
    /// allocations for the next settle instead of growing fresh ones.
    pub fn refresh<M: PenaltyModel>(
        &mut self,
        model: &M,
        active: Vec<FlowKey>,
        comms: Vec<Communication>,
    ) -> (Vec<FlowKey>, Vec<Communication>) {
        debug_assert_eq!(active.len(), comms.len());
        let delta = self.take_delta(&active);
        if delta.is_empty() && active == self.active {
            // Nothing actually changed (e.g. a zero-size transfer arrived
            // and completed between settles): revalidate for free.
            self.stats.cancelled_refreshes += 1;
            self.affected = AffectedSet::Positions(Vec::new());
            self.valid = true;
            return (active, comms);
        }
        let incremental = !matches!(delta, PopulationDelta::Rebuilt);
        let previous = self
            .settled_once
            .then_some((self.comms.as_slice(), self.penalties.as_slice()));
        let scratch = self.scratch.get_or_insert_with(|| model.new_scratch());
        let (penalties, outcome) =
            model.penalties_with_scratch(&comms, &delta, previous, scratch.as_mut());
        self.penalties = penalties;
        self.affected = outcome.affected.clone();
        debug_assert_eq!(self.penalties.len(), comms.len());
        let recycled_active = std::mem::replace(&mut self.active, active);
        let recycled_comms = std::mem::replace(&mut self.comms, comms);
        self.valid = true;
        self.settled_once = true;
        self.stats.model_queries += 1;
        if incremental {
            self.stats.delta_queries += 1;
        }
        if outcome.patched {
            self.stats.patched_queries += 1;
        }
        if outcome.scratch_rebuilt {
            self.stats.scratch_rebuilds += 1;
        }
        if outcome.budget_fallback {
            self.stats.budget_fallbacks += 1;
        }
        (recycled_active, recycled_comms)
    }

    /// The stateless oracle refresh used by
    /// [`crate::FluidNetwork::with_full_recompute`]: one full model
    /// evaluation, no delta, no scratch — exactly the pre-refactor
    /// query-every-iteration behaviour, so the oracle's wall-clock stays
    /// an honest baseline (it must not pay for scratch rebuilds it never
    /// benefits from). Pending change sets are still consumed so they
    /// cannot leak into a later delta.
    pub fn refresh_full<M: PenaltyModel>(
        &mut self,
        model: &M,
        active: Vec<FlowKey>,
        comms: Vec<Communication>,
    ) -> (Vec<FlowKey>, Vec<Communication>) {
        debug_assert_eq!(active.len(), comms.len());
        let _ = self.take_delta(&active);
        self.penalties = model.penalties(&comms);
        self.affected = AffectedSet::All;
        debug_assert_eq!(self.penalties.len(), comms.len());
        let recycled_active = std::mem::replace(&mut self.active, active);
        let recycled_comms = std::mem::replace(&mut self.comms, comms);
        self.valid = true;
        self.settled_once = true;
        self.stats.model_queries += 1;
        (recycled_active, recycled_comms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::Slab;
    use netbw_core::MyrinetModel;

    /// Puts `comms` into a slab, returning aligned keys.
    fn keyed(comms: &[Communication]) -> (Slab<Communication>, Vec<FlowKey>) {
        let mut slab = Slab::new();
        let keys = comms.iter().map(|&c| slab.insert(c)).collect();
        (slab, keys)
    }

    fn comms() -> Vec<Communication> {
        vec![
            Communication::new(0u32, 1u32, 100),
            Communication::new(0u32, 2u32, 100),
        ]
    }

    #[test]
    fn starts_invalid_and_validates_on_refresh() {
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        assert!(!cache.is_valid());
        cache.refresh(&MyrinetModel::default(), keys.clone(), comms());
        assert!(cache.is_valid());
        assert_eq!(cache.active(), keys.as_slice());
        assert_eq!(cache.penalties().len(), 2);
        assert_eq!(cache.stats().model_queries, 1);
        // the first settle has no previous population to patch from: the
        // model recomputes and builds its scratch
        assert_eq!(cache.stats().delta_queries, 0);
        assert_eq!(cache.stats().patched_queries, 0);
        assert_eq!(cache.stats().scratch_rebuilds, 1);
    }

    #[test]
    fn arrival_refresh_is_incremental() {
        let model = MyrinetModel::default();
        let mut all = comms();
        all.push(Communication::new(3u32, 4u32, 50));
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys[..2].to_vec(), all[..2].to_vec());
        cache.note_arrival(keys[2]);
        assert!(!cache.is_valid());
        cache.refresh(&model, keys.clone(), all.clone());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(cache.stats().delta_queries, 1);
        // the delta was not just offered, the patch actually happened —
        // over the scratch built at the first settle
        assert_eq!(cache.stats().patched_queries, 1);
        assert_eq!(cache.stats().scratch_rebuilds, 1);
        assert_eq!(cache.penalties(), model.penalties(&all).as_slice());
    }

    #[test]
    fn departure_refresh_is_incremental() {
        let model = MyrinetModel::default();
        let all = comms();
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys.clone(), all.clone());
        cache.note_departure(keys[0]);
        cache.refresh(&model, keys[1..].to_vec(), all[1..].to_vec());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(cache.stats().delta_queries, 1);
        assert_eq!(cache.stats().patched_queries, 1);
        assert_eq!(cache.penalties(), model.penalties(&all[1..]).as_slice());
    }

    #[test]
    fn mixed_batches_patch_incrementally() {
        // A departure and an arrival in the same settle reach the model as
        // one chained Mixed delta — and the model patches it instead of
        // rebuilding, matching the full-recompute oracle bit-for-bit.
        let model = MyrinetModel::default();
        let mut all = comms();
        all.push(Communication::new(3u32, 4u32, 50));
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys[..2].to_vec(), all[..2].to_vec());
        cache.note_departure(keys[1]);
        cache.note_arrival(keys[2]);
        let new_active = vec![keys[0], keys[2]];
        let new_comms = vec![all[0], all[2]];
        cache.refresh(&model, new_active, new_comms.clone());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(
            cache.stats().delta_queries,
            1,
            "mixed settles now carry a chained positional delta"
        );
        assert_eq!(
            cache.stats().patched_queries,
            1,
            "and the model patches them instead of rebuilding"
        );
        assert_eq!(cache.stats().scratch_rebuilds, 1, "only the first settle");
        assert_eq!(cache.penalties(), model.penalties(&new_comms).as_slice());
    }

    #[test]
    fn cancelled_arrival_departure_skips_the_model() {
        let model = MyrinetModel::default();
        let all = comms();
        let (mut slab, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys.clone(), all.clone());
        // a zero-size flow flashes in and out between settles
        let ghost = slab.insert(Communication::new(7u32, 8u32, 0));
        cache.note_arrival(ghost);
        cache.note_departure(ghost);
        assert!(!cache.is_valid());
        cache.refresh(&model, keys.clone(), all);
        assert!(cache.is_valid());
        assert_eq!(cache.stats().model_queries, 1, "no new model query");
        assert_eq!(cache.stats().cancelled_refreshes, 1);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn reuse_counter_tracks_cache_hits() {
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        cache.refresh(&MyrinetModel::default(), keys, comms());
        cache.note_reuse();
        cache.note_reuse();
        assert_eq!(cache.stats().reuses, 2);
        assert_eq!(cache.stats().model_queries, 1);
    }

    #[test]
    fn refreshed_penalties_match_direct_queries() {
        let model = MyrinetModel::default();
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys, comms());
        assert_eq!(cache.penalties(), model.penalties(&comms()).as_slice());
    }

    #[test]
    fn rebuild_invalidation_forces_a_full_query() {
        let model = MyrinetModel::default();
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys.clone(), comms());
        cache.invalidate_rebuild();
        cache.refresh(&model, keys, comms());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(cache.stats().delta_queries, 0);
        assert_eq!(cache.stats().cancelled_refreshes, 0);
    }

    #[test]
    fn myrinet_budget_fallback_is_visible_and_exact() {
        // A conflict component too big for the Moon–Moser budget: the
        // model must refuse penalty reuse (the previous values may be the
        // max-conflict approximation), the refusal must show up in
        // `CacheStats::budget_fallbacks`, and the answers must still match
        // the full-recompute oracle exactly.
        let model = MyrinetModel::with_budget(2);
        // One 4-flow component out of node 0 (Moon–Moser bound 4 > 2).
        let all: Vec<Communication> = (0..5)
            .map(|i| Communication::new(0u32, 1 + i as u32, 100))
            .collect();
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys[..4].to_vec(), all[..4].to_vec());
        let first = cache.stats();
        assert_eq!(
            first.budget_fallbacks, 1,
            "the first settle's enumeration blows the budget: {first:?}"
        );
        assert_eq!(cache.penalties(), model.penalties(&all[..4]).as_slice());
        // An arrival offers a delta, but certification refuses the patch.
        cache.note_arrival(keys[4]);
        cache.refresh(&model, keys.clone(), all.clone());
        let stats = cache.stats();
        assert_eq!(stats.delta_queries, 1, "delta offered: {stats:?}");
        assert_eq!(stats.patched_queries, 0, "but not patched: {stats:?}");
        assert_eq!(stats.budget_fallbacks, 2, "refusal counted: {stats:?}");
        assert_eq!(stats.scratch_rebuilds, 2, "every refusal rebuilds");
        assert_eq!(cache.penalties(), model.penalties(&all).as_slice());
        // Within budget, nothing of the sort fires: a fresh cache over the
        // default budget patches the same workload.
        let exact = MyrinetModel::default();
        let mut cache = PenaltyCache::new();
        cache.refresh(&exact, keys[..4].to_vec(), all[..4].to_vec());
        cache.note_arrival(keys[4]);
        cache.refresh(&exact, keys.clone(), all.clone());
        let stats = cache.stats();
        assert_eq!(stats.budget_fallbacks, 0, "{stats:?}");
        assert_eq!(stats.patched_queries, 1, "{stats:?}");
        assert_eq!(cache.penalties(), exact.penalties(&all).as_slice());
    }

    #[test]
    fn staged_active_merges_pending_changes_in_slot_order() {
        let model = MyrinetModel::default();
        let all: Vec<Communication> = (0..4)
            .map(|i| Communication::new(i as u32, 4u32, 100))
            .collect();
        let (mut slab, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        let mut staged = Vec::new();
        assert!(
            !cache.staged_active(&mut staged),
            "no settled population yet"
        );
        cache.refresh(&model, keys.clone(), all.clone());
        // flow 1 departs and its slot is re-used by a new arrival: the
        // arrival must appear at the re-used slot's position, not at the
        // end
        cache.note_departure(keys[1]);
        slab.remove(keys[1]);
        let reused = slab.insert(Communication::new(7u32, 8u32, 50));
        assert_eq!(reused.slot_index(), keys[1].slot_index());
        cache.note_arrival(reused);
        assert!(cache.staged_active(&mut staged));
        assert_eq!(staged, vec![keys[0], reused, keys[2], keys[3]]);
        // a forced rebuild disables staging until the next settle
        cache.invalidate_rebuild();
        assert!(!cache.staged_active(&mut staged));
    }

    #[test]
    fn take_affected_reports_patch_scope_and_resets_to_all() {
        let model = MyrinetModel::default();
        let mut all = comms();
        all.push(Communication::new(3u32, 4u32, 50));
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys[..2].to_vec(), all[..2].to_vec());
        assert_eq!(cache.take_affected(), AffectedSet::All, "first settle");
        // the disjoint arrival only re-evaluates itself
        cache.note_arrival(keys[2]);
        cache.refresh(&model, keys.clone(), all.clone());
        assert_eq!(cache.take_affected(), AffectedSet::Positions(vec![2]));
        assert_eq!(cache.take_affected(), AffectedSet::All, "consumed");
        // a cancelled refresh means nobody moved
        let ghost_arrive_and_depart = keys[2];
        cache.note_arrival(ghost_arrive_and_depart);
        cache.note_departure(ghost_arrive_and_depart);
        cache.refresh(&model, keys.clone(), all.clone());
        assert_eq!(
            cache.take_affected(),
            AffectedSet::Positions(Vec::new()),
            "cancelled refresh affects nobody"
        );
    }

    #[test]
    fn stats_expose_rebuild_query_count() {
        let stats = CacheStats {
            model_queries: 7,
            delta_queries: 5,
            ..CacheStats::default()
        };
        assert_eq!(stats.rebuild_queries(), 2);
    }
}
