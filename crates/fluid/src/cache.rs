//! Incremental penalty cache for the fluid engine.
//!
//! Penalties only change when the *contending population* changes — a
//! transfer arrives, a latency gate opens, or a transfer completes. Pure
//! time advances (including every [`crate::FluidNetwork::next_event_time`]
//! probe between events) leave them untouched. The seed implementation
//! re-queried the model on every solver iteration anyway; this cache makes
//! the query-on-change policy explicit, tracks *how* the population
//! changed since the last query, and hands that [`PopulationDelta`] to
//! [`PenaltyModel::penalties_after_change`] so models can patch rather
//! than recompute.

use netbw_core::{Penalty, PenaltyModel, PopulationDelta};
use netbw_graph::Communication;

/// Counters describing how well query-on-change is working.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Model evaluations performed (the expensive operation).
    pub model_queries: u64,
    /// Times a settled population was served from the cache.
    pub reuses: u64,
    /// Population changes observed (arrivals, gate openings, departures).
    pub invalidations: u64,
}

/// Cached penalties for the currently contending population.
///
/// Owned by [`crate::FluidNetwork`]; `active` holds indices into the
/// network's slot table, `penalties` is aligned with it.
#[derive(Debug, Default)]
pub struct PenaltyCache {
    active: Vec<usize>,
    comms: Vec<Communication>,
    penalties: Vec<Penalty>,
    valid: bool,
    settled_once: bool,
    pending: Option<PopulationDelta>,
    stats: CacheStats,
}

impl PenaltyCache {
    /// An empty, invalid cache (first use always queries the model).
    pub fn new() -> Self {
        PenaltyCache::default()
    }

    /// Whether the cached penalties still describe the population.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Slot indices of the contending population (valid caches only).
    pub fn active(&self) -> &[usize] {
        debug_assert!(self.valid, "reading an invalidated penalty cache");
        &self.active
    }

    /// Penalties aligned with [`Self::active`] (valid caches only).
    pub fn penalties(&self) -> &[Penalty] {
        debug_assert!(self.valid, "reading an invalidated penalty cache");
        &self.penalties
    }

    /// Usage counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Marks the population as changed; folds `delta` into any change
    /// already pending (mixed kinds degrade to `Rebuilt`).
    pub fn invalidate(&mut self, delta: PopulationDelta) {
        self.stats.invalidations += 1;
        self.valid = false;
        self.pending = Some(match self.pending.take() {
            Some(pending) => pending.merge(delta),
            None => delta,
        });
    }

    /// Records a served-from-cache settle.
    pub fn note_reuse(&mut self) {
        debug_assert!(self.valid);
        self.stats.reuses += 1;
    }

    /// Re-queries `model` for the new population and revalidates. The
    /// accumulated delta and the previously settled population (with its
    /// penalties) are forwarded to the model's batch-delta entry point so
    /// stateless models can patch; `comms` must be aligned with `active`.
    pub fn refresh<M: PenaltyModel>(
        &mut self,
        model: &M,
        active: Vec<usize>,
        comms: Vec<Communication>,
    ) {
        debug_assert_eq!(active.len(), comms.len());
        let delta = self.pending.take().unwrap_or(PopulationDelta::Rebuilt);
        let previous = self
            .settled_once
            .then_some((self.comms.as_slice(), self.penalties.as_slice()));
        self.penalties = model.penalties_after_change(&comms, delta, previous);
        debug_assert_eq!(self.penalties.len(), comms.len());
        self.active = active;
        self.comms = comms;
        self.valid = true;
        self.settled_once = true;
        self.stats.model_queries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::MyrinetModel;

    fn comms() -> Vec<Communication> {
        vec![
            Communication::new(0u32, 1u32, 100),
            Communication::new(0u32, 2u32, 100),
        ]
    }

    #[test]
    fn starts_invalid_and_validates_on_refresh() {
        let mut cache = PenaltyCache::new();
        assert!(!cache.is_valid());
        cache.refresh(&MyrinetModel::default(), vec![0, 1], comms());
        assert!(cache.is_valid());
        assert_eq!(cache.active(), &[0, 1]);
        assert_eq!(cache.penalties().len(), 2);
        assert_eq!(cache.stats().model_queries, 1);
    }

    #[test]
    fn invalidation_accumulates_deltas() {
        use PopulationDelta::*;
        let mut cache = PenaltyCache::new();
        cache.refresh(&MyrinetModel::default(), vec![0, 1], comms());
        cache.invalidate(Arrived(1));
        cache.invalidate(Arrived(2));
        assert!(!cache.is_valid());
        cache.refresh(&MyrinetModel::default(), vec![0, 1], comms());
        // a mixed sequence degrades to Rebuilt but still refreshes fine
        cache.invalidate(Arrived(1));
        cache.invalidate(Departed(1));
        cache.refresh(&MyrinetModel::default(), vec![0, 1], comms());
        assert_eq!(cache.stats().model_queries, 3);
        assert_eq!(cache.stats().invalidations, 4);
    }

    #[test]
    fn reuse_counter_tracks_cache_hits() {
        let mut cache = PenaltyCache::new();
        cache.refresh(&MyrinetModel::default(), vec![0, 1], comms());
        cache.note_reuse();
        cache.note_reuse();
        assert_eq!(cache.stats().reuses, 2);
        assert_eq!(cache.stats().model_queries, 1);
    }

    #[test]
    fn refreshed_penalties_match_direct_queries() {
        let model = MyrinetModel::default();
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, vec![0, 1], comms());
        assert_eq!(cache.penalties(), model.penalties(&comms()).as_slice());
    }
}
