//! Incremental penalty cache for the fluid engine.
//!
//! Penalties only change when the *contending population* changes — a
//! transfer arrives, a latency gate opens, or a transfer completes. Pure
//! time advances (including every [`crate::FluidNetwork::next_event_time`]
//! probe between events) leave them untouched. The cache makes that
//! query-on-change policy explicit and, since the slab refactor, also
//! tracks *which* flows changed: population members are identified by
//! stable [`FlowKey`]s, pending arrivals and departures are accumulated as
//! key sets, and [`PenaltyCache::refresh`] turns them into a positional
//! [`PopulationDelta`] that lets
//! [`PenaltyModel::penalties_after_change`] patch only the affected part
//! of the fabric instead of recomputing all of it.
//!
//! Two bookkeeping niceties fall out of stable keys:
//!
//! * a flow that arrives *and* departs between two settles (a zero-size
//!   transfer) cancels out — the population did not change, so the next
//!   settle revalidates without querying the model at all;
//! * completions no longer poison the cache: the surviving keys (and their
//!   relative order) are untouched, so a completion batch yields a clean
//!   `Departed` delta instead of a rebuild.

use crate::slab::FlowKey;
use netbw_core::{Penalty, PenaltyModel, PopulationDelta};
use netbw_graph::Communication;
use std::collections::HashSet;

/// Counters describing how well query-on-change is working.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Model evaluations performed (the expensive operation).
    pub model_queries: u64,
    /// Times a settled population was served from the cache.
    pub reuses: u64,
    /// Population changes observed (arrivals, gate openings, departures).
    pub invalidations: u64,
    /// Model queries that carried a positional delta (`Arrived` or
    /// `Departed`), giving the model the chance to patch in O(affected).
    /// The model may still recompute in full if it cannot honour the hint
    /// (failed alignment, or Myrinet's budget certification refusing
    /// reuse) — this counts deltas *offered*, not patches *performed*;
    /// model-side reuse is pinned by the poison unit tests in core.
    pub delta_queries: u64,
    /// Settles where pending changes cancelled out (arrive + depart
    /// between settles): revalidated without touching the model.
    pub cancelled_refreshes: u64,
}

impl CacheStats {
    /// Model queries that had to rebuild from scratch (first query, mixed
    /// arrival/departure batches, forced full recomputes).
    pub fn rebuild_queries(&self) -> u64 {
        self.model_queries - self.delta_queries
    }
}

/// Cached penalties for the currently contending population.
///
/// Owned by [`crate::FluidNetwork`]; `active` holds the stable slab keys
/// of the contending flows, `penalties` is aligned with it.
#[derive(Debug, Default)]
pub struct PenaltyCache {
    active: Vec<FlowKey>,
    comms: Vec<Communication>,
    penalties: Vec<Penalty>,
    valid: bool,
    settled_once: bool,
    pending_arrivals: HashSet<FlowKey>,
    pending_departures: HashSet<FlowKey>,
    pending_rebuild: bool,
    stats: CacheStats,
}

impl PenaltyCache {
    /// An empty, invalid cache (first use always queries the model).
    pub fn new() -> Self {
        PenaltyCache::default()
    }

    /// Whether the cached penalties still describe the population.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Stable keys of the contending population (valid caches only).
    pub fn active(&self) -> &[FlowKey] {
        debug_assert!(self.valid, "reading an invalidated penalty cache");
        &self.active
    }

    /// Penalties aligned with [`Self::active`] (valid caches only).
    pub fn penalties(&self) -> &[Penalty] {
        debug_assert!(self.valid, "reading an invalidated penalty cache");
        &self.penalties
    }

    /// Usage counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Records that the flow `key` joined the contending population (a new
    /// transfer, or a latency gate opening).
    pub fn note_arrival(&mut self, key: FlowKey) {
        self.stats.invalidations += 1;
        self.valid = false;
        self.pending_arrivals.insert(key);
    }

    /// Records that the flow `key` left the contending population. An
    /// arrival that never reached a settle cancels out instead.
    pub fn note_departure(&mut self, key: FlowKey) {
        self.stats.invalidations += 1;
        self.valid = false;
        if !self.pending_arrivals.remove(&key) {
            self.pending_departures.insert(key);
        }
    }

    /// Marks the population as changed in a way no positional delta
    /// describes: the next refresh issues a full rebuild query. Used by
    /// [`crate::FluidNetwork::with_full_recompute`] and as the defensive
    /// answer to any bookkeeping surprise.
    pub fn invalidate_rebuild(&mut self) {
        self.stats.invalidations += 1;
        self.valid = false;
        self.pending_rebuild = true;
    }

    /// Records a served-from-cache settle.
    pub fn note_reuse(&mut self) {
        debug_assert!(self.valid);
        self.stats.reuses += 1;
    }

    /// Derives the [`PopulationDelta`] for a refresh against `new_active`,
    /// consuming the pending change sets. Falls back to
    /// [`PopulationDelta::Rebuilt`] whenever the pending sets do not
    /// cleanly explain the transition (mixed batches, first settle, or any
    /// key that fails to line up).
    fn take_delta(&mut self, new_active: &[FlowKey]) -> PopulationDelta {
        let rebuild = std::mem::take(&mut self.pending_rebuild);
        let arrivals = std::mem::take(&mut self.pending_arrivals);
        let departures = std::mem::take(&mut self.pending_departures);
        if rebuild || !self.settled_once || (!arrivals.is_empty() && !departures.is_empty()) {
            return PopulationDelta::Rebuilt;
        }
        if departures.is_empty() {
            // Arrivals only (possibly none, if everything cancelled out).
            let idx: Vec<usize> = new_active
                .iter()
                .enumerate()
                .filter(|(_, k)| arrivals.contains(k))
                .map(|(i, _)| i)
                .collect();
            if idx.len() == arrivals.len() && new_active.len() == self.active.len() + idx.len() {
                PopulationDelta::Arrived(idx)
            } else {
                PopulationDelta::Rebuilt
            }
        } else {
            let idx: Vec<usize> = self
                .active
                .iter()
                .enumerate()
                .filter(|(_, k)| departures.contains(k))
                .map(|(i, _)| i)
                .collect();
            if idx.len() == departures.len() && new_active.len() + idx.len() == self.active.len() {
                PopulationDelta::Departed(idx)
            } else {
                PopulationDelta::Rebuilt
            }
        }
    }

    /// Re-queries `model` for the new population and revalidates. The
    /// pending change sets are distilled into a positional
    /// [`PopulationDelta`], and the previously settled population (with
    /// its penalties) is forwarded to the model's batch-delta entry point
    /// so stateless models can patch; `comms` must be aligned with
    /// `active`. When the pending changes cancel out exactly, the model is
    /// not queried at all.
    pub fn refresh<M: PenaltyModel>(
        &mut self,
        model: &M,
        active: Vec<FlowKey>,
        comms: Vec<Communication>,
    ) {
        debug_assert_eq!(active.len(), comms.len());
        let delta = self.take_delta(&active);
        if delta.is_empty() && active == self.active {
            // Nothing actually changed (e.g. a zero-size transfer arrived
            // and completed between settles): revalidate for free.
            self.stats.cancelled_refreshes += 1;
            self.valid = true;
            return;
        }
        let incremental = !matches!(delta, PopulationDelta::Rebuilt);
        let previous = self
            .settled_once
            .then_some((self.comms.as_slice(), self.penalties.as_slice()));
        self.penalties = model.penalties_after_change(&comms, delta, previous);
        debug_assert_eq!(self.penalties.len(), comms.len());
        self.active = active;
        self.comms = comms;
        self.valid = true;
        self.settled_once = true;
        self.stats.model_queries += 1;
        if incremental {
            self.stats.delta_queries += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::Slab;
    use netbw_core::MyrinetModel;

    /// Puts `comms` into a slab, returning aligned keys.
    fn keyed(comms: &[Communication]) -> (Slab<Communication>, Vec<FlowKey>) {
        let mut slab = Slab::new();
        let keys = comms.iter().map(|&c| slab.insert(c)).collect();
        (slab, keys)
    }

    fn comms() -> Vec<Communication> {
        vec![
            Communication::new(0u32, 1u32, 100),
            Communication::new(0u32, 2u32, 100),
        ]
    }

    #[test]
    fn starts_invalid_and_validates_on_refresh() {
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        assert!(!cache.is_valid());
        cache.refresh(&MyrinetModel::default(), keys.clone(), comms());
        assert!(cache.is_valid());
        assert_eq!(cache.active(), keys.as_slice());
        assert_eq!(cache.penalties().len(), 2);
        assert_eq!(cache.stats().model_queries, 1);
        // the first settle has no previous population to patch from
        assert_eq!(cache.stats().delta_queries, 0);
    }

    #[test]
    fn arrival_refresh_is_incremental() {
        let model = MyrinetModel::default();
        let mut all = comms();
        all.push(Communication::new(3u32, 4u32, 50));
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys[..2].to_vec(), all[..2].to_vec());
        cache.note_arrival(keys[2]);
        assert!(!cache.is_valid());
        cache.refresh(&model, keys.clone(), all.clone());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(cache.stats().delta_queries, 1);
        assert_eq!(cache.penalties(), model.penalties(&all).as_slice());
    }

    #[test]
    fn departure_refresh_is_incremental() {
        let model = MyrinetModel::default();
        let all = comms();
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys.clone(), all.clone());
        cache.note_departure(keys[0]);
        cache.refresh(&model, keys[1..].to_vec(), all[1..].to_vec());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(cache.stats().delta_queries, 1);
        assert_eq!(cache.penalties(), model.penalties(&all[1..]).as_slice());
    }

    #[test]
    fn mixed_batches_degrade_to_rebuild() {
        let model = MyrinetModel::default();
        let mut all = comms();
        all.push(Communication::new(3u32, 4u32, 50));
        let (_, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys[..2].to_vec(), all[..2].to_vec());
        cache.note_departure(keys[1]);
        cache.note_arrival(keys[2]);
        let new_active = vec![keys[0], keys[2]];
        let new_comms = vec![all[0], all[2]];
        cache.refresh(&model, new_active, new_comms.clone());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(cache.stats().delta_queries, 0, "mixed => rebuild");
        assert_eq!(cache.penalties(), model.penalties(&new_comms).as_slice());
    }

    #[test]
    fn cancelled_arrival_departure_skips_the_model() {
        let model = MyrinetModel::default();
        let all = comms();
        let (mut slab, keys) = keyed(&all);
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys.clone(), all.clone());
        // a zero-size flow flashes in and out between settles
        let ghost = slab.insert(Communication::new(7u32, 8u32, 0));
        cache.note_arrival(ghost);
        cache.note_departure(ghost);
        assert!(!cache.is_valid());
        cache.refresh(&model, keys.clone(), all);
        assert!(cache.is_valid());
        assert_eq!(cache.stats().model_queries, 1, "no new model query");
        assert_eq!(cache.stats().cancelled_refreshes, 1);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn reuse_counter_tracks_cache_hits() {
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        cache.refresh(&MyrinetModel::default(), keys, comms());
        cache.note_reuse();
        cache.note_reuse();
        assert_eq!(cache.stats().reuses, 2);
        assert_eq!(cache.stats().model_queries, 1);
    }

    #[test]
    fn refreshed_penalties_match_direct_queries() {
        let model = MyrinetModel::default();
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys, comms());
        assert_eq!(cache.penalties(), model.penalties(&comms()).as_slice());
    }

    #[test]
    fn rebuild_invalidation_forces_a_full_query() {
        let model = MyrinetModel::default();
        let (_, keys) = keyed(&comms());
        let mut cache = PenaltyCache::new();
        cache.refresh(&model, keys.clone(), comms());
        cache.invalidate_rebuild();
        cache.refresh(&model, keys, comms());
        assert_eq!(cache.stats().model_queries, 2);
        assert_eq!(cache.stats().delta_queries, 0);
        assert_eq!(cache.stats().cancelled_refreshes, 0);
    }

    #[test]
    fn stats_expose_rebuild_query_count() {
        let stats = CacheStats {
            model_queries: 7,
            delta_queries: 5,
            ..CacheStats::default()
        };
        assert_eq!(stats.rebuild_queries(), 2);
    }
}
