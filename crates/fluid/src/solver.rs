//! Batch solver for whole communication schemes (the paper's
//! synchronized-start methodology, §IV.B).
//!
//! A thin layer over the incremental [`FluidNetwork`]: every transfer is
//! keyed by its input index ([`TransferKey`]) and inserted before time
//! advances, so the batch path inherits the slab-backed engine's
//! incremental penalty patching for free — each completion batch reaches
//! the model as a positional `Departed` delta.

use crate::network::{FluidNetwork, TransferKey};
use crate::params::NetworkParams;
use netbw_core::PenaltyModel;
use netbw_graph::{CommGraph, Communication};

/// One piecewise-constant penalty segment of a transfer's lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Segment start (absolute time).
    pub t0: f64,
    /// Segment end (absolute time).
    pub t1: f64,
    /// Penalty in force during the segment.
    pub penalty: f64,
}

impl Phase {
    /// Segment duration.
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// Solved timing of one communication.
#[derive(Debug, Clone)]
pub struct TransferResult {
    /// Start time (as submitted).
    pub start: f64,
    /// Completion time (absolute).
    pub completion: f64,
    /// Penalty history (always recorded by the batch solver).
    pub phases: Vec<Phase>,
}

impl TransferResult {
    /// Total elapsed time, the paper's `Ti`.
    pub fn elapsed(&self) -> f64 {
        self.completion - self.start
    }

    /// The *effective* penalty over the whole transfer:
    /// `elapsed / Tref` — comparable to the paper's measured `Pi = Ti/Tref`.
    pub fn effective_penalty(&self, params: &NetworkParams, size: u64) -> f64 {
        let tref = params.reference_time(size);
        if tref <= 0.0 {
            1.0
        } else {
            self.elapsed() / tref
        }
    }
}

/// Batch fluid solver: all communications of a scheme start at time zero
/// (the paper's synchronized-start methodology, §IV.B).
///
/// The solver owns one [`FluidNetwork`] and *reuses* it across solves
/// (each solve starts with [`FluidNetwork::reset`]): the slab storage, the
/// penalty cache and the model's scratch state stay allocated, so sweeping
/// a battery of hundreds of schemes through one solver pays construction
/// once. Reset networks answer bit-for-bit like fresh ones, which the
/// sweep equivalence tests in `netbw-eval` pin.
pub struct FluidSolver<M> {
    net: FluidNetwork<M>,
}

impl<M: PenaltyModel> FluidSolver<M> {
    /// Creates a solver from a model and base network parameters.
    pub fn new(model: M, params: NetworkParams) -> Self {
        FluidSolver {
            net: FluidNetwork::new(model, params).with_phase_recording(),
        }
    }

    /// Switches the underlying network to the conflict-component-sharded
    /// engine ([`FluidNetwork::with_sharded`]); results are bit-for-bit
    /// unchanged.
    pub fn with_sharded(mut self) -> Self {
        self.net = self.net.with_sharded();
        self
    }

    /// The network parameters in use.
    pub fn params(&self) -> &NetworkParams {
        self.net.params()
    }

    /// The model in use.
    pub fn model(&self) -> &M {
        self.net.model()
    }

    /// Solves a scheme with all communications starting at time 0. The
    /// result vector is aligned with `graph.comms()`.
    pub fn solve(&mut self, graph: &CommGraph) -> Vec<TransferResult> {
        self.solve_with_starts(graph.comms(), &vec![0.0; graph.len()])
    }

    /// Solves a set of communications with explicit start times.
    pub fn solve_with_starts(
        &mut self,
        comms: &[Communication],
        starts: &[f64],
    ) -> Vec<TransferResult> {
        assert_eq!(
            comms.len(),
            starts.len(),
            "one start time per communication"
        );
        self.net.reset();
        // Insertion must respect time order for the network's invariant.
        let mut order: Vec<usize> = (0..comms.len()).collect();
        order.sort_by(|&a, &b| starts[a].total_cmp(&starts[b]));
        // FluidNetwork disallows adding after time has advanced past the
        // start; since nothing advances during adds, any order works, but
        // keep it sorted for clarity.
        for &i in &order {
            self.net.add(i as TransferKey, comms[i], starts[i]);
        }
        let done = self.net.run_to_completion();
        let mut out: Vec<Option<TransferResult>> = vec![None; comms.len()];
        for d in done {
            let i = d.key as usize;
            out[i] = Some(TransferResult {
                start: starts[i],
                completion: d.completion,
                phases: d.phases,
            });
        }
        out.into_iter()
            .map(|r| r.expect("every transfer completes"))
            .collect()
    }

    /// Per-communication effective penalties of a scheme solved from a
    /// synchronized start.
    pub fn effective_penalties(&mut self, graph: &CommGraph) -> Vec<f64> {
        let results = self.solve(graph);
        results
            .iter()
            .zip(graph.comms())
            .map(|(r, c)| r.effective_penalty(self.net.params(), c.size))
            .collect()
    }
}

impl<M: PenaltyModel + Clone> FluidSolver<M> {
    /// An independent deep copy of the solver and its warm network state
    /// (see [`FluidNetwork::fork`]): the fork solves bit-for-bit like the
    /// original while reusing the original's warm scratch allocations.
    pub fn fork(&self) -> Self {
        FluidSolver {
            net: self.net.fork(),
        }
    }

    /// [`Self::fork`] into an existing solver, reusing its network's
    /// allocations (see [`FluidNetwork::fork_into`]).
    pub fn fork_into(&self, target: &mut Self) {
        self.net.fork_into(&mut target.net);
    }
}

/// One-shot convenience: completion times of a scheme under `model`,
/// starting synchronized at time 0.
pub fn solve_scheme<M: PenaltyModel>(
    model: M,
    params: NetworkParams,
    graph: &CommGraph,
) -> Vec<TransferResult> {
    FluidSolver::new(model, params).solve(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::{GigabitEthernetModel, MyrinetModel};
    use netbw_graph::schemes;

    /// Paper Fig. 7, MK1 predicted column (tref = 0.0354 s): the solver
    /// must reproduce a,b = 2.5·tref; c,g = 2·tref; d,f = 1.5·tref; e = tref.
    #[test]
    fn mk1_fluid_times_match_paper() {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk1 = schemes::mk1().with_uniform_size(1000);
        let res = solver.solve(&mk1);
        let by_label: std::collections::HashMap<&str, f64> = mk1
            .labels()
            .iter()
            .map(String::as_str)
            .zip(res.iter().map(|r| r.completion))
            .collect();
        let tref = 1000.0;
        assert!((by_label["a"] - 2.5 * tref).abs() < 1e-6);
        assert!((by_label["b"] - 2.5 * tref).abs() < 1e-6);
        assert!((by_label["c"] - 2.0 * tref).abs() < 1e-6);
        assert!((by_label["g"] - 2.0 * tref).abs() < 1e-6);
        assert!((by_label["d"] - 1.5 * tref).abs() < 1e-6);
        assert!((by_label["f"] - 1.5 * tref).abs() < 1e-6);
        assert!((by_label["e"] - 1.0 * tref).abs() < 1e-6);
    }

    /// Paper Fig. 7, MK2 predicted column (tref = 0.0354 s):
    /// a–d = 0.1758, e = 0.0531, f,g = 0.0844, h,i = 0.1003, j = 0.0726.
    #[test]
    fn mk2_fluid_times_match_paper() {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk2 = schemes::mk2().with_uniform_size(10_000);
        let res = solver.solve(&mk2);
        let tref = 10_000.0;
        let want = [
            ("a", 4.9667), // = 0.1758 / 0.0354
            ("b", 4.9667),
            ("c", 4.9667),
            ("d", 4.9667),
            ("e", 1.5),
            ("f", 2.3833),
            ("g", 2.3833),
            ("h", 2.8333),
            ("i", 2.8333),
            ("j", 2.05),
        ];
        for (label, mult) in want {
            let id = mk2.by_label(label).unwrap();
            let got = res[id.idx()].completion / tref;
            assert!(
                (got - mult).abs() < 0.01,
                "{label}: got {got:.4}, want {mult:.4}"
            );
        }
    }

    #[test]
    fn gige_constant_penalty_schemes_scale_linearly() {
        // outgoing ladder: symmetric, penalties constant until the common
        // finish → completion = k·β·tref.
        let mut solver = FluidSolver::new(GigabitEthernetModel::default(), NetworkParams::unit());
        for k in 2..=4 {
            let g = schemes::outgoing_ladder(k).with_uniform_size(100);
            let res = solver.solve(&g);
            for r in &res {
                assert!(
                    (r.completion - k as f64 * 0.75 * 100.0).abs() < 1e-6,
                    "k = {k}: {}",
                    r.completion
                );
            }
        }
    }

    #[test]
    fn effective_penalties_match_fig6_for_symmetric_cases() {
        // e in MK1 never shares: effective penalty exactly 1.
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk1 = schemes::mk1().with_uniform_size(500);
        let p = solver.effective_penalties(&mk1);
        let e = mk1.by_label("e").unwrap();
        assert!((p[e.idx()] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_shifts_but_does_not_contend() {
        let params = NetworkParams::new(1.0, 5.0);
        let mut solver = FluidSolver::new(MyrinetModel::default(), params);
        let g = schemes::single().with_uniform_size(100);
        let res = solver.solve(&g);
        assert!((res[0].completion - 105.0).abs() < 1e-9);
        // effective penalty 1: elapsed / tref = 105/105
        assert!((res[0].effective_penalty(&params, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn staggered_starts_are_respected() {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let comms = vec![
            netbw_graph::Communication::new(0u32, 1u32, 100),
            netbw_graph::Communication::new(0u32, 2u32, 100),
        ];
        let res = solver.solve_with_starts(&comms, &[0.0, 50.0]);
        assert!((res[0].completion - 150.0).abs() < 1e-9);
        assert!((res[1].completion - 200.0).abs() < 1e-9);
        assert_eq!(res[1].start, 50.0);
        assert!((res[1].elapsed() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn phases_partition_the_transfer_lifetime() {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mk1 = schemes::mk1().with_uniform_size(300);
        for r in solver.solve(&mk1) {
            assert!(!r.phases.is_empty());
            assert!((r.phases.first().unwrap().t0 - r.start).abs() < 1e-9);
            assert!((r.phases.last().unwrap().t1 - r.completion).abs() < 1e-9);
            for w in r.phases.windows(2) {
                assert!((w[0].t1 - w[1].t0).abs() < 1e-9, "gap between phases");
            }
        }
    }

    #[test]
    fn reused_solver_matches_fresh_solvers_bit_for_bit() {
        // One solver swept across a battery must answer exactly like a
        // fresh solver per scheme: the reset path may not leak any state
        // (slab keys, cache validity, model scratch) between solves.
        let mut reused = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let battery = [
            schemes::mk1().with_uniform_size(300),
            schemes::fig5().with_uniform_size(777),
            schemes::mk2().with_uniform_size(10_000),
            schemes::mk1().with_uniform_size(300),
        ];
        for g in &battery {
            let mut fresh = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
            let a = reused.solve(g);
            let b = fresh.solve(g);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.completion, y.completion, "{}", g.name());
                assert_eq!(x.phases, y.phases, "{}", g.name());
            }
        }
    }

    #[test]
    fn sharded_solver_matches_default_bit_for_bit() {
        let mut plain = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        let mut sharded =
            FluidSolver::new(MyrinetModel::default(), NetworkParams::unit()).with_sharded();
        let battery = [
            schemes::mk1().with_uniform_size(300),
            schemes::fig5().with_uniform_size(777),
            schemes::mk2().with_uniform_size(10_000),
        ];
        for g in &battery {
            let a = plain.solve(g);
            let b = sharded.solve(g);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    x.completion.to_bits(),
                    y.completion.to_bits(),
                    "{}",
                    g.name()
                );
                assert_eq!(x.phases, y.phases, "{}", g.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "one start time per communication")]
    fn start_length_mismatch_panics() {
        let mut solver = FluidSolver::new(MyrinetModel::default(), NetworkParams::unit());
        solver.solve_with_starts(&[netbw_graph::Communication::new(0u32, 1u32, 1)], &[]);
    }
}
