//! Progressive (fluid) bandwidth-sharing solver — the machinery behind the
//! paper's predicted times (§IV.B methodology, Figs. 4 and 7 results).
//!
//! The penalty models of `netbw-core` are *instantaneous*: they describe how
//! the network divides bandwidth among the communications in flight right
//! now. To predict completion *times* the simulator integrates those rates
//! over time: as soon as one communication finishes, the conflict structure
//! changes and every remaining penalty is re-evaluated. The result is a
//! piecewise-constant rate trajectory per communication.
//!
//! This is exactly how the paper's predicted times arise. For MK1 (Fig. 7),
//! communications `a, b` start under penalty 3 (the `d–a–b–f` conflict
//! path), and drop to penalty 2 once `d` and `f` complete at `1.5·tref`;
//! integrating gives `2.5·tref = 0.089 s` — the published value.
//!
//! Two interfaces:
//!
//! * [`solve_scheme`] / [`FluidSolver`] — batch: all communications start
//!   together (the synthetic benchmarks);
//! * [`FluidNetwork`] — incremental: transfers arrive at arbitrary times and
//!   completions are consumed as events (used by the `netbw-sim`
//!   discrete-event engine).
//!
//! # The incremental path
//!
//! Penalties only change when the contending population changes, so the
//! engine is built around three pieces:
//!
//! * [`slab`] — in-flight transfers live in a generational stable-key
//!   slab: completions never renumber survivors, so population identity
//!   survives churn;
//! * [`cache`] — the [`PenaltyCache`] settles once per population change
//!   (every `next_event_time` probe in between is served from cache),
//!   distills the pending arrivals/departures into a positional
//!   [`netbw_core::PopulationDelta`] (simultaneous batches become chained
//!   `Mixed` deltas), and owns the model's opaque per-cache scratch;
//! * `netbw-core`'s
//!   [`penalties_with_scratch`](netbw_core::PenaltyModel::penalties_with_scratch)
//!   — the models consume that delta over state they keep alive between
//!   settles (endpoint indices for GigE/InfiniBand, union–find conflict
//!   components plus a cached budget certification for Myrinet) and patch
//!   only the affected endpoints or conflict components, in O(affected)
//!   model work per event instead of a full-fabric recompute — and report
//!   back *which* positions they re-evaluated
//!   ([`netbw_core::AffectedSet`]);
//! * [`event_heap`] — the engine turns each settle's affected set into
//!   per-flow cached finish times and keeps them in a lazy min-heap
//!   ([`TimelineStats`] counts the traffic), so finding the next
//!   completion or latency-gate opening is a heap peek instead of a scan
//!   over the population: an event costs O(affected + log n) end to end.
//!
//! [`FluidNetwork::with_full_recompute`] preserves the pre-refactor
//! query-every-iteration, scan-every-event behaviour as a correctness
//! oracle (the proptests assert bitwise-equal completions);
//! [`FluidNetwork::with_linear_timeline`] keeps the incremental cache but
//! scans instead of using the heaps, isolating the timeline's contribution
//! for the benchmarks; [`FluidNetwork::with_sharded`] partitions the
//! population into conflict-component [`shard`]s — each with its own cache,
//! scratch and heaps — whose settles are independent and can be dispatched
//! onto a parallel executor ([`dispatch`]), still bit-for-bit equal to the
//! other modes because the penalty models are component-local. The
//! partition refines in both directions: bridging arrivals merge shards
//! and component-splitting departures carve them back apart, so a
//! long-lived churning population keeps its fine partition instead of
//! degrading toward one mega-shard. The one non-local model behaviour — a
//! Myrinet budget refusal degrades the whole query population — collapses
//! the partition into a single global shard the first time a shard reports
//! it, pinned to the offending component so the collapse lifts as soon as
//! that component departs; equality survives that regime too (see
//! [`shard`]).

pub mod cache;
pub mod dispatch;
pub mod event_heap;
pub mod network;
pub mod params;
pub mod shard;
pub mod slab;
pub mod solver;
pub mod timeline;

pub use cache::{CacheStats, PenaltyCache};
pub use dispatch::{SerialDispatch, SettleDispatch, SettleJob};
pub use event_heap::TimelineStats;
pub use network::{AddError, CompletedTransfer, FluidNetwork, TransferKey};
pub use params::NetworkParams;
pub use shard::ShardStats;
pub use slab::{FlowKey, Slab};
pub use solver::{solve_scheme, FluidSolver, Phase, TransferResult};
pub use timeline::{penalty_series, utilization, StepSeries};
