//! Progressive (fluid) bandwidth-sharing solver.
//!
//! The penalty models of `netbw-core` are *instantaneous*: they describe how
//! the network divides bandwidth among the communications in flight right
//! now. To predict completion *times* — the paper's Figs. 4 and 7 — the
//! simulator integrates those rates over time: as soon as one communication
//! finishes, the conflict structure changes and every remaining penalty is
//! re-evaluated. The result is a piecewise-constant rate trajectory per
//! communication.
//!
//! This is exactly how the paper's predicted times arise. For MK1 (Fig. 7),
//! communications `a, b` start under penalty 3 (the `d–a–b–f` conflict
//! path), and drop to penalty 2 once `d` and `f` complete at `1.5·tref`;
//! integrating gives `2.5·tref = 0.089 s` — the published value.
//!
//! Two interfaces:
//!
//! * [`solve_scheme`] / [`FluidSolver`] — batch: all communications start
//!   together (the synthetic benchmarks);
//! * [`FluidNetwork`] — incremental: transfers arrive at arbitrary times and
//!   completions are consumed as events (used by the `netbw-sim`
//!   discrete-event engine).

pub mod cache;
pub mod network;
pub mod params;
pub mod solver;
pub mod timeline;

pub use cache::{CacheStats, PenaltyCache};
pub use network::{CompletedTransfer, FluidNetwork, TransferKey};
pub use params::NetworkParams;
pub use solver::{solve_scheme, FluidSolver, Phase, TransferResult};
pub use timeline::{penalty_series, utilization, StepSeries};
