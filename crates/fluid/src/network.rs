//! Incremental fluid network: transfers arrive over time, completions are
//! consumed as events. This is the network backend of the `netbw-sim`
//! discrete-event engine.
//!
//! Penalties are obtained through a [`PenaltyCache`]: the model is only
//! re-queried when the contending population actually changes (arrival,
//! latency-gate opening, completion), never on pure time advances or
//! [`FluidNetwork::next_event_time`] probes. Transfers live in a
//! stable-key [`crate::slab::Slab`], so a completion batch leaves the
//! surviving flows' identities (and relative order) untouched — the cache
//! reports each change as a positional
//! [`netbw_core::PopulationDelta`] and the models patch only the affected
//! endpoints or conflict components instead of recomputing the fabric.
//!
//! Finding the *next event* is event-driven too. Each contending flow
//! carries anchored kinetics — bytes remaining at its last rate change and
//! a cached absolute finish time — and the engine re-anchors only the
//! flows the model reports as affected ([`netbw_core::AffectedSet`]),
//! pushing the new finish times into a lazy min-heap
//! ([`crate::event_heap`]; epoch stamps in the slab invalidate superseded
//! entries on pop). Latency gates sit in a second heap, populated at
//! [`FluidNetwork::add`]. A settle therefore costs O(affected + log n)
//! and an event probe is a heap peek — no per-event scan over the
//! population.
//!
//! Two ablation modes preserve the older behaviours:
//! [`FluidNetwork::with_linear_timeline`] keeps the incremental cache but
//! scans the population for the next completion/gate (the pre-heap
//! engine), and [`FluidNetwork::with_full_recompute`] additionally
//! re-queries the model on every settle (the pre-refactor engine). A
//! fourth mode, [`FluidNetwork::with_sharded`], partitions the population
//! into conflict-component shards (see [`crate::shard`]) whose settles are
//! independent and can run in parallel through a
//! [`crate::dispatch::SettleDispatch`]. All modes share the same
//! anchored-finish arithmetic, so their results are bit-for-bit identical
//! — the equivalence proptests pin the fast paths against the
//! full-recompute oracle exactly.

use crate::cache::{CacheStats, PenaltyCache};
use crate::dispatch::{SerialDispatch, SettleDispatch, SettleJob};
use crate::event_heap::{EventHeaps, TimelineStats};
use crate::params::NetworkParams;
use crate::shard::{ShardSet, ShardStats, SlotView};
use crate::slab::{FlowKey, RawSlots, Slab};
use crate::solver::Phase;
use netbw_core::{AffectedSet, Penalty, PenaltyModel};
use netbw_graph::Communication;
use std::sync::{Arc, Mutex};

/// Caller-chosen identifier for a transfer (the simulator uses its event
/// ids; the batch solver uses input indices). Distinct from the internal
/// [`FlowKey`], which names the transfer's slab slot.
pub type TransferKey = u64;

/// Why [`FluidNetwork::try_add`] refused a transfer.
///
/// [`FluidNetwork::add`] turns these into panics (its historical
/// contract); long-running callers — the `netbw-serve` what-if service,
/// where a malformed user query must not abort the process — go through
/// [`FluidNetwork::try_add`] and handle the error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddError {
    /// The start time was NaN or infinite.
    NonFiniteStart {
        /// The offending start time.
        start: f64,
    },
    /// The start time lies before the network's current time (the solver
    /// cannot rewrite history).
    StartInPast {
        /// The offending start time.
        start: f64,
        /// The network's current time.
        now: f64,
    },
}

impl std::fmt::Display for AddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AddError::NonFiniteStart { start } => {
                write!(f, "start time must be finite (got {start})")
            }
            AddError::StartInPast { start, now } => {
                write!(
                    f,
                    "transfer starts at {start} but network time is already {now}"
                )
            }
        }
    }
}

impl std::error::Error for AddError {}

/// Relative epsilon under which a transfer's remaining bytes count as zero.
const REL_EPS: f64 = 1e-9;

/// Absolute slack when comparing times (gates, targets, completions).
const TIME_EPS: f64 = 1e-15;

/// A transfer slot with anchored kinetics: between rate changes the flow
/// drains linearly, so `remaining` (bytes left *at* `anchor`) plus `rate`
/// determine its whole future — including the cached `finish` time the
/// event heap indexes. Progress is only materialized when the rate
/// actually changes (re-anchoring), never per time step, which is what
/// makes the arithmetic identical across the heap and scan engines.
#[derive(Debug, Clone)]
struct Slot {
    key: TransferKey,
    comm: Communication,
    /// Time at which the flow starts contending (start + latency).
    gate: f64,
    /// Whether the gate has opened (the flow is in the contending
    /// population from the cache's point of view).
    contending: bool,
    /// Time of the last rate change; `remaining` is measured here.
    anchor: f64,
    /// Bytes left at `anchor`.
    remaining: f64,
    /// Current drain rate (bandwidth × 1/penalty); 0 until the first
    /// settle after the gate opens.
    rate: f64,
    /// Current penalty value (recorded into phases on re-anchor).
    penalty: f64,
    /// Cached absolute finish time at the current rate; `INFINITY` until
    /// the flow is first anchored.
    finish: f64,
    eps: f64,
    phases: Vec<Phase>,
}

impl SlotView for Slot {
    fn comm(&self) -> &Communication {
        &self.comm
    }
    fn contending(&self) -> bool {
        self.contending
    }
    fn finish(&self) -> f64 {
        self.finish
    }
    fn gate(&self) -> f64 {
        self.gate
    }
}

/// A finished transfer, in completion order.
#[derive(Debug, Clone)]
pub struct CompletedTransfer {
    /// The key passed to [`FluidNetwork::add`].
    pub key: TransferKey,
    /// Completion time (absolute).
    pub completion: f64,
    /// Piecewise-constant penalty history (empty unless phase recording is
    /// enabled).
    pub phases: Vec<Phase>,
}

/// Everything that mutates during a settle or an event, behind one lock:
/// clock, slots, penalty cache, event heaps, and the reusable buffers that
/// keep the advance loop allocation-free in steady state.
struct EngineState {
    time: f64,
    slots: Slab<Slot>,
    cache: PenaltyCache,
    events: EventHeaps,
    /// Conflict-component shards (sharded mode only; empty otherwise).
    /// The sharded engine ignores the global `cache`/`events` above — each
    /// shard carries its own.
    shards: ShardSet,
    /// Staged contending population for the next refresh (recycled with
    /// the cache's previous population vector).
    staged: Vec<FlowKey>,
    /// Communications aligned with `staged` (same recycling).
    comms_buf: Vec<Communication>,
    /// Gate openings collected at the current event.
    opened: Vec<FlowKey>,
    /// Completions due at the current event.
    due: Vec<FlowKey>,
    /// Endpoint pairs of the completions at the current event, fed to the
    /// shard table's departure refinement after the batch (sharded mode).
    departed: Vec<Communication>,
}

/// A shared network under a penalty model, integrating transfer progress
/// through piecewise-constant penalty phases.
///
/// Invariants: time never goes backwards; transfers must be added at or
/// after the current time; bytes are conserved (enforced in debug builds).
pub struct FluidNetwork<M> {
    model: M,
    params: NetworkParams,
    record_phases: bool,
    full_recompute: bool,
    heap_timeline: bool,
    sharded: bool,
    /// Executor for the per-shard refreshes of a sharded settle barrier
    /// (the jobs touch disjoint shards, so any order — or any parallel
    /// schedule — yields the same bits). [`SerialDispatch`] by default.
    dispatch: Arc<dyn SettleDispatch>,
    // Mutex (uncontended in single-threaded use) because
    // `next_event_time` is `&self` (see `NetworkBackend`) but may need to
    // lazily settle after a population change — and the network must stay
    // `Sync` for thread-scoped sweeps.
    state: Mutex<EngineState>,
}

/// A flow's cached absolute finish time, clamped so it can never point
/// into the past: degenerate inputs (zero-size transfers, float drift
/// driving `remaining` slightly negative, or a NaN escaping the division)
/// all collapse to "finishes now" — the heap-era analogue of the old
/// per-step `dt.is_nan() || dt < 0.0 → dt = 0` clamp.
fn clamped_finish(now: f64, remaining: f64, rate: f64, eps: f64) -> f64 {
    let finish = if remaining <= eps {
        now
    } else {
        now + remaining / rate
    };
    // `!(finish >= now)` also catches NaN.
    if finish >= now {
        finish
    } else {
        now
    }
}

/// Core of a re-anchor: if the flow's rate changed, materializes progress
/// since the previous anchor, records the closed phase, and refreshes the
/// cached finish time — returning it so the caller can republish the heap
/// entry. Flows whose penalty is bitwise-unchanged are left untouched
/// (`None`) — their live heap entry is still exact, which is why skipping
/// the unaffected majority is safe.
fn resync_slot(
    params: &NetworkParams,
    record_phases: bool,
    now: f64,
    slot: &mut Slot,
    penalty: Penalty,
) -> Option<f64> {
    let new_rate = params.bandwidth * penalty.rate();
    if slot.rate == new_rate {
        return None;
    }
    if record_phases && slot.rate > 0.0 && now > slot.anchor {
        push_phase(&mut slot.phases, slot.anchor, now, slot.penalty);
    }
    slot.remaining -= slot.rate * (now - slot.anchor);
    slot.anchor = now;
    slot.rate = new_rate;
    slot.penalty = penalty.value();
    slot.finish = clamped_finish(now, slot.remaining, new_rate, slot.eps);
    Some(slot.finish)
}

/// Re-anchors the flow at position `i` of the settled population via
/// [`resync_slot`], and (heap mode) bumps the slot epoch and pushes the
/// new finish entry.
#[allow(clippy::too_many_arguments)]
fn resync_position(
    params: &NetworkParams,
    record_phases: bool,
    heap_timeline: bool,
    now: f64,
    slots: &mut Slab<Slot>,
    events: &mut EventHeaps,
    key: FlowKey,
    penalty: Penalty,
) {
    let slot = slots.get_mut(key).expect("settled flow lives in slab");
    let Some(finish) = resync_slot(params, record_phases, now, slot, penalty) else {
        return;
    };
    if heap_timeline {
        let epoch = slots.bump_epoch(key).expect("settled flow lives in slab");
        events.push_completion(finish, key, epoch);
    }
}

/// The parallel-barrier counterpart of [`resync_position`], re-anchoring
/// through a [`RawSlots`] view so the settle jobs of disjoint shards can
/// run concurrently. Always heap-mode.
///
/// # Safety
/// `key` must be live, and no other concurrent user of the same raw view
/// may hold it (the dirty shards' settled populations partition the slab,
/// which the barrier asserts in debug builds). The slab must be
/// structurally frozen for the view's lifetime.
unsafe fn resync_raw(
    params: &NetworkParams,
    record_phases: bool,
    now: f64,
    slots: RawSlots<Slot>,
    events: &mut EventHeaps,
    key: FlowKey,
    penalty: Penalty,
) {
    // SAFETY: forwarded from the caller's contract; the `slot` borrow ends
    // before `bump_epoch` touches the entry again.
    let slot = unsafe { slots.get_mut(key) }.expect("settled flow lives in slab");
    let Some(finish) = resync_slot(params, record_phases, now, slot, penalty) else {
        return;
    };
    let epoch = unsafe { slots.bump_epoch(key) }.expect("settled flow lives in slab");
    events.push_completion(finish, key, epoch);
}

/// Settles the penalty cache for the current population and re-anchors
/// the affected flows' kinetics. Shared by event probing and time
/// advancement; serves from cache when nothing changed.
fn settle<M: PenaltyModel>(
    model: &M,
    params: &NetworkParams,
    record_phases: bool,
    full_recompute: bool,
    heap_timeline: bool,
    st: &mut EngineState,
) {
    if !full_recompute && st.cache.is_valid() {
        st.cache.note_reuse();
        return;
    }
    let EngineState {
        time,
        slots,
        cache,
        events,
        staged,
        comms_buf,
        ..
    } = st;
    let now = *time;
    // Heap mode derives the new population from the previous one plus the
    // pending change sets — O(contending), independent of how many gated
    // transfers sit in the slab. The scan modes (and the staging fallback)
    // gather from the slab directly.
    let staged_ok = !full_recompute && heap_timeline && cache.staged_active(staged);
    if !staged_ok {
        staged.clear();
        staged.extend(slots.iter().filter(|(_, s)| s.contending).map(|(k, _)| k));
    }
    comms_buf.clear();
    comms_buf.extend(
        staged
            .iter()
            .map(|&k| slots.get(k).expect("staged flow lives in slab").comm),
    );
    let active = std::mem::take(staged);
    let comms = std::mem::take(comms_buf);
    let (mut recycled_active, mut recycled_comms) = if full_recompute {
        // Oracle mode: the pre-refactor full query, bypassing the
        // delta/scratch machinery entirely.
        cache.invalidate_rebuild();
        cache.refresh_full(model, active, comms)
    } else {
        cache.refresh(model, active, comms)
    };
    recycled_active.clear();
    recycled_comms.clear();
    *staged = recycled_active;
    *comms_buf = recycled_comms;
    if heap_timeline {
        match cache.take_affected() {
            AffectedSet::Positions(positions) => {
                for &i in &positions {
                    resync_position(
                        params,
                        record_phases,
                        true,
                        now,
                        slots,
                        events,
                        cache.active()[i],
                        cache.penalties()[i],
                    );
                }
            }
            AffectedSet::All => {
                events.stats.rescans += 1;
                for i in 0..cache.active().len() {
                    resync_position(
                        params,
                        record_phases,
                        true,
                        now,
                        slots,
                        events,
                        cache.active()[i],
                        cache.penalties()[i],
                    );
                }
            }
        }
    } else {
        // Scan modes re-anchor over the whole population every settle;
        // the per-flow rate check keeps the arithmetic (and therefore the
        // results) bitwise identical to the heap path.
        events.stats.rescans += 1;
        for i in 0..cache.active().len() {
            resync_position(
                params,
                record_phases,
                false,
                now,
                slots,
                events,
                cache.active()[i],
                cache.penalties()[i],
            );
        }
    }
}

/// The sharded settle barrier, in two parallel rounds over the dirty
/// shards with the cross-shard splice points serialized between them:
///
/// 1. **Stage + refresh** (parallel): each dirty shard derives its
///    post-change contending population — from the shard cache's pending
///    change sets when possible, falling back to a slot-ordered gather
///    over the shard's (lazily compacted) member list — and runs its
///    penalty query. The jobs own disjoint shards and read the slab
///    immutably, so any schedule yields the same bits;
/// 2. **Re-anchor** (parallel): resync the kinetics of each shard's
///    affected flows through a [`RawSlots`] view — dirty shards' settled
///    populations are disjoint slot sets (asserted in debug builds) and
///    the slab is structurally frozen for the whole barrier, so the jobs
///    never touch the same entry. The next-event republish stays serial:
///    it feeds the shared cross-shard heap.
///
/// Clean shards are never touched, so a settle costs the dirty shards'
/// O(affected) work — not O(components) — plus the dispatch overhead.
///
/// One guard sits between the rounds: if any refresh reported a model
/// budget fallback while more than one shard is live, the barrier
/// collapses the partition into a single global shard — pinned to the
/// first offending shard's component root, whose departure un-collapses
/// it — and restarts at the same instant. A budget-degraded answer
/// depends on the *whole* query population (see [`crate::shard`]), so
/// only a global query reproduces the unsharded engine's bits from that
/// settle on. Keeping the rounds separate is what makes the restart
/// exact: no flow is re-anchored before the fallback check, so the
/// global redo starts from the same pre-settle kinetics the unsharded
/// engine would.
fn settle_sharded<M: PenaltyModel>(
    model: &M,
    params: &NetworkParams,
    record_phases: bool,
    dispatch: &dyn SettleDispatch,
    st: &mut EngineState,
) {
    if st.shards.dirty.is_empty() {
        if st.shards.live_count() > 0 {
            st.shards.note_reused_settle();
        }
        return;
    }
    loop {
        if settle_sharded_barrier(model, params, record_phases, dispatch, st) {
            return;
        }
        // A budget fallback escaped a shard: the partition is gone and
        // exactly the merged shard is dirty — redo at the same instant.
    }
}

/// One attempt at the two-round barrier. Returns `false` when a budget
/// fallback forced a [`crate::shard::ShardSet::collapse_all`] — the caller
/// must rerun the barrier over the merged shard.
fn settle_sharded_barrier<M: PenaltyModel>(
    model: &M,
    params: &NetworkParams,
    record_phases: bool,
    dispatch: &dyn SettleDispatch,
    st: &mut EngineState,
) -> bool {
    let EngineState {
        time,
        slots,
        shards,
        ..
    } = st;
    let now = *time;
    let mut dirty = std::mem::take(&mut shards.dirty);
    dirty.sort_unstable();
    // Per-shard fallback counts before the queries, so the splice point
    // can identify which shard's refusal forced a collapse (its component
    // root becomes the collapse pin).
    let fallbacks_before: Vec<u64> = dirty
        .iter()
        .map(|&id| shards.shard_mut(id).cache.stats().budget_fallbacks)
        .collect();
    {
        // Round 1: stage + refresh. Jobs share the slab read-only.
        let slots = &*slots;
        let mut jobs: Vec<SettleJob<'_>> =
            shards
                .disjoint_mut(&dirty)
                .into_iter()
                .map(|sh| {
                    SettleJob::new(move || {
                        if !sh.cache.staged_active(&mut sh.staged) {
                            // Rebuild gather: compact the member list, then
                            // stage the shard's contending flows in slot order
                            // — exactly the slab scan the unsharded engine
                            // would do, restricted to this shard.
                            sh.members.retain(|&k| slots.contains(k));
                            sh.staged.clear();
                            sh.staged.extend(sh.members.iter().copied().filter(|&k| {
                                slots.get(k).expect("member lives in slab").contending
                            }));
                            sh.staged.sort_unstable_by_key(|k| k.slot_index());
                        }
                        sh.comms_buf.clear();
                        sh.comms_buf.extend(
                            sh.staged
                                .iter()
                                .map(|&k| slots.get(k).expect("staged flow lives in slab").comm),
                        );
                        let active = std::mem::take(&mut sh.staged);
                        let comms = std::mem::take(&mut sh.comms_buf);
                        let (mut recycled_active, mut recycled_comms) =
                            sh.cache.refresh(model, active, comms);
                        recycled_active.clear();
                        recycled_comms.clear();
                        sh.staged = recycled_active;
                        sh.comms_buf = recycled_comms;
                    })
                })
                .collect();
        dispatch.run_settles(&mut jobs);
    }
    if shards.live_count() > 1 {
        let offender = dirty
            .iter()
            .zip(&fallbacks_before)
            .find(|&(&id, &before)| shards.shard_mut(id).cache.stats().budget_fallbacks > before)
            .map(|(&id, _)| id);
        if let Some(offender) = offender {
            // Round 2 is skipped: the merged rebuild re-queries and
            // re-anchors everything from the same pre-settle kinetics,
            // exactly as the unsharded engine's single global settle
            // would.
            let pin = shards.shard_mut(offender).root;
            shards.collapse_all(Some(pin));
            return false;
        }
    }
    #[cfg(debug_assertions)]
    {
        // The RawSlots round below is sound only if the dirty shards'
        // settled populations name pairwise-disjoint slots.
        let mut seen = std::collections::HashSet::new();
        for &id in &dirty {
            for &k in shards.shard_mut(id).cache.active() {
                assert!(seen.insert(k), "shard populations overlap on a slot");
            }
        }
    }
    {
        // Round 2: re-anchor the affected flows of each dirty shard.
        let raw = slots.raw();
        let mut jobs: Vec<SettleJob<'_>> = shards
            .disjoint_mut(&dirty)
            .into_iter()
            .map(|sh| {
                SettleJob::new(move || {
                    match sh.cache.take_affected() {
                        AffectedSet::Positions(positions) => {
                            for &i in &positions {
                                let key = sh.cache.active()[i];
                                let penalty = sh.cache.penalties()[i];
                                // SAFETY: `key` sits in this shard's
                                // settled population, disjoint from every
                                // other job's; the slab is frozen for the
                                // whole barrier.
                                unsafe {
                                    resync_raw(
                                        params,
                                        record_phases,
                                        now,
                                        raw,
                                        &mut sh.events,
                                        key,
                                        penalty,
                                    );
                                }
                            }
                        }
                        AffectedSet::All => {
                            sh.events.stats.rescans += 1;
                            for i in 0..sh.cache.active().len() {
                                let key = sh.cache.active()[i];
                                let penalty = sh.cache.penalties()[i];
                                // SAFETY: as above.
                                unsafe {
                                    resync_raw(
                                        params,
                                        record_phases,
                                        now,
                                        raw,
                                        &mut sh.events,
                                        key,
                                        penalty,
                                    );
                                }
                            }
                        }
                    }
                    sh.dirty = false;
                })
            })
            .collect();
        dispatch.run_settles(&mut jobs);
    }
    for &id in &dirty {
        shards.refresh_next(id, slots);
    }
    debug_assert!(shards.dirty.is_empty(), "no shard dirtied mid-settle");
    dirty.clear();
    shards.dirty = dirty;
    true
}

/// The earliest cached finish among contending flows, by scanning the
/// slab — the linear-timeline/oracle counterpart of the heap peek.
fn scan_next_finish(slots: &Slab<Slot>) -> Option<f64> {
    slots
        .iter()
        .filter(|(_, s)| s.contending)
        .map(|(_, s)| s.finish)
        .min_by(f64::total_cmp)
}

/// The earliest unopened gate, by scanning the slab.
fn scan_next_gate(slots: &Slab<Slot>, now: f64) -> Option<f64> {
    slots
        .iter()
        .filter(|(_, s)| !s.contending && s.gate > now + TIME_EPS)
        .map(|(_, s)| s.gate)
        .min_by(f64::total_cmp)
}

impl<M: PenaltyModel> FluidNetwork<M> {
    /// Creates an idle network at time 0, using the event-heap timeline.
    pub fn new(model: M, params: NetworkParams) -> Self {
        FluidNetwork {
            model,
            params,
            record_phases: false,
            full_recompute: false,
            heap_timeline: true,
            sharded: false,
            dispatch: Arc::new(SerialDispatch),
            state: Mutex::new(EngineState {
                time: 0.0,
                slots: Slab::new(),
                cache: PenaltyCache::new(),
                events: EventHeaps::default(),
                shards: ShardSet::default(),
                staged: Vec::new(),
                comms_buf: Vec::new(),
                opened: Vec::new(),
                due: Vec::new(),
                departed: Vec::new(),
            }),
        }
    }

    /// Enables per-transfer penalty-phase recording (costs memory).
    pub fn with_phase_recording(mut self) -> Self {
        self.record_phases = true;
        self
    }

    /// Keeps the incremental penalty cache but finds events by scanning
    /// the population instead of through the lazy heaps — the pre-heap
    /// engine. Kept as the honest baseline for benchmarking the timeline's
    /// contribution in isolation.
    pub fn with_linear_timeline(mut self) -> Self {
        self.heap_timeline = false;
        self
    }

    /// Disables the incremental penalty cache *and* the heap timeline:
    /// the model is re-queried and the population re-scanned on every
    /// solver iteration, as the pre-refactor engine did. Slowest; kept as
    /// the equivalence oracle the proptests pin the fast paths against.
    pub fn with_full_recompute(mut self) -> Self {
        self.full_recompute = true;
        self.heap_timeline = false;
        self
    }

    /// Shards the engine by conflict component: each connected component
    /// of the shared-endpoint graph gets its own penalty cache (with its
    /// own model scratch) and event heaps, and a settle refreshes only the
    /// components an event actually touched. The penalty models are
    /// component-local, so the results are bit-for-bit identical to the
    /// other modes'; what changes is that the per-shard refreshes are
    /// independent — hand them to a parallel executor with
    /// [`Self::with_sharded_dispatch`]. Overrides any earlier timeline
    /// mode choice.
    pub fn with_sharded(mut self) -> Self {
        self.sharded = true;
        self.heap_timeline = true;
        self.full_recompute = false;
        self
    }

    /// [`Self::with_sharded`] with the dirty shards of each settle barrier
    /// dispatched through `dispatch` instead of run serially — the
    /// work-stealing executor in `netbw-eval` implements
    /// [`SettleDispatch`] for exactly this.
    pub fn with_sharded_dispatch(mut self, dispatch: Arc<dyn SettleDispatch>) -> Self {
        self.dispatch = dispatch;
        self.with_sharded()
    }

    /// [`Self::with_sharded`] with departure-driven refinement disabled:
    /// the partition only ever coarsens, as it did before shard splitting
    /// landed. Kept as the ablation baseline the split benchmarks compare
    /// against — long-lived populations degrade toward one mega-shard in
    /// this mode.
    pub fn with_sharded_merge_only(mut self) -> Self {
        self.state
            .get_mut()
            .expect("engine state lock")
            .shards
            .merge_only = true;
        self.with_sharded()
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.state.lock().expect("engine state lock").time
    }

    /// The network parameters in use.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// The model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of transfers not yet completed (including latency-gated ones).
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("engine state lock").slots.len()
    }

    /// Penalty-cache counters: model queries, cache reuses, invalidations.
    /// In sharded mode this is the aggregate over every shard cache, past
    /// and present (merged-away shards included).
    pub fn cache_stats(&self) -> CacheStats {
        let st = self.state.lock().expect("engine state lock");
        if self.sharded {
            st.shards.cache_stats()
        } else {
            st.cache.stats()
        }
    }

    /// Event-timeline counters: heap pushes, stale entries discarded,
    /// gate-heap traffic, full-population rescans. In sharded mode this is
    /// the aggregate over every shard timeline.
    pub fn timeline_stats(&self) -> TimelineStats {
        let st = self.state.lock().expect("engine state lock");
        if self.sharded {
            st.shards.timeline_stats()
        } else {
            st.events.stats
        }
    }

    /// Number of live conflict-component shards (always 0 unless built
    /// with [`Self::with_sharded`]).
    pub fn shard_count(&self) -> usize {
        self.state
            .lock()
            .expect("engine state lock")
            .shards
            .live_count()
    }

    /// Partition-shape counters: live shard count plus cumulative splits,
    /// merges, drains and budget collapses/un-collapses (all zero unless
    /// built with [`Self::with_sharded`]).
    pub fn shard_stats(&self) -> ShardStats {
        self.state
            .lock()
            .expect("engine state lock")
            .shards
            .shard_stats()
    }

    /// Returns the network to an idle state at time 0 while keeping every
    /// allocation warm: the slab's slot storage, the event heaps, the
    /// penalty cache and the model scratch it owns. A reset network
    /// produces bit-for-bit the results a freshly built one would (the
    /// first settle after a reset is a full rebuild query and the cleared
    /// slab hands out the same key/epoch sequence a fresh one would). Used
    /// by [`crate::FluidSolver`] to amortize construction across a scheme
    /// battery; cache and timeline stats accumulate across resets.
    pub fn reset(&mut self) {
        let st = self.state.get_mut().expect("engine state lock");
        st.time = 0.0;
        st.slots.clear();
        st.cache.reset();
        st.events.clear();
        st.shards.reset();
    }

    /// Starts a transfer at `start`.
    ///
    /// # Panics
    /// If `start` is before the current time (the solver cannot rewrite
    /// history) or not finite. Callers that must survive malformed input
    /// use [`Self::try_add`] instead.
    pub fn add(&mut self, key: TransferKey, comm: Communication, start: f64) {
        if let Err(err) = self.try_add(key, comm, start) {
            match err {
                AddError::NonFiniteStart { .. } => panic!("start time must be finite"),
                AddError::StartInPast { start, now } => {
                    panic!("transfer starts at {start} but network time is already {now}")
                }
            }
        }
    }

    /// Fallible [`Self::add`]: refuses (instead of panicking on) a
    /// non-finite start time or one before the current network time,
    /// leaving the engine state untouched on `Err`. This is the entry
    /// point for long-running services validating untrusted queries.
    pub fn try_add(
        &mut self,
        key: TransferKey,
        comm: Communication,
        start: f64,
    ) -> Result<(), AddError> {
        let heap_timeline = self.heap_timeline;
        let latency = self.params.latency;
        let st = self.state.get_mut().expect("engine state lock");
        if !start.is_finite() {
            return Err(AddError::NonFiniteStart { start });
        }
        if start < st.time - 1e-12 {
            return Err(AddError::StartInPast {
                start,
                now: st.time,
            });
        }
        // Sharded mode routes the endpoints through the component tracker
        // up front (gated flows included, so every flow has a shard home);
        // a flow bridging two components merges their shards here.
        let shard_id = self.sharded.then(|| st.shards.assign(&comm));
        let size = comm.size as f64;
        let gate = start.max(st.time) + latency;
        let contending = gate <= st.time + TIME_EPS;
        let flow = st.slots.insert(Slot {
            key,
            comm,
            gate,
            contending,
            anchor: gate,
            remaining: size,
            rate: 0.0,
            penalty: 1.0,
            finish: f64::INFINITY,
            eps: (size * REL_EPS).max(1e-9),
            phases: Vec::new(),
        });
        let epoch = st.slots.epoch(flow).expect("just-inserted flow is live");
        if let Some(id) = shard_id {
            let sh = st.shards.shard_mut(id);
            sh.members.push(flow);
            if contending {
                sh.cache.note_arrival(flow);
                st.shards.mark_dirty(id);
            } else {
                sh.events.push_gate(gate, flow, epoch);
            }
            st.shards.refresh_next(id, &st.slots);
        } else if contending {
            // Contending immediately; gated slots enter the population
            // when the clock crosses their gate.
            st.cache.note_arrival(flow);
        } else if heap_timeline {
            st.events.push_gate(gate, flow, epoch);
        }
        Ok(())
    }

    /// The next instant at which the network state changes (a gate opens or
    /// a transfer completes), or `None` when idle.
    pub fn next_event_time(&self) -> Option<f64> {
        let mut st = self.state.lock().expect("engine state lock");
        if st.slots.is_empty() {
            return None;
        }
        if self.sharded {
            settle_sharded(
                &self.model,
                &self.params,
                self.record_phases,
                &*self.dispatch,
                &mut st,
            );
            return st.shards.peek_next();
        }
        settle(
            &self.model,
            &self.params,
            self.record_phases,
            self.full_recompute,
            self.heap_timeline,
            &mut st,
        );
        let EngineState {
            time,
            slots,
            events,
            ..
        } = &mut *st;
        let (completion, gate) = if self.heap_timeline {
            (events.peek_finish(slots), events.peek_gate(slots))
        } else {
            (scan_next_finish(slots), scan_next_gate(slots, *time))
        };
        match (completion, gate) {
            (None, None) => None,
            (Some(c), None) => Some(c),
            (None, Some(g)) => Some(g),
            (Some(c), Some(g)) => Some(c.min(g)),
        }
    }

    /// Advances the clock to `t`, returning every transfer that completed
    /// in `(current time, t]`, in completion order.
    ///
    /// # Panics
    /// If `t` is before the current time.
    pub fn advance_to(&mut self, t: f64) -> Vec<CompletedTransfer> {
        if self.sharded {
            return self.advance_to_sharded(t);
        }
        let Self {
            model,
            params,
            record_phases,
            full_recompute,
            heap_timeline,
            state,
            ..
        } = self;
        let (record_phases, full_recompute, heap_timeline) =
            (*record_phases, *full_recompute, *heap_timeline);
        let st = state.get_mut().expect("engine state lock");
        assert!(
            t >= st.time - 1e-12,
            "cannot advance backwards ({} -> {t})",
            st.time
        );
        let mut done = Vec::new();
        loop {
            settle(
                model,
                params,
                record_phases,
                full_recompute,
                heap_timeline,
                st,
            );
            let EngineState {
                time,
                slots,
                cache,
                events,
                opened,
                due,
                ..
            } = st;
            let (completion, gate) = if heap_timeline {
                (events.peek_finish(slots), events.peek_gate(slots))
            } else {
                (scan_next_finish(slots), scan_next_gate(slots, *time))
            };
            let event = match (completion, gate) {
                (None, None) => None,
                (Some(c), None) => Some(c),
                (None, Some(g)) => Some(g),
                (Some(c), Some(g)) => Some(c.min(g)),
            };
            let e = match event {
                Some(e) if e <= t => e,
                _ => {
                    // Nothing further happens before the target time; a
                    // gate within epsilon of `t` still opens (it will be
                    // settled on the next call).
                    *time = time.max(t);
                    let now = *time;
                    opened.clear();
                    if heap_timeline {
                        events.pop_gates_through(now + TIME_EPS, slots, opened);
                    } else {
                        opened.extend(
                            slots
                                .iter()
                                .filter(|(_, s)| !s.contending && s.gate <= now + TIME_EPS)
                                .map(|(k, _)| k),
                        );
                    }
                    for &flow in opened.iter() {
                        slots
                            .get_mut(flow)
                            .expect("gated flow lives in slab")
                            .contending = true;
                        cache.note_arrival(flow);
                    }
                    break;
                }
            };
            *time = time.max(e);
            let now = *time;

            // Latency gates crossing `e` open first: their flows join the
            // population in the same settle that sees any simultaneous
            // completions (one chained Mixed delta).
            opened.clear();
            if heap_timeline {
                events.pop_gates_through(now + TIME_EPS, slots, opened);
            } else {
                opened.extend(
                    slots
                        .iter()
                        .filter(|(_, s)| !s.contending && s.gate <= now + TIME_EPS)
                        .map(|(k, _)| k),
                );
            }
            for &flow in opened.iter() {
                slots
                    .get_mut(flow)
                    .expect("gated flow lives in slab")
                    .contending = true;
                cache.note_arrival(flow);
            }

            // Completions due at `e`: every live heap entry (= every
            // contending flow) whose cached finish time has arrived. Keys
            // are stable, so removals leave the surviving flows (and the
            // cache's view of them) untouched.
            due.clear();
            if heap_timeline {
                events.pop_due_completions(now, slots, due);
            } else {
                due.extend(
                    slots
                        .iter()
                        .filter(|(_, s)| s.contending && s.finish <= now)
                        .map(|(k, _)| k),
                );
            }
            let batch_start = done.len();
            for &flow in due.iter() {
                if record_phases {
                    let slot = slots.get_mut(flow).expect("due flow lives in slab");
                    if slot.rate > 0.0 && now > slot.anchor {
                        push_phase(&mut slot.phases, slot.anchor, now, slot.penalty);
                    }
                }
                let slot = slots.remove(flow).expect("due flow lives in slab");
                debug_assert!(
                    slot.remaining - slot.rate * (now - slot.anchor) <= slot.eps,
                    "flow {flow} completed with bytes left"
                );
                cache.note_departure(flow);
                done.push(CompletedTransfer {
                    key: slot.key,
                    completion: now,
                    phases: slot.phases,
                });
            }
            done[batch_start..].sort_by_key(|c| c.key);
        }
        done
    }

    /// The sharded advance loop. Mirrors [`Self::advance_to`]'s event
    /// structure exactly — same time bounds, same gates-before-completions
    /// folding at an instant, same per-batch key sort — but pops events
    /// from the candidate shards' heaps (via the cross-shard heap) instead
    /// of global ones, and dirties only those shards, so the following
    /// settle refreshes just the components the event touched.
    fn advance_to_sharded(&mut self, t: f64) -> Vec<CompletedTransfer> {
        let Self {
            model,
            params,
            record_phases,
            dispatch,
            state,
            ..
        } = self;
        let record_phases = *record_phases;
        let dispatch = &**dispatch;
        let st = state.get_mut().expect("engine state lock");
        assert!(
            t >= st.time - 1e-12,
            "cannot advance backwards ({} -> {t})",
            st.time
        );
        let mut done = Vec::new();
        loop {
            settle_sharded(model, params, record_phases, dispatch, st);
            let EngineState {
                time,
                slots,
                shards,
                opened,
                due,
                departed,
                ..
            } = st;
            let e = match shards.peek_next() {
                Some(e) if e <= t => e,
                _ => {
                    // Nothing further happens before the target time; a
                    // gate within epsilon of `t` still opens (it will be
                    // settled on the next call).
                    *time = time.max(t);
                    let now = *time;
                    let candidates = shards.take_candidates(now + TIME_EPS);
                    for &id in &candidates {
                        opened.clear();
                        let sh = shards.shard_mut(id);
                        sh.events.pop_gates_through(now + TIME_EPS, slots, opened);
                        for &flow in opened.iter() {
                            slots
                                .get_mut(flow)
                                .expect("gated flow lives in slab")
                                .contending = true;
                            sh.cache.note_arrival(flow);
                        }
                        if !opened.is_empty() {
                            shards.mark_dirty(id);
                        }
                        shards.refresh_next(id, slots);
                    }
                    shards.recycle_candidates(candidates);
                    break;
                }
            };
            *time = time.max(e);
            let now = *time;
            // Every shard whose next event falls within the instant is a
            // candidate: gates crossing `e` open first (joining the same
            // settle as any simultaneous completions), then due
            // completions are removed — per shard, in ascending shard
            // order, which the final key sort makes order-independent.
            let candidates = shards.take_candidates(now + TIME_EPS);
            let batch_start = done.len();
            for &id in &candidates {
                opened.clear();
                due.clear();
                let sh = shards.shard_mut(id);
                sh.events.pop_gates_through(now + TIME_EPS, slots, opened);
                sh.events.pop_due_completions(now, slots, due);
                for &flow in opened.iter() {
                    slots
                        .get_mut(flow)
                        .expect("gated flow lives in slab")
                        .contending = true;
                    sh.cache.note_arrival(flow);
                }
                for &flow in due.iter() {
                    if record_phases {
                        let slot = slots.get_mut(flow).expect("due flow lives in slab");
                        if slot.rate > 0.0 && now > slot.anchor {
                            push_phase(&mut slot.phases, slot.anchor, now, slot.penalty);
                        }
                    }
                    let slot = slots.remove(flow).expect("due flow lives in slab");
                    debug_assert!(
                        slot.remaining - slot.rate * (now - slot.anchor) <= slot.eps,
                        "flow {flow} completed with bytes left"
                    );
                    sh.cache.note_departure(flow);
                    departed.push(slot.comm);
                    done.push(CompletedTransfer {
                        key: slot.key,
                        completion: now,
                        phases: slot.phases,
                    });
                }
                if !opened.is_empty() || !due.is_empty() {
                    shards.mark_dirty(id);
                }
                shards.refresh_next(id, slots);
            }
            shards.recycle_candidates(candidates);
            done[batch_start..].sort_by_key(|c| c.key);
            if slots.is_empty() {
                // Quiescent barrier: the population drained to empty, so
                // every shard is memberless and the partition — including
                // a collapse pin left by a Myrinet budget fallback — can
                // be forgotten. The next churn phase re-partitions from
                // scratch instead of inheriting a degraded single-shard
                // (or stale-member) structure forever.
                departed.clear();
                shards.quiesce();
            } else {
                // Departure refinement: drop each completed flow's edge
                // from the component tracker and re-partition to match —
                // re-seating roots, retiring drained shards, splitting
                // disconnected ones, or un-collapsing a budget-collapsed
                // partition whose pinned component departed.
                for comm in departed.drain(..) {
                    shards.depart(&comm, slots);
                }
            }
        }
        done
    }

    /// Drains the network: advances until every transfer completes.
    pub fn run_to_completion(&mut self) -> Vec<CompletedTransfer> {
        let mut done = Vec::new();
        while let Some(t) = self.next_event_time() {
            done.extend(self.advance_to(t));
        }
        done
    }
}

impl<M: PenaltyModel + Clone> FluidNetwork<M> {
    /// An independent deep copy of the warm engine: clock, slab (keys,
    /// generations and epochs verbatim), penalty cache with its model
    /// scratch (via [`netbw_core::ModelScratch::fork`]), event heaps, and
    /// — in sharded mode — the whole shard table. The fork and the
    /// original evolve independently from here on and produce bit-for-bit
    /// the results a rebuild-and-replay of the same history would (pinned
    /// by the `fork_equivalence` proptests).
    ///
    /// The model itself is cloned, so share an immutable model cheaply by
    /// instantiating the network over `Arc<dyn PenaltyModel>` (models are
    /// stateless — all mutable state lives in the forked scratch). This is
    /// what lets the `netbw-serve` what-if service answer speculative
    /// queries by forking a warm snapshot instead of replaying history.
    ///
    /// `fork` takes `&self` (briefly locking the engine state), so many
    /// worker threads can fork the same shared snapshot concurrently.
    pub fn fork(&self) -> Self {
        let st = self.state.lock().expect("engine state lock");
        FluidNetwork {
            model: self.model.clone(),
            params: self.params,
            record_phases: self.record_phases,
            full_recompute: self.full_recompute,
            heap_timeline: self.heap_timeline,
            sharded: self.sharded,
            dispatch: Arc::clone(&self.dispatch),
            state: Mutex::new(EngineState {
                time: st.time,
                slots: st.slots.clone(),
                cache: st.cache.fork(),
                events: st.events.clone(),
                shards: st.shards.fork(),
                staged: Vec::new(),
                comms_buf: Vec::new(),
                opened: Vec::new(),
                due: Vec::new(),
                departed: Vec::new(),
            }),
        }
    }

    /// [`Self::fork`] into an existing engine, reusing `target`'s
    /// allocations all the way down: slab, penalty cache (model scratch
    /// included, via [`netbw_core::ModelScratch::fork_into`]), event
    /// heaps, and — in sharded mode — the whole shard table clone in
    /// place. The outcome is bitwise indistinguishable from
    /// `*target = self.fork()` (pinned by the `rebase_equivalence`
    /// proptests), but a steady-state re-fork into a warm target
    /// allocates nothing — this is the serve hot path's per-worker fork
    /// arena.
    ///
    /// `target`'s own history is discarded wholesale; its scratch
    /// buffers are cleared, not copied, exactly as `fork` starts them
    /// empty (they are always drained before use).
    pub fn fork_into(&self, target: &mut Self) {
        let st = self.state.lock().expect("engine state lock");
        target.model = self.model.clone();
        target.params = self.params;
        target.record_phases = self.record_phases;
        target.full_recompute = self.full_recompute;
        target.heap_timeline = self.heap_timeline;
        target.sharded = self.sharded;
        target.dispatch = Arc::clone(&self.dispatch);
        let tgt = target.state.get_mut().expect("target engine state lock");
        tgt.time = st.time;
        st.slots.fork_into(&mut tgt.slots);
        st.cache.fork_into(&mut tgt.cache);
        st.events.fork_into(&mut tgt.events);
        st.shards.fork_into(&mut tgt.shards);
        tgt.staged.clear();
        tgt.comms_buf.clear();
        tgt.opened.clear();
        tgt.due.clear();
        tgt.departed.clear();
    }
}

/// Appends a phase, merging with the previous one when the penalty is
/// unchanged (keeps histories compact across artificial event boundaries).
fn push_phase(phases: &mut Vec<Phase>, t0: f64, t1: f64, penalty: f64) {
    if let Some(last) = phases.last_mut() {
        if (last.penalty - penalty).abs() < 1e-12 && (last.t1 - t0).abs() < 1e-12 {
            last.t1 = t1;
            return;
        }
    }
    phases.push(Phase { t0, t1, penalty });
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::baseline::LinearModel;
    use netbw_core::MyrinetModel;

    fn comm(src: u32, dst: u32, size: u64) -> Communication {
        Communication::new(src, dst, size)
    }

    #[test]
    fn single_transfer_completes_at_reference_time() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(100.0, 0.5));
        net.add(1, comm(0, 1, 1000), 0.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 10.5).abs() < 1e-9);
    }

    #[test]
    fn zero_size_transfer_completes_at_gate() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(100.0, 0.25));
        net.add(7, comm(0, 1, 0), 1.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 1.25).abs() < 1e-12);
    }

    #[test]
    fn myrinet_two_senders_share_then_finish_together() {
        // two comms from one node, same size: penalty 2 each, finish at 2·tref
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 0.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        for d in &done {
            assert!((d.completion - 200.0).abs() < 1e-9, "{d:?}");
        }
    }

    #[test]
    fn late_arrival_slows_the_first_flow_mid_transfer() {
        // flow A alone for 50 s (50 bytes done), then B arrives sharing the
        // source: both at penalty 2. A needs 100 more seconds → 150 total.
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit())
            .with_phase_recording();
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 50.0);
        let done = net.run_to_completion();
        let a = done.iter().find(|d| d.key == 0).unwrap();
        let b = done.iter().find(|d| d.key == 1).unwrap();
        assert!((a.completion - 150.0).abs() < 1e-9, "a: {}", a.completion);
        // B: 50 bytes while sharing (100 s), then 50 bytes alone (50 s) → 200.
        assert!((b.completion - 200.0).abs() < 1e-9, "b: {}", b.completion);
        // phases of A: penalty 1 then 2
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].penalty, 1.0);
        assert_eq!(a.phases[1].penalty, 2.0);
        // and B: 2 then 1
        assert_eq!(b.phases.len(), 2);
        assert_eq!(b.phases[0].penalty, 2.0);
        assert_eq!(b.phases[1].penalty, 1.0);
    }

    #[test]
    fn advance_to_reports_partial_progress_only_at_completions() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        assert!(net.advance_to(40.0).is_empty());
        assert_eq!(net.in_flight(), 1);
        let done = net.advance_to(100.0);
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 100.0).abs() < 1e-9);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn next_event_time_accounts_for_gates_and_completions() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(1.0, 2.0));
        net.add(0, comm(0, 1, 10), 0.0); // gate 2, completes 12
        net.add(1, comm(2, 3, 1), 5.0); // gate 7, completes 8
        assert_eq!(net.next_event_time(), Some(2.0)); // before gate 0 opens: idle → gate
        net.advance_to(2.0);
        // now flow 0 active, next events: completion 12 vs gate 7
        assert_eq!(net.next_event_time(), Some(7.0));
        net.advance_to(7.0);
        let e = net.next_event_time().unwrap();
        assert!((e - 8.0).abs() < 1e-9);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot advance backwards")]
    fn advance_backwards_panics() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 10), 0.0);
        net.advance_to(5.0);
        net.advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "network time is already")]
    fn add_in_the_past_panics() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 10), 0.0);
        net.advance_to(5.0);
        net.add(1, comm(0, 2, 10), 1.0);
    }

    #[test]
    fn try_add_reports_typed_errors_and_leaves_state_untouched() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 10), 0.0);
        net.advance_to(5.0);
        assert!(matches!(
            net.try_add(1, comm(0, 2, 10), f64::NAN),
            Err(AddError::NonFiniteStart { start }) if start.is_nan()
        ));
        assert!(matches!(
            net.try_add(1, comm(0, 2, 10), f64::INFINITY),
            Err(AddError::NonFiniteStart { .. })
        ));
        let err = net.try_add(1, comm(0, 2, 10), 1.0).unwrap_err();
        assert_eq!(
            err,
            AddError::StartInPast {
                start: 1.0,
                now: 5.0
            }
        );
        assert_eq!(
            err.to_string(),
            "transfer starts at 1 but network time is already 5"
        );
        // refused adds left the engine untouched: only flow 0 in flight
        assert_eq!(net.in_flight(), 1);
        // and a valid add still goes through
        assert_eq!(net.try_add(1, comm(0, 2, 10), 6.0), Ok(()));
        assert_eq!(net.in_flight(), 2);
        assert_eq!(net.run_to_completion().len(), 2);
    }

    #[test]
    fn simultaneous_completions_all_reported() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        for k in 0..4u64 {
            net.add(k, comm(k as u32 * 2, k as u32 * 2 + 1, 100), 0.0);
        }
        let done = net.advance_to(100.0);
        assert_eq!(done.len(), 4);
        let keys: Vec<_> = done.iter().map(|d| d.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3], "batch ordered by transfer key");
    }

    #[test]
    fn bytes_are_conserved_through_phase_changes() {
        // sum over phases of rate×duration must equal the transfer size
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit())
            .with_phase_recording();
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 57), 0.0);
        net.add(2, comm(3, 2, 41), 10.0);
        let done = net.run_to_completion();
        for d in &done {
            let moved: f64 = d.phases.iter().map(|ph| (ph.t1 - ph.t0) / ph.penalty).sum();
            let size = [100.0, 57.0, 41.0][d.key as usize];
            assert!(
                (moved - size).abs() < 1e-6,
                "key {}: moved {moved}, size {size}",
                d.key
            );
        }
    }

    #[test]
    fn cache_queries_only_on_population_changes() {
        // Three flows from one source, staggered starts: the population
        // changes at each arrival and each completion. Time advances and
        // next_event_time probes in between must be free.
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 10.0);
        net.add(2, comm(0, 3, 100), 20.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 3);
        let stats = net.cache_stats();
        // 6 population changes (3 arrivals/gate openings + 3 departures);
        // allow a couple of boundary resettles but nowhere near the
        // pre-refactor 2-queries-per-solver-iteration behaviour.
        assert!(
            stats.model_queries <= 8,
            "expected ≤8 model queries, got {stats:?}"
        );
        assert!(stats.reuses > 0, "cache never reused: {stats:?}");
    }

    #[test]
    fn incremental_and_full_recompute_agree() {
        // Identical staggered workloads through both engines: completions
        // must match exactly, while the incremental engine queries the
        // model strictly less often.
        let starts = [0.0, 3.0, 3.0, 7.0, 11.0, 30.0];
        let mut fast = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(2.0, 0.5));
        let mut slow = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(2.0, 0.5))
            .with_full_recompute();
        for (k, &s) in starts.iter().enumerate() {
            let c = comm(k as u32 % 3, 3 + k as u32 % 2, 50 + 13 * k as u64);
            fast.add(k as u64, c, s);
            slow.add(k as u64, c, s);
        }
        let mut a = fast.run_to_completion();
        let mut b = slow.run_to_completion();
        a.sort_by_key(|d| d.key);
        b.sort_by_key(|d| d.key);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(
                x.completion, y.completion,
                "key {}: heap and oracle engines share their arithmetic, so \
                 completions match bitwise",
                x.key
            );
        }
        assert!(
            fast.cache_stats().model_queries < slow.cache_stats().model_queries,
            "incremental {:?} should query less than baseline {:?}",
            fast.cache_stats(),
            slow.cache_stats()
        );
    }

    #[test]
    fn all_three_timeline_modes_agree_bitwise() {
        let starts = [0.0, 0.0, 2.5, 2.5, 6.0, 9.0, 9.0, 14.0];
        let mut nets = [
            FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(4.0, 0.25))
                .with_phase_recording(),
            FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(4.0, 0.25))
                .with_phase_recording()
                .with_linear_timeline(),
            FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(4.0, 0.25))
                .with_phase_recording()
                .with_full_recompute(),
        ];
        for net in nets.iter_mut() {
            for (k, &s) in starts.iter().enumerate() {
                net.add(
                    k as u64,
                    comm(k as u32 % 4, 4 + k as u32 % 3, 30 + 11 * k as u64),
                    s,
                );
            }
        }
        let [heap, linear, oracle] = nets;
        let run = |mut n: FluidNetwork<MyrinetModel>| {
            let mut d = n.run_to_completion();
            d.sort_by_key(|c| c.key);
            d
        };
        let (a, b, c) = (run(heap), run(linear), run(oracle));
        assert_eq!(a.len(), starts.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.key, z.key);
            assert_eq!(x.completion, y.completion, "heap vs linear, key {}", x.key);
            assert_eq!(x.completion, z.completion, "heap vs oracle, key {}", x.key);
            assert_eq!(x.phases, y.phases, "phases heap vs linear, key {}", x.key);
            assert_eq!(x.phases, z.phases, "phases heap vs oracle, key {}", x.key);
        }
    }

    #[test]
    fn sharded_mode_matches_heap_bitwise_and_tracks_components() {
        // Two independent components (node sets {0..3} and {10..13}) plus
        // a late bridge flow joining them: completions and phases must be
        // bitwise identical to the heap engine throughout.
        let starts = [0.0, 0.0, 2.5, 2.5, 6.0, 9.0];
        let comms = [
            comm(0, 1, 30),
            comm(10, 11, 41),
            comm(0, 2, 52),
            comm(10, 12, 63),
            comm(3, 0, 74),
            comm(13, 10, 85),
        ];
        let mut heap = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(4.0, 0.25))
            .with_phase_recording();
        let mut sharded = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(4.0, 0.25))
            .with_phase_recording()
            .with_sharded();
        for net in [&mut heap, &mut sharded] {
            for ((k, &c), &s) in comms.iter().enumerate().zip(&starts) {
                net.add(k as u64, c, s);
            }
        }
        assert_eq!(sharded.shard_count(), 2);
        // run both halfway, then bridge the two components mid-flight
        let mid = 40.0;
        let mut a = heap.advance_to(mid);
        let mut b = sharded.advance_to(mid);
        heap.add(6, comm(2, 12, 55), mid);
        sharded.add(6, comm(2, 12, 55), mid);
        assert_eq!(sharded.shard_count(), 1, "bridge merges the shards");
        let (ra, rb) = (heap.run_to_completion(), sharded.run_to_completion());
        a.extend(ra);
        b.extend(rb);
        a.sort_by_key(|d| d.key);
        b.sort_by_key(|d| d.key);
        assert_eq!(a.len(), comms.len() + 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(
                x.completion.to_bits(),
                y.completion.to_bits(),
                "heap vs sharded, key {}",
                x.key
            );
            assert_eq!(x.phases, y.phases, "phases heap vs sharded, key {}", x.key);
        }
        // aggregate stats stay observable across shards
        let stats = sharded.cache_stats();
        assert!(stats.model_queries > 0, "{stats:?}");
        let tstats = sharded.timeline_stats();
        assert!(tstats.heap_pushes > 0, "{tstats:?}");
    }

    #[test]
    fn bridge_departure_splits_the_partition_live() {
        // Two components bridged by one short flow: when the bridge
        // completes mid-run the component breaks back apart, and the
        // refining engine re-splits the shard while the merge-only
        // ablation stays fused — both bitwise equal to the heap engine.
        let add_all = |net: &mut FluidNetwork<MyrinetModel>| {
            net.add(0, comm(0, 1, 200), 0.0);
            net.add(1, comm(0, 2, 200), 0.0);
            net.add(2, comm(10, 11, 200), 0.0);
            net.add(3, comm(10, 12, 200), 0.0);
            net.add(4, comm(2, 10, 10), 0.0); // the bridge, finishes first
        };
        let params = NetworkParams::unit();
        let mut heap = FluidNetwork::new(MyrinetModel::default(), params);
        let mut refine = FluidNetwork::new(MyrinetModel::default(), params).with_sharded();
        let mut fused =
            FluidNetwork::new(MyrinetModel::default(), params).with_sharded_merge_only();
        add_all(&mut heap);
        add_all(&mut refine);
        add_all(&mut fused);
        assert_eq!(refine.shard_count(), 1, "the bridge fuses everything");
        let mut a = heap.advance_to(100.0);
        let mut b = refine.advance_to(100.0);
        let mut c = fused.advance_to(100.0);
        assert_eq!(b.len(), 1, "only the bridge completed by t=100");
        assert_eq!(refine.shard_count(), 2, "bridge departure re-splits");
        assert_eq!(refine.shard_stats().splits, 1);
        assert_eq!(fused.shard_count(), 1, "merge-only never splits");
        a.extend(heap.run_to_completion());
        b.extend(refine.run_to_completion());
        c.extend(fused.run_to_completion());
        for done in [&mut a, &mut b, &mut c] {
            done.sort_by_key(|d| d.key);
        }
        assert_eq!(a.len(), 5);
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.completion.to_bits(), y.completion.to_bits(), "refine");
            assert_eq!(x.completion.to_bits(), z.completion.to_bits(), "fused");
        }
        // The drained population quiesced the partition (both symmetric
        // components finish in one final batch, which resets the table
        // wholesale rather than retiring shards one by one); the shape
        // counters survive the quiesce.
        let stats = refine.shard_stats();
        assert_eq!(stats.live_shards, 0);
        assert_eq!((stats.splits, stats.merges), (1, 1), "{stats:?}");
    }

    #[test]
    fn sharded_reset_restarts_components_and_keeps_stats() {
        let mut net =
            FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit()).with_sharded();
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(2, 3, 100), 0.0);
        assert_eq!(net.shard_count(), 2);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        let queries_before = net.cache_stats().model_queries;
        assert!(queries_before > 0);
        net.reset();
        assert_eq!(net.shard_count(), 0);
        assert_eq!(net.time(), 0.0);
        // stats are cumulative across resets, and the reset network
        // produces fresh results bit-for-bit
        assert_eq!(net.cache_stats().model_queries, queries_before);
        net.add(0, comm(0, 1, 100), 0.0);
        let redo = net.run_to_completion();
        assert_eq!(redo.len(), 1);
        assert_eq!(redo[0].completion.to_bits(), done[0].completion.to_bits());
    }

    #[test]
    fn timeline_stats_count_heap_traffic() {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 1.0));
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 10.0);
        net.add(2, comm(0, 3, 50), 20.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 3);
        let stats = net.timeline_stats();
        // every arrival anchors once and re-anchors on later changes
        assert!(stats.heap_pushes >= 3, "{stats:?}");
        assert!(
            stats.lazy_pops <= stats.heap_pushes,
            "lazy pops are bounded by pushes: {stats:?}"
        );
        // all three transfers start in the future (latency 1): each gate is
        // heap-managed and each opening is served from the heap
        assert_eq!(stats.gate_pushes, 3, "{stats:?}");
        assert_eq!(stats.gate_heap_hits, 3, "{stats:?}");
        // the only full resync is the first settle's rebuild
        assert_eq!(stats.rescans, 1, "{stats:?}");
        // the linear mode, by contrast, rescans on every settle and never
        // touches the heaps
        let mut linear = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 1.0))
            .with_linear_timeline();
        linear.add(0, comm(0, 1, 100), 0.0);
        linear.add(1, comm(0, 2, 100), 10.0);
        linear.run_to_completion();
        let lstats = linear.timeline_stats();
        assert_eq!(lstats.heap_pushes, 0, "{lstats:?}");
        assert_eq!(lstats.gate_pushes, 0, "{lstats:?}");
        assert!(lstats.rescans >= 3, "{lstats:?}");
    }

    #[test]
    fn gate_opening_at_a_completion_instant_is_one_event() {
        // Flow 0 completes at exactly t=10; flow 1's gate opens at t=10
        // (start 9 + latency 1). The engine must fold both into one settle:
        // flow 1 then runs alone at penalty 1.
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 1.0))
            .with_phase_recording();
        net.add(0, comm(0, 1, 9), 0.0); // gate 1, alone → completes 10
        net.add(1, comm(0, 2, 5), 9.0); // gate 10 == completion instant
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        let a = done.iter().find(|d| d.key == 0).unwrap();
        let b = done.iter().find(|d| d.key == 1).unwrap();
        assert!((a.completion - 10.0).abs() < 1e-9, "a: {}", a.completion);
        assert!((b.completion - 15.0).abs() < 1e-9, "b: {}", b.completion);
        assert_eq!(a.phases.len(), 1, "{:?}", a.phases);
        assert_eq!(a.phases[0].penalty, 1.0);
        assert_eq!(b.phases.len(), 1, "never shared: {:?}", b.phases);
        assert_eq!(b.phases[0].penalty, 1.0);
    }

    #[test]
    fn clamped_finish_handles_degenerate_inputs() {
        // normal case: now + remaining/rate
        assert_eq!(clamped_finish(2.0, 10.0, 5.0, 1e-9), 4.0);
        // zero-size (remaining under eps): finishes now
        assert_eq!(clamped_finish(2.0, 0.0, 5.0, 1e-9), 2.0);
        assert_eq!(clamped_finish(2.0, 5e-10, 5.0, 1e-9), 2.0);
        // float drift drove remaining negative: clamps to now
        assert_eq!(clamped_finish(2.0, -1e-6, 5.0, 1e-9), 2.0);
        // NaN from a pathological division: clamps to now
        assert_eq!(clamped_finish(2.0, f64::NAN, 5.0, 1e-9), 2.0);
        assert_eq!(clamped_finish(2.0, 10.0, f64::NAN, 1e-9), 2.0);
        // infinite finish (rate 0) is preserved: the flow never finishes
        assert_eq!(clamped_finish(2.0, 10.0, 0.0, 1e-9), f64::INFINITY);
    }
}
