//! Incremental fluid network: transfers arrive over time, completions are
//! consumed as events. This is the network backend of the `netbw-sim`
//! discrete-event engine.

use crate::params::NetworkParams;
use crate::solver::Phase;
use netbw_core::PenaltyModel;
use netbw_graph::Communication;

/// Caller-chosen identifier for a transfer (the simulator uses its event
/// ids; the batch solver uses input indices).
pub type TransferKey = u64;

/// Relative epsilon under which a transfer's remaining bytes count as zero.
const REL_EPS: f64 = 1e-9;

#[derive(Debug)]
struct Slot {
    key: TransferKey,
    comm: Communication,
    /// Time at which the flow starts contending (start + latency).
    gate: f64,
    remaining: f64,
    eps: f64,
    phases: Vec<Phase>,
}

/// A finished transfer, in completion order.
#[derive(Debug, Clone)]
pub struct CompletedTransfer {
    /// The key passed to [`FluidNetwork::add`].
    pub key: TransferKey,
    /// Completion time (absolute).
    pub completion: f64,
    /// Piecewise-constant penalty history (empty unless phase recording is
    /// enabled).
    pub phases: Vec<Phase>,
}

/// A shared network under a penalty model, integrating transfer progress
/// through piecewise-constant penalty phases.
///
/// Invariants: time never goes backwards; transfers must be added at or
/// after the current time; bytes are conserved (enforced in debug builds).
pub struct FluidNetwork<M> {
    model: M,
    params: NetworkParams,
    time: f64,
    slots: Vec<Slot>,
    record_phases: bool,
}

impl<M: PenaltyModel> FluidNetwork<M> {
    /// Creates an idle network at time 0.
    pub fn new(model: M, params: NetworkParams) -> Self {
        FluidNetwork {
            model,
            params,
            time: 0.0,
            slots: Vec::new(),
            record_phases: false,
        }
    }

    /// Enables per-transfer penalty-phase recording (costs memory).
    pub fn with_phase_recording(mut self) -> Self {
        self.record_phases = true;
        self
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The network parameters in use.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// The model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of transfers not yet completed (including latency-gated ones).
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    /// Starts a transfer at `start`.
    ///
    /// # Panics
    /// If `start` is before the current time (the solver cannot rewrite
    /// history) or not finite.
    pub fn add(&mut self, key: TransferKey, comm: Communication, start: f64) {
        assert!(start.is_finite(), "start time must be finite");
        assert!(
            start >= self.time - 1e-12,
            "transfer starts at {start} but network time is already {}",
            self.time
        );
        let size = comm.size as f64;
        self.slots.push(Slot {
            key,
            comm,
            gate: start.max(self.time) + self.params.latency,
            remaining: size,
            eps: (size * REL_EPS).max(1e-9),
            phases: Vec::new(),
        });
    }

    fn active_indices(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].gate <= self.time + 1e-15)
            .collect()
    }

    fn next_gate(&self) -> Option<f64> {
        self.slots
            .iter()
            .map(|s| s.gate)
            .filter(|&g| g > self.time + 1e-15)
            .min_by(f64::total_cmp)
    }

    /// The next instant at which the network state changes (a gate opens or
    /// a transfer completes), or `None` when idle.
    pub fn next_event_time(&self) -> Option<f64> {
        if self.slots.is_empty() {
            return None;
        }
        let active = self.active_indices();
        let gate = self.next_gate();
        if active.is_empty() {
            return gate;
        }
        let comms: Vec<Communication> = active.iter().map(|&i| self.slots[i].comm).collect();
        let penalties = self.model.penalties(&comms);
        let mut dt = f64::INFINITY;
        for (k, &i) in active.iter().enumerate() {
            let rate = self.params.bandwidth * penalties[k].rate();
            let slot = &self.slots[i];
            let need = if slot.remaining <= slot.eps {
                0.0
            } else {
                slot.remaining / rate
            };
            dt = dt.min(need);
        }
        let completion = self.time + dt;
        Some(match gate {
            Some(g) => completion.min(g),
            None => completion,
        })
    }

    /// Advances the clock to `t`, returning every transfer that completed
    /// in `(current time, t]`, in completion order.
    ///
    /// # Panics
    /// If `t` is before the current time.
    pub fn advance_to(&mut self, t: f64) -> Vec<CompletedTransfer> {
        assert!(
            t >= self.time - 1e-12,
            "cannot advance backwards ({} -> {t})",
            self.time
        );
        let mut done = Vec::new();
        loop {
            let active = self.active_indices();
            if active.is_empty() {
                // idle until next gate or the target time
                match self.next_gate() {
                    Some(g) if g <= t => {
                        self.time = g;
                        continue;
                    }
                    _ => {
                        self.time = self.time.max(t);
                        break;
                    }
                }
            }

            let comms: Vec<Communication> = active.iter().map(|&i| self.slots[i].comm).collect();
            let penalties = self.model.penalties(&comms);
            let rates: Vec<f64> = penalties
                .iter()
                .map(|p| self.params.bandwidth * p.rate())
                .collect();

            // time to the next completion within the active set
            let mut dt_complete = f64::INFINITY;
            for (k, &i) in active.iter().enumerate() {
                let slot = &self.slots[i];
                let need = if slot.remaining <= slot.eps {
                    0.0
                } else {
                    slot.remaining / rates[k]
                };
                dt_complete = dt_complete.min(need);
            }

            let dt_gate = self.next_gate().map(|g| g - self.time);
            let dt_target = t - self.time;
            let mut dt = dt_complete.min(dt_target);
            if let Some(g) = dt_gate {
                dt = dt.min(g);
            }
            // Nothing further happens before the target time.
            if dt > dt_target + 1e-15 {
                dt = dt_target;
            }
            if dt.is_nan() || dt < 0.0 {
                dt = 0.0;
            }

            let t0 = self.time;
            self.time += dt;
            for (k, &i) in active.iter().enumerate() {
                let slot = &mut self.slots[i];
                slot.remaining -= rates[k] * dt;
                if self.record_phases && dt > 0.0 {
                    push_phase(&mut slot.phases, t0, self.time, penalties[k].value());
                }
            }

            // collect completions (iterate indices descending so removal is safe)
            let mut completed_now: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| self.slots[i].remaining <= self.slots[i].eps)
                .collect();
            completed_now.sort_unstable_by(|a, b| b.cmp(a));
            let mut batch: Vec<CompletedTransfer> = completed_now
                .into_iter()
                .map(|i| {
                    let slot = self.slots.swap_remove(i);
                    CompletedTransfer {
                        key: slot.key,
                        completion: self.time,
                        phases: slot.phases,
                    }
                })
                .collect();
            batch.sort_by_key(|c| c.key);
            let had_completions = !batch.is_empty();
            done.extend(batch);

            if self.time >= t - 1e-15 && !had_completions {
                break;
            }
            if self.time >= t - 1e-15 && self.slots.is_empty() {
                break;
            }
            if self.time >= t - 1e-15 {
                // completions exactly at t may unlock zero-size work; one
                // more pass is harmless, but avoid infinite looping when
                // nothing changed.
                if !had_completions {
                    break;
                }
                // loop once more only if some active transfer could
                // complete at exactly t (dt = 0 case); otherwise stop.
                let more_zero = self
                    .active_indices()
                    .iter()
                    .any(|&i| self.slots[i].remaining <= self.slots[i].eps);
                if !more_zero {
                    break;
                }
            }
        }
        done
    }

    /// Drains the network: advances until every transfer completes.
    pub fn run_to_completion(&mut self) -> Vec<CompletedTransfer> {
        let mut done = Vec::new();
        while let Some(t) = self.next_event_time() {
            done.extend(self.advance_to(t));
        }
        done
    }
}

/// Appends a phase, merging with the previous one when the penalty is
/// unchanged (keeps histories compact across artificial event boundaries).
fn push_phase(phases: &mut Vec<Phase>, t0: f64, t1: f64, penalty: f64) {
    if let Some(last) = phases.last_mut() {
        if (last.penalty - penalty).abs() < 1e-12 && (last.t1 - t0).abs() < 1e-12 {
            last.t1 = t1;
            return;
        }
    }
    phases.push(Phase { t0, t1, penalty });
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::baseline::LinearModel;
    use netbw_core::MyrinetModel;

    fn comm(src: u32, dst: u32, size: u64) -> Communication {
        Communication::new(src, dst, size)
    }

    #[test]
    fn single_transfer_completes_at_reference_time() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(100.0, 0.5));
        net.add(1, comm(0, 1, 1000), 0.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 10.5).abs() < 1e-9);
    }

    #[test]
    fn zero_size_transfer_completes_at_gate() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(100.0, 0.25));
        net.add(7, comm(0, 1, 0), 1.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 1.25).abs() < 1e-12);
    }

    #[test]
    fn myrinet_two_senders_share_then_finish_together() {
        // two comms from one node, same size: penalty 2 each, finish at 2·tref
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 0.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        for d in &done {
            assert!((d.completion - 200.0).abs() < 1e-9, "{d:?}");
        }
    }

    #[test]
    fn late_arrival_slows_the_first_flow_mid_transfer() {
        // flow A alone for 50 s (50 bytes done), then B arrives sharing the
        // source: both at penalty 2. A needs 100 more seconds → 150 total.
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit())
            .with_phase_recording();
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 50.0);
        let done = net.run_to_completion();
        let a = done.iter().find(|d| d.key == 0).unwrap();
        let b = done.iter().find(|d| d.key == 1).unwrap();
        assert!((a.completion - 150.0).abs() < 1e-9, "a: {}", a.completion);
        // B: 50 bytes while sharing (100 s), then 50 bytes alone (50 s) → 200.
        assert!((b.completion - 200.0).abs() < 1e-9, "b: {}", b.completion);
        // phases of A: penalty 1 then 2
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].penalty, 1.0);
        assert_eq!(a.phases[1].penalty, 2.0);
        // and B: 2 then 1
        assert_eq!(b.phases.len(), 2);
        assert_eq!(b.phases[0].penalty, 2.0);
        assert_eq!(b.phases[1].penalty, 1.0);
    }

    #[test]
    fn advance_to_reports_partial_progress_only_at_completions() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        assert!(net.advance_to(40.0).is_empty());
        assert_eq!(net.in_flight(), 1);
        let done = net.advance_to(100.0);
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 100.0).abs() < 1e-9);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn next_event_time_accounts_for_gates_and_completions() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(1.0, 2.0));
        net.add(0, comm(0, 1, 10), 0.0); // gate 2, completes 12
        net.add(1, comm(2, 3, 1), 5.0); // gate 7, completes 8
        assert_eq!(net.next_event_time(), Some(2.0)); // before gate 0 opens: idle → gate
        net.advance_to(2.0);
        // now flow 0 active, next events: completion 12 vs gate 7
        assert_eq!(net.next_event_time(), Some(7.0));
        net.advance_to(7.0);
        let e = net.next_event_time().unwrap();
        assert!((e - 8.0).abs() < 1e-9);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot advance backwards")]
    fn advance_backwards_panics() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 10), 0.0);
        net.advance_to(5.0);
        net.advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "network time is already")]
    fn add_in_the_past_panics() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 10), 0.0);
        net.advance_to(5.0);
        net.add(1, comm(0, 2, 10), 1.0);
    }

    #[test]
    fn simultaneous_completions_all_reported() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        for k in 0..4u64 {
            net.add(k, comm(k as u32 * 2, k as u32 * 2 + 1, 100), 0.0);
        }
        let done = net.advance_to(100.0);
        assert_eq!(done.len(), 4);
        let mut keys: Vec<_> = done.iter().map(|d| d.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bytes_are_conserved_through_phase_changes() {
        // sum over phases of rate×duration must equal the transfer size
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit())
            .with_phase_recording();
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 57), 0.0);
        net.add(2, comm(3, 2, 41), 10.0);
        let done = net.run_to_completion();
        for d in &done {
            let moved: f64 = d
                .phases
                .iter()
                .map(|ph| (ph.t1 - ph.t0) / ph.penalty)
                .sum();
            let size = [100.0, 57.0, 41.0][d.key as usize];
            assert!(
                (moved - size).abs() < 1e-6,
                "key {}: moved {moved}, size {size}",
                d.key
            );
        }
    }
}
