//! Incremental fluid network: transfers arrive over time, completions are
//! consumed as events. This is the network backend of the `netbw-sim`
//! discrete-event engine.
//!
//! Penalties are obtained through a [`PenaltyCache`]: the model is only
//! re-queried when the contending population actually changes (arrival,
//! latency-gate opening, completion), never on pure time advances or
//! [`FluidNetwork::next_event_time`] probes. Transfers live in a
//! stable-key [`crate::slab::Slab`], so a completion batch leaves the
//! surviving flows' identities (and relative order) untouched — the cache
//! reports each change as a positional
//! [`netbw_core::PopulationDelta`] and the models patch only the affected
//! endpoints or conflict components instead of recomputing the fabric.
//! The pre-refactor behaviour — a full model query on every solver
//! iteration — is preserved behind [`FluidNetwork::with_full_recompute`]
//! as a correctness oracle and benchmark baseline.

use crate::cache::{CacheStats, PenaltyCache};
use crate::params::NetworkParams;
use crate::slab::{FlowKey, Slab};
use crate::solver::Phase;
use netbw_core::PenaltyModel;
use netbw_graph::Communication;
use std::sync::{Mutex, MutexGuard};

/// Caller-chosen identifier for a transfer (the simulator uses its event
/// ids; the batch solver uses input indices). Distinct from the internal
/// [`FlowKey`], which names the transfer's slab slot.
pub type TransferKey = u64;

/// Relative epsilon under which a transfer's remaining bytes count as zero.
const REL_EPS: f64 = 1e-9;

/// Absolute slack when comparing times (gates, targets, completions).
const TIME_EPS: f64 = 1e-15;

#[derive(Debug)]
struct Slot {
    key: TransferKey,
    comm: Communication,
    /// Time at which the flow starts contending (start + latency).
    gate: f64,
    remaining: f64,
    eps: f64,
    phases: Vec<Phase>,
}

/// A finished transfer, in completion order.
#[derive(Debug, Clone)]
pub struct CompletedTransfer {
    /// The key passed to [`FluidNetwork::add`].
    pub key: TransferKey,
    /// Completion time (absolute).
    pub completion: f64,
    /// Piecewise-constant penalty history (empty unless phase recording is
    /// enabled).
    pub phases: Vec<Phase>,
}

/// A shared network under a penalty model, integrating transfer progress
/// through piecewise-constant penalty phases.
///
/// Invariants: time never goes backwards; transfers must be added at or
/// after the current time; bytes are conserved (enforced in debug builds).
pub struct FluidNetwork<M> {
    model: M,
    params: NetworkParams,
    time: f64,
    slots: Slab<Slot>,
    record_phases: bool,
    full_recompute: bool,
    // Mutex (uncontended in single-threaded use) because
    // `next_event_time` is `&self` (see `NetworkBackend`) but may need to
    // lazily settle the cache after a population change — and the network
    // must stay `Sync` for thread-scoped sweeps.
    cache: Mutex<PenaltyCache>,
}

impl<M: PenaltyModel> FluidNetwork<M> {
    /// Creates an idle network at time 0.
    pub fn new(model: M, params: NetworkParams) -> Self {
        FluidNetwork {
            model,
            params,
            time: 0.0,
            slots: Slab::new(),
            record_phases: false,
            full_recompute: false,
            cache: Mutex::new(PenaltyCache::new()),
        }
    }

    /// Enables per-transfer penalty-phase recording (costs memory).
    pub fn with_phase_recording(mut self) -> Self {
        self.record_phases = true;
        self
    }

    /// Disables the incremental penalty cache: the model is re-queried on
    /// every solver iteration, as the pre-refactor engine did. Slower;
    /// kept as an equivalence oracle and benchmark baseline.
    pub fn with_full_recompute(mut self) -> Self {
        self.full_recompute = true;
        self
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The network parameters in use.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// The model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of transfers not yet completed (including latency-gated ones).
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    /// Penalty-cache counters: model queries, cache reuses, invalidations.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("penalty cache lock").stats()
    }

    /// Returns the network to an idle state at time 0 while keeping every
    /// allocation warm: the slab's slot storage, the penalty cache and the
    /// model scratch it owns. A reset network produces bit-for-bit the
    /// results a freshly built one would (the first settle after a reset
    /// is a full rebuild query, exactly like a fresh cache's). Used by
    /// [`crate::FluidSolver`] to amortize construction across a scheme
    /// battery; cache stats accumulate across resets.
    pub fn reset(&mut self) {
        self.time = 0.0;
        self.slots.clear();
        self.cache.get_mut().expect("penalty cache lock").reset();
    }

    /// Starts a transfer at `start`.
    ///
    /// # Panics
    /// If `start` is before the current time (the solver cannot rewrite
    /// history) or not finite.
    pub fn add(&mut self, key: TransferKey, comm: Communication, start: f64) {
        assert!(start.is_finite(), "start time must be finite");
        assert!(
            start >= self.time - 1e-12,
            "transfer starts at {start} but network time is already {}",
            self.time
        );
        let size = comm.size as f64;
        let gate = start.max(self.time) + self.params.latency;
        let flow = self.slots.insert(Slot {
            key,
            comm,
            gate,
            remaining: size,
            eps: (size * REL_EPS).max(1e-9),
            phases: Vec::new(),
        });
        if gate <= self.time + TIME_EPS {
            // Contending immediately; gated slots invalidate later, when
            // the clock crosses their gate (see `advance_time_to`).
            self.cache
                .get_mut()
                .expect("penalty cache lock")
                .note_arrival(flow);
        }
    }

    /// Stable keys of the currently contending flows, in slab order.
    fn active_flows(&self) -> Vec<FlowKey> {
        self.slots
            .iter()
            .filter(|(_, s)| s.gate <= self.time + TIME_EPS)
            .map(|(k, _)| k)
            .collect()
    }

    fn next_gate(&self) -> Option<f64> {
        self.slots
            .iter()
            .map(|(_, s)| s.gate)
            .filter(|&g| g > self.time + TIME_EPS)
            .min_by(f64::total_cmp)
    }

    /// Settles the penalty cache for the current population: re-queries
    /// the model if the population changed since the last settle (or on
    /// every call in full-recompute mode), otherwise serves the cached
    /// penalties. This is the single recompute path shared by event
    /// probing and time advancement.
    fn resettle(&self) -> MutexGuard<'_, PenaltyCache> {
        let mut cache = self.cache.lock().expect("penalty cache lock");
        if self.full_recompute || !cache.is_valid() {
            let active = self.active_flows();
            let comms: Vec<Communication> = active
                .iter()
                .map(|&k| self.slots.get(k).expect("active flow lives in slab").comm)
                .collect();
            if self.full_recompute {
                // Oracle mode: the pre-refactor full query, bypassing the
                // delta/scratch machinery entirely.
                cache.invalidate_rebuild();
                cache.refresh_full(&self.model, active, comms);
            } else {
                cache.refresh(&self.model, active, comms);
            }
        } else {
            cache.note_reuse();
        }
        cache
    }

    /// Time until the earliest completion within the settled population
    /// (`f64::INFINITY` when nothing is contending).
    fn time_to_next_completion(&self, cache: &PenaltyCache) -> f64 {
        let mut dt = f64::INFINITY;
        for (i, &flow) in cache.active().iter().enumerate() {
            let rate = self.params.bandwidth * cache.penalties()[i].rate();
            let slot = self.slots.get(flow).expect("active flow lives in slab");
            let need = if slot.remaining <= slot.eps {
                0.0
            } else {
                slot.remaining / rate
            };
            dt = dt.min(need);
        }
        dt
    }

    /// Moves the clock to `new_time`, invalidating the cache if any
    /// latency gate opens in the crossed interval.
    fn advance_time_to(&mut self, new_time: f64) {
        let old = self.time;
        self.time = new_time;
        if new_time > old {
            let opened: Vec<FlowKey> = self
                .slots
                .iter()
                .filter(|(_, s)| s.gate > old + TIME_EPS && s.gate <= new_time + TIME_EPS)
                .map(|(k, _)| k)
                .collect();
            if !opened.is_empty() {
                let cache = self.cache.get_mut().expect("penalty cache lock");
                for flow in opened {
                    cache.note_arrival(flow);
                }
            }
        }
    }

    /// The next instant at which the network state changes (a gate opens or
    /// a transfer completes), or `None` when idle.
    pub fn next_event_time(&self) -> Option<f64> {
        if self.slots.is_empty() {
            return None;
        }
        let gate = self.next_gate();
        let cache = self.resettle();
        if cache.active().is_empty() {
            return gate;
        }
        let completion = self.time + self.time_to_next_completion(&cache);
        Some(match gate {
            Some(g) => completion.min(g),
            None => completion,
        })
    }

    /// Advances the clock to `t`, returning every transfer that completed
    /// in `(current time, t]`, in completion order.
    ///
    /// # Panics
    /// If `t` is before the current time.
    pub fn advance_to(&mut self, t: f64) -> Vec<CompletedTransfer> {
        assert!(
            t >= self.time - 1e-12,
            "cannot advance backwards ({} -> {t})",
            self.time
        );
        let mut done = Vec::new();
        loop {
            // Settle penalties for the current population, then copy what
            // the integration step needs so the cache borrow ends before
            // any mutation.
            let (active, penalties, rates) = {
                let cache = self.resettle();
                let penalties: Vec<f64> = cache.penalties().iter().map(|p| p.value()).collect();
                let rates: Vec<f64> = cache
                    .penalties()
                    .iter()
                    .map(|p| self.params.bandwidth * p.rate())
                    .collect();
                (cache.active().to_vec(), penalties, rates)
            };

            if active.is_empty() {
                // idle until next gate or the target time
                match self.next_gate() {
                    Some(g) if g <= t => {
                        self.advance_time_to(g);
                        continue;
                    }
                    _ => {
                        let new_time = self.time.max(t);
                        self.advance_time_to(new_time);
                        break;
                    }
                }
            }

            // time to the next completion within the active set
            let mut dt_complete = f64::INFINITY;
            for (i, &flow) in active.iter().enumerate() {
                let slot = self.slots.get(flow).expect("active flow lives in slab");
                let need = if slot.remaining <= slot.eps {
                    0.0
                } else {
                    slot.remaining / rates[i]
                };
                dt_complete = dt_complete.min(need);
            }

            let dt_gate = self.next_gate().map(|g| g - self.time);
            let dt_target = t - self.time;
            let mut dt = dt_complete.min(dt_target);
            if let Some(g) = dt_gate {
                dt = dt.min(g);
            }
            // Nothing further happens before the target time.
            if dt > dt_target + TIME_EPS {
                dt = dt_target;
            }
            if dt.is_nan() || dt < 0.0 {
                dt = 0.0;
            }

            let t0 = self.time;
            self.advance_time_to(t0 + dt);
            let t1 = self.time;
            for (i, &flow) in active.iter().enumerate() {
                let slot = self.slots.get_mut(flow).expect("active flow lives in slab");
                slot.remaining -= rates[i] * dt;
                if self.record_phases && dt > 0.0 {
                    push_phase(&mut slot.phases, t0, t1, penalties[i]);
                }
            }

            // Collect completions. Keys are stable, so removals leave the
            // surviving flows (and the cache's view of them) untouched.
            let completed_now: Vec<FlowKey> = active
                .iter()
                .copied()
                .filter(|&flow| {
                    let slot = self.slots.get(flow).expect("active flow lives in slab");
                    slot.remaining <= slot.eps
                })
                .collect();
            let mut batch: Vec<CompletedTransfer> = completed_now
                .iter()
                .map(|&flow| {
                    let slot = self
                        .slots
                        .remove(flow)
                        .expect("completed flow lives in slab");
                    CompletedTransfer {
                        key: slot.key,
                        completion: self.time,
                        phases: slot.phases,
                    }
                })
                .collect();
            batch.sort_by_key(|c| c.key);
            let had_completions = !batch.is_empty();
            if had_completions {
                let cache = self.cache.get_mut().expect("penalty cache lock");
                for &flow in &completed_now {
                    cache.note_departure(flow);
                }
            }
            done.extend(batch);

            if self.time >= t - TIME_EPS {
                // At the target time, stop — unless this step's completions
                // may have unlocked zero-size work that also finishes at
                // exactly t (dt = 0 case), in which case loop once more.
                let more_zero = had_completions
                    && !self.slots.is_empty()
                    && self.active_flows().iter().any(|&flow| {
                        let slot = self.slots.get(flow).expect("active flow lives in slab");
                        slot.remaining <= slot.eps
                    });
                if !more_zero {
                    break;
                }
            }
        }
        done
    }

    /// Drains the network: advances until every transfer completes.
    pub fn run_to_completion(&mut self) -> Vec<CompletedTransfer> {
        let mut done = Vec::new();
        while let Some(t) = self.next_event_time() {
            done.extend(self.advance_to(t));
        }
        done
    }
}

/// Appends a phase, merging with the previous one when the penalty is
/// unchanged (keeps histories compact across artificial event boundaries).
fn push_phase(phases: &mut Vec<Phase>, t0: f64, t1: f64, penalty: f64) {
    if let Some(last) = phases.last_mut() {
        if (last.penalty - penalty).abs() < 1e-12 && (last.t1 - t0).abs() < 1e-12 {
            last.t1 = t1;
            return;
        }
    }
    phases.push(Phase { t0, t1, penalty });
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::baseline::LinearModel;
    use netbw_core::MyrinetModel;

    fn comm(src: u32, dst: u32, size: u64) -> Communication {
        Communication::new(src, dst, size)
    }

    #[test]
    fn single_transfer_completes_at_reference_time() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(100.0, 0.5));
        net.add(1, comm(0, 1, 1000), 0.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 10.5).abs() < 1e-9);
    }

    #[test]
    fn zero_size_transfer_completes_at_gate() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(100.0, 0.25));
        net.add(7, comm(0, 1, 0), 1.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 1.25).abs() < 1e-12);
    }

    #[test]
    fn myrinet_two_senders_share_then_finish_together() {
        // two comms from one node, same size: penalty 2 each, finish at 2·tref
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 0.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        for d in &done {
            assert!((d.completion - 200.0).abs() < 1e-9, "{d:?}");
        }
    }

    #[test]
    fn late_arrival_slows_the_first_flow_mid_transfer() {
        // flow A alone for 50 s (50 bytes done), then B arrives sharing the
        // source: both at penalty 2. A needs 100 more seconds → 150 total.
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit())
            .with_phase_recording();
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 50.0);
        let done = net.run_to_completion();
        let a = done.iter().find(|d| d.key == 0).unwrap();
        let b = done.iter().find(|d| d.key == 1).unwrap();
        assert!((a.completion - 150.0).abs() < 1e-9, "a: {}", a.completion);
        // B: 50 bytes while sharing (100 s), then 50 bytes alone (50 s) → 200.
        assert!((b.completion - 200.0).abs() < 1e-9, "b: {}", b.completion);
        // phases of A: penalty 1 then 2
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].penalty, 1.0);
        assert_eq!(a.phases[1].penalty, 2.0);
        // and B: 2 then 1
        assert_eq!(b.phases.len(), 2);
        assert_eq!(b.phases[0].penalty, 2.0);
        assert_eq!(b.phases[1].penalty, 1.0);
    }

    #[test]
    fn advance_to_reports_partial_progress_only_at_completions() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        assert!(net.advance_to(40.0).is_empty());
        assert_eq!(net.in_flight(), 1);
        let done = net.advance_to(100.0);
        assert_eq!(done.len(), 1);
        assert!((done[0].completion - 100.0).abs() < 1e-9);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn next_event_time_accounts_for_gates_and_completions() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::new(1.0, 2.0));
        net.add(0, comm(0, 1, 10), 0.0); // gate 2, completes 12
        net.add(1, comm(2, 3, 1), 5.0); // gate 7, completes 8
        assert_eq!(net.next_event_time(), Some(2.0)); // before gate 0 opens: idle → gate
        net.advance_to(2.0);
        // now flow 0 active, next events: completion 12 vs gate 7
        assert_eq!(net.next_event_time(), Some(7.0));
        net.advance_to(7.0);
        let e = net.next_event_time().unwrap();
        assert!((e - 8.0).abs() < 1e-9);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot advance backwards")]
    fn advance_backwards_panics() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 10), 0.0);
        net.advance_to(5.0);
        net.advance_to(1.0);
    }

    #[test]
    #[should_panic(expected = "network time is already")]
    fn add_in_the_past_panics() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        net.add(0, comm(0, 1, 10), 0.0);
        net.advance_to(5.0);
        net.add(1, comm(0, 2, 10), 1.0);
    }

    #[test]
    fn simultaneous_completions_all_reported() {
        let mut net = FluidNetwork::new(LinearModel, NetworkParams::unit());
        for k in 0..4u64 {
            net.add(k, comm(k as u32 * 2, k as u32 * 2 + 1, 100), 0.0);
        }
        let done = net.advance_to(100.0);
        assert_eq!(done.len(), 4);
        let mut keys: Vec<_> = done.iter().map(|d| d.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bytes_are_conserved_through_phase_changes() {
        // sum over phases of rate×duration must equal the transfer size
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit())
            .with_phase_recording();
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 57), 0.0);
        net.add(2, comm(3, 2, 41), 10.0);
        let done = net.run_to_completion();
        for d in &done {
            let moved: f64 = d.phases.iter().map(|ph| (ph.t1 - ph.t0) / ph.penalty).sum();
            let size = [100.0, 57.0, 41.0][d.key as usize];
            assert!(
                (moved - size).abs() < 1e-6,
                "key {}: moved {moved}, size {size}",
                d.key
            );
        }
    }

    #[test]
    fn cache_queries_only_on_population_changes() {
        // Three flows from one source, staggered starts: the population
        // changes at each arrival and each completion. Time advances and
        // next_event_time probes in between must be free.
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::unit());
        net.add(0, comm(0, 1, 100), 0.0);
        net.add(1, comm(0, 2, 100), 10.0);
        net.add(2, comm(0, 3, 100), 20.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 3);
        let stats = net.cache_stats();
        // 6 population changes (3 arrivals/gate openings + 3 departures);
        // allow a couple of boundary resettles but nowhere near the
        // pre-refactor 2-queries-per-solver-iteration behaviour.
        assert!(
            stats.model_queries <= 8,
            "expected ≤8 model queries, got {stats:?}"
        );
        assert!(stats.reuses > 0, "cache never reused: {stats:?}");
    }

    #[test]
    fn incremental_and_full_recompute_agree() {
        // Identical staggered workloads through both engines: completions
        // must match exactly, while the incremental engine queries the
        // model strictly less often.
        let starts = [0.0, 3.0, 3.0, 7.0, 11.0, 30.0];
        let mut fast = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(2.0, 0.5));
        let mut slow = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(2.0, 0.5))
            .with_full_recompute();
        for (k, &s) in starts.iter().enumerate() {
            let c = comm(k as u32 % 3, 3 + k as u32 % 2, 50 + 13 * k as u64);
            fast.add(k as u64, c, s);
            slow.add(k as u64, c, s);
        }
        let mut a = fast.run_to_completion();
        let mut b = slow.run_to_completion();
        a.sort_by_key(|d| d.key);
        b.sort_by_key(|d| d.key);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert!(
                (x.completion - y.completion).abs() < 1e-9,
                "key {}: {} vs {}",
                x.key,
                x.completion,
                y.completion
            );
        }
        assert!(
            fast.cache_stats().model_queries < slow.cache_stats().model_queries,
            "incremental {:?} should query less than baseline {:?}",
            fast.cache_stats(),
            slow.cache_stats()
        );
    }
}
