//! Base network parameters for time predictions.

/// Uncontended transfer parameters of one fabric.
///
/// `bandwidth` is the *single-stream* goodput — the rate realised by one
/// `MPI_Send` with no concurrency. This is the paper's `Tref` convention:
/// penalties are relative to a lone transfer, so the single-stream
/// efficiency (β for TCP) is already folded into the reference and must be
/// folded in here too.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkParams {
    /// Single-stream goodput in bytes/second.
    pub bandwidth: f64,
    /// Per-message startup latency in seconds (envelope + handshake);
    /// paid once, before the flow starts contending for bandwidth.
    pub latency: f64,
}

impl NetworkParams {
    /// Builds parameters, validating positivity.
    ///
    /// # Panics
    /// If `bandwidth <= 0` or `latency < 0`.
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(latency >= 0.0, "latency must be non-negative");
        NetworkParams { bandwidth, latency }
    }

    /// The paper's Gigabit Ethernet cluster (IBM e326, MPICH/TCP): 1 Gb/s
    /// line, single-stream efficiency β = 0.75 → 93.75 MB/s goodput.
    pub fn gige() -> Self {
        NetworkParams::new(0.75 * 125e6, 55e-6)
    }

    /// The paper's Myrinet 2000 cluster (IBM e325, MPICH-MX): ~2 Gb/s
    /// links; 226 MB/s single-stream goodput reproduces the Fig. 7
    /// reference time (`tref = 0.0354 s` at 8 MB).
    pub fn myrinet2000() -> Self {
        NetworkParams::new(226e6, 9e-6)
    }

    /// The paper's InfiniHost III cluster (BULL Novascale): 4X SDR
    /// (1 GB/s data rate), single-stream efficiency 0.8625.
    pub fn infinihost3() -> Self {
        NetworkParams::new(0.8625 * 1e9, 5e-6)
    }

    /// Idealised loss-free network for unit tests: 1 byte/s, no latency —
    /// completion times equal transferred bytes × penalty.
    pub fn unit() -> Self {
        NetworkParams::new(1.0, 0.0)
    }

    /// Uncontended transfer time for `size` bytes (the paper's `Tref`).
    pub fn reference_time(&self, size: u64) -> f64 {
        self.latency + size as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_time_is_linear() {
        let p = NetworkParams::new(100.0, 0.5);
        assert_eq!(p.reference_time(0), 0.5);
        assert_eq!(p.reference_time(1000), 0.5 + 10.0);
    }

    #[test]
    fn presets_are_sane() {
        for p in [
            NetworkParams::gige(),
            NetworkParams::myrinet2000(),
            NetworkParams::infinihost3(),
            NetworkParams::unit(),
        ] {
            assert!(p.bandwidth > 0.0);
            assert!(p.latency >= 0.0);
        }
        // Fig. 7 reference: 8 MB over Myrinet ≈ 0.0354 s.
        let tref = NetworkParams::myrinet2000().reference_time(8_000_000);
        assert!((tref - 0.0354).abs() < 4e-4, "tref {tref}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        NetworkParams::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "latency must be non-negative")]
    fn rejects_negative_latency() {
        NetworkParams::new(1.0, -1.0);
    }
}
