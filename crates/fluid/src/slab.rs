//! Stable-key slab storage for in-flight transfers.
//!
//! The pre-slab `FluidNetwork` kept its transfer slots in a `Vec` and
//! removed completions with `swap_remove`, which renumbered every
//! surviving slot — so a completion batch invalidated the *identity* of
//! the whole cached population and the `PenaltyCache` had to rebuild from
//! scratch. This slab hands out [`FlowKey`]s that survive arbitrary
//! insert/remove churn: survivors keep their keys and their relative
//! iteration order, which is exactly the invariant the positional
//! [`netbw_core::PopulationDelta`] needs to patch instead of rebuild.
//!
//! Keys are *generational*: a slot freed by a completion can be re-used by
//! a later arrival, but the new occupant gets a fresh generation, so a
//! stale key can never silently alias a new flow. Lookups with a stale key
//! return `None`.
//!
//! Iteration order is slot order, not insertion order: an arrival re-using
//! a freed low slot appears *before* older survivors. That is harmless for
//! delta derivation (arrival positions are reported explicitly) and keeps
//! every operation O(1).

/// Stable handle to an entry in a [`Slab`].
///
/// Packs the slot index (low 32 bits) and the slot's generation at
/// insertion time (high 32 bits). Two keys are equal iff they name the
/// same occupancy of the same slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey(u64);

impl FlowKey {
    fn new(index: u32, generation: u32) -> Self {
        FlowKey(u64::from(generation) << 32 | u64::from(index))
    }

    /// The slot index — the slab's iteration order. Distinct live keys
    /// never share an index, so sorting live keys by `slot_index` yields
    /// exactly the order [`Slab::iter`] would visit them in.
    #[inline]
    pub(crate) fn slot_index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    #[inline]
    fn index(self) -> usize {
        self.slot_index()
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow#{}.{}", self.index(), self.generation())
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    /// Bumped on every removal, so stale keys miss.
    generation: u32,
    /// Bumped by [`Slab::bump_epoch`] while the slot is occupied; reset on
    /// insert. The event timeline stamps its heap entries with this, so a
    /// re-anchored flow's older entries become recognizably stale without
    /// the heap ever being searched.
    epoch: u64,
    value: Option<T>,
}

/// A generational slab: O(1) insert/remove/lookup with stable keys and
/// slot-ordered iteration. Cloning deep-copies every slot verbatim —
/// generations, epochs and free-list included — so a clone hands out the
/// exact same key sequence the original would.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab::default()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Removes every entry while keeping the allocated capacity, leaving
    /// the slab indistinguishable from a freshly built one (generations
    /// restart at zero, so reused slabs hand out the same key sequence a
    /// new slab would — which is what keeps network reuse bit-for-bit
    /// reproducible). All previously issued keys become stale.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.len = 0;
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Makes `target` an exact copy of `self` — generations, epochs and
    /// free-list included — while reusing `target`'s allocations. The
    /// allocation-preserving counterpart of `clone`: a forked slab hands
    /// out the same key sequence the original would.
    pub fn fork_into(&self, target: &mut Self)
    where
        T: Clone,
    {
        target.entries.clone_from(&self.entries);
        target.free.clone_from(&self.free);
        target.len = self.len;
    }

    /// Stores `value`, returning its stable key. Freed slots are re-used
    /// (with a fresh generation) before the slab grows.
    pub fn insert(&mut self, value: T) -> FlowKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            debug_assert!(entry.value.is_none());
            entry.value = Some(value);
            entry.epoch = 0;
            FlowKey::new(index, entry.generation)
        } else {
            let index = u32::try_from(self.entries.len()).expect("slab capacity exceeds u32");
            self.entries.push(Entry {
                generation: 0,
                epoch: 0,
                value: Some(value),
            });
            FlowKey::new(index, 0)
        }
    }

    /// Removes and returns the entry named by `key`; `None` if the key is
    /// stale (already removed, or its slot re-used by a newer entry).
    pub fn remove(&mut self, key: FlowKey) -> Option<T> {
        let entry = self.entries.get_mut(key.index())?;
        if entry.generation != key.generation() {
            return None;
        }
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(key.index() as u32);
        self.len -= 1;
        Some(value)
    }

    /// Shared access to the entry named by `key`, if current.
    pub fn get(&self, key: FlowKey) -> Option<&T> {
        let entry = self.entries.get(key.index())?;
        if entry.generation != key.generation() {
            return None;
        }
        entry.value.as_ref()
    }

    /// Mutable access to the entry named by `key`, if current.
    pub fn get_mut(&mut self, key: FlowKey) -> Option<&mut T> {
        let entry = self.entries.get_mut(key.index())?;
        if entry.generation != key.generation() {
            return None;
        }
        entry.value.as_mut()
    }

    /// True when `key` names a live entry.
    pub fn contains(&self, key: FlowKey) -> bool {
        self.get(key).is_some()
    }

    /// The entry's current epoch stamp, `None` for stale keys. Fresh
    /// occupancies start at epoch 0.
    pub fn epoch(&self, key: FlowKey) -> Option<u64> {
        let entry = self.entries.get(key.index())?;
        if entry.generation != key.generation() || entry.value.is_none() {
            return None;
        }
        Some(entry.epoch)
    }

    /// Bumps and returns the entry's epoch stamp, invalidating every
    /// previously issued `(key, epoch)` pair for this occupancy; `None`
    /// for stale keys. The event timeline calls this exactly when a flow's
    /// cached finish time changes, so heap entries carrying older epochs
    /// can be discarded lazily on pop.
    pub fn bump_epoch(&mut self, key: FlowKey) -> Option<u64> {
        let entry = self.entries.get_mut(key.index())?;
        if entry.generation != key.generation() || entry.value.is_none() {
            return None;
        }
        entry.epoch += 1;
        Some(entry.epoch)
    }

    /// Iterates occupied slots in slot order. Survivors keep their
    /// relative order across any sequence of removals.
    pub fn iter(&self) -> impl Iterator<Item = (FlowKey, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value
                .as_ref()
                .map(|v| (FlowKey::new(i as u32, e.generation), v))
        })
    }

    /// Mutable variant of [`Self::iter`].
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (FlowKey, &mut T)> {
        self.entries.iter_mut().enumerate().filter_map(|(i, e)| {
            let generation = e.generation;
            e.value
                .as_mut()
                .map(move |v| (FlowKey::new(i as u32, generation), v))
        })
    }

    /// Keys of the occupied slots, in slot order.
    pub fn keys(&self) -> impl Iterator<Item = FlowKey> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// A raw, thread-shareable view of the slab's entries for the sharded
    /// engine's parallel settle barrier. The view is `Copy`: every settle
    /// job captures its own copy and works through it unchecked.
    ///
    /// The borrow handed in here is consumed immediately (the view carries
    /// no lifetime), so the *caller* is responsible for the aliasing
    /// discipline the borrow checker would otherwise enforce — see
    /// [`RawSlots`].
    pub(crate) fn raw(&mut self) -> RawSlots<T> {
        RawSlots {
            entries: self.entries.as_mut_ptr(),
            len: self.entries.len(),
        }
    }
}

/// Unchecked entry access into a [`Slab`] from concurrently running settle
/// jobs, justified by partition disjointness: the sharded engine's jobs
/// each touch only the keys of their own shard's members, and distinct
/// live keys never share a slot, so no two jobs ever touch the same entry.
///
/// # Safety contract (callers)
///
/// * The source slab must outlive every use of the view, with no
///   structural mutation (insert/remove/clear/grow) while any view is
///   live — generations and the entry array are frozen for the duration.
/// * Two concurrent users must never pass the same live key — entry
///   *contents* (value and epoch) are accessed without synchronization.
/// * Keys whose slot was reused by another shard's flow are safe to
///   *probe* (`contains`): liveness is derived from the generation stamp
///   alone, never from the value discriminant, whose bytes may alias
///   in-flight writes to the new occupant by its owning job.
pub(crate) struct RawSlots<T> {
    entries: *mut Entry<T>,
    len: usize,
}

impl<T> Clone for RawSlots<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RawSlots<T> {}
// SAFETY: a RawSlots is just an unchecked window into the slab; the
// aliasing rules above make cross-thread use sound exactly when T's
// values may be sent between threads.
unsafe impl<T: Send> Send for RawSlots<T> {}
unsafe impl<T: Send> Sync for RawSlots<T> {}

impl<T> RawSlots<T> {
    /// The entry for `key` if its occupancy is live, by generation stamp
    /// alone.
    ///
    /// # Safety
    ///
    /// See the type-level contract: the slab must be structurally frozen
    /// and no other thread may concurrently access this *live* key.
    unsafe fn entry(&self, key: FlowKey) -> Option<*mut Entry<T>> {
        let i = key.index();
        if i >= self.len {
            return None;
        }
        let e = unsafe { self.entries.add(i) };
        // `Slab::remove` always bumps the generation, so a generation
        // match for an issued key implies the occupancy is live — checked
        // WITHOUT reading the value discriminant, which (niche-packed)
        // may alias bytes another job is writing to a reused slot.
        if unsafe { (*e).generation } != key.generation() {
            return None;
        }
        Some(e)
    }

    /// True when `key` names a live occupancy.
    ///
    /// # Safety
    ///
    /// The slab must be structurally frozen (no concurrent generation
    /// writes); concurrent *value* writes by the key's owner are fine.
    #[cfg(test)]
    pub(crate) unsafe fn contains(&self, key: FlowKey) -> bool {
        unsafe { self.entry(key) }.is_some()
    }

    /// Mutable access to the entry named by `key`, if live. The returned
    /// lifetime is unbounded — the caller scopes it.
    ///
    /// # Safety
    ///
    /// See the type-level contract; additionally the caller must not hold
    /// two returned borrows of the same entry at once.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut<'a>(&self, key: FlowKey) -> Option<&'a mut T> {
        let e = unsafe { self.entry(key) }?;
        // generation matched, so the value is Some — but go through the
        // checked path anyway; the owner is the only writer, so reading
        // the discriminant here is race-free.
        unsafe { (*e).value.as_mut() }
    }

    /// Bumps and returns the entry's epoch stamp, if live — the raw twin
    /// of [`Slab::bump_epoch`].
    ///
    /// # Safety
    ///
    /// See the type-level contract: this writes the entry, so the caller
    /// must own `key`.
    pub(crate) unsafe fn bump_epoch(&self, key: FlowKey) -> Option<u64> {
        let e = unsafe { self.entry(key) }?;
        unsafe {
            (*e).epoch += 1;
            Some((*e).epoch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&"b"));
    }

    #[test]
    fn survivor_keys_are_stable_across_removals() {
        let mut slab = Slab::new();
        let keys: Vec<FlowKey> = (0..8).map(|i| slab.insert(i)).collect();
        slab.remove(keys[0]);
        slab.remove(keys[3]);
        slab.remove(keys[7]);
        for (i, &k) in keys.iter().enumerate() {
            if [0, 3, 7].contains(&i) {
                assert!(!slab.contains(k));
            } else {
                assert_eq!(slab.get(k), Some(&i));
            }
        }
        // iteration preserves the survivors' relative order
        let survivors: Vec<usize> = slab.iter().map(|(_, &v)| v).collect();
        assert_eq!(survivors, vec![1, 2, 4, 5, 6]);
    }

    #[test]
    fn stale_keys_never_alias_reused_slots() {
        let mut slab = Slab::new();
        let old = slab.insert("old");
        slab.remove(old);
        let new = slab.insert("new");
        // the slot is re-used but the generation differs
        assert_ne!(old, new);
        assert_eq!(slab.get(old), None);
        assert_eq!(slab.remove(old), None);
        assert_eq!(slab.get(new), Some(&"new"));
    }

    #[test]
    fn iter_mut_and_keys_agree_with_iter() {
        let mut slab = Slab::new();
        let _a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(b);
        let _c = slab.insert(3);
        for (_, v) in slab.iter_mut() {
            *v *= 10;
        }
        let via_iter: Vec<(FlowKey, i32)> = slab.iter().map(|(k, &v)| (k, v)).collect();
        let keys: Vec<FlowKey> = slab.keys().collect();
        assert_eq!(via_iter.iter().map(|&(k, _)| k).collect::<Vec<_>>(), keys);
        let mut values: Vec<i32> = via_iter.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![10, 30]);
    }

    #[test]
    fn epochs_start_fresh_per_occupancy_and_bump_monotonically() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        assert_eq!(slab.epoch(a), Some(0));
        assert_eq!(slab.bump_epoch(a), Some(1));
        assert_eq!(slab.bump_epoch(a), Some(2));
        assert_eq!(slab.epoch(a), Some(2));
        // removal stales the key for epochs too
        slab.remove(a);
        assert_eq!(slab.epoch(a), None);
        assert_eq!(slab.bump_epoch(a), None);
        // a re-used slot starts at epoch 0 again, and the old key still
        // misses
        let b = slab.insert("b");
        assert_eq!(b.slot_index(), a.slot_index());
        assert_eq!(slab.epoch(b), Some(0));
        assert_eq!(slab.epoch(a), None);
    }

    #[test]
    fn raw_view_agrees_with_checked_access() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(a);
        let c = slab.insert(3); // reuses a's slot under a new generation
        let raw = slab.raw();
        unsafe {
            assert!(!raw.contains(a), "stale key must miss by generation");
            assert!(raw.contains(b));
            assert!(raw.contains(c));
            *raw.get_mut(b).unwrap() = 20;
            assert_eq!(raw.bump_epoch(c), Some(1));
            assert!(raw.get_mut(a).is_none());
            assert!(raw.bump_epoch(a).is_none());
        }
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.epoch(c), Some(1));
        assert_eq!(slab.epoch(b), Some(0));
    }

    #[test]
    fn display_shows_slot_and_generation() {
        let mut slab = Slab::new();
        let a = slab.insert(());
        slab.remove(a);
        let b = slab.insert(());
        assert_eq!(a.to_string(), "flow#0.0");
        assert_eq!(b.to_string(), "flow#0.1");
    }
}
