//! How the sharded engine hands per-shard settles to an executor.
//!
//! [`crate::FluidNetwork::with_sharded`] splits one settle into
//! independent per-shard penalty refreshes. This crate cannot depend on
//! `netbw-eval` (the dependency runs the other way), so the engine talks
//! to whatever executor the caller supplies through the tiny
//! [`SettleDispatch`] trait: `netbw-eval` implements it for its
//! work-stealing `SweepExecutor`, and the built-in [`SerialDispatch`] runs
//! the jobs in order on the calling thread (the default, and the honest
//! single-core baseline).
//!
//! A [`SettleJob`] is a one-shot closure over `&mut` shard state borrowed
//! for the duration of one settle barrier — which is why the dispatch
//! contract is "run every job exactly once, then return": the engine's
//! borrows end when `run_settles` does. Implementations must propagate a
//! panicking job to the caller (scoped-thread joins do this for free);
//! swallowing one would leave a shard half-refreshed behind a barrier that
//! claims it settled.

/// One shard's settle work: a one-shot closure, boxed so dispatchers can
/// move it between threads. The borrow it captures lives only as long as
/// the enclosing [`SettleDispatch::run_settles`] call.
pub struct SettleJob<'scope>(Option<Box<dyn FnOnce() + Send + 'scope>>);

impl<'scope> SettleJob<'scope> {
    /// Wraps a shard refresh into a dispatchable job.
    pub fn new(f: impl FnOnce() + Send + 'scope) -> Self {
        SettleJob(Some(Box::new(f)))
    }

    /// Runs the job. Idempotent: the closure runs at most once, so a
    /// defensive double-run is a no-op rather than a double refresh.
    pub fn run(&mut self) {
        if let Some(f) = self.0.take() {
            f();
        }
    }

    /// Whether [`Self::run`] has already consumed the closure.
    pub fn is_done(&self) -> bool {
        self.0.is_none()
    }
}

impl std::fmt::Debug for SettleJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SettleJob")
            .field("done", &self.is_done())
            .finish()
    }
}

/// An executor for one settle barrier's worth of independent shard jobs.
///
/// Contract: every job in `jobs` runs exactly once before `run_settles`
/// returns, and a panicking job propagates to the caller (it must not be
/// swallowed — the settle barrier above relies on "returned normally"
/// meaning "every shard refreshed").
pub trait SettleDispatch: Send + Sync {
    /// Runs every job to completion.
    fn run_settles(&self, jobs: &mut [SettleJob<'_>]);
}

/// Runs the jobs in order on the calling thread — the default dispatcher,
/// and the reference behaviour every parallel dispatcher must match
/// bit-for-bit (trivially true: the jobs are independent).
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialDispatch;

impl SettleDispatch for SerialDispatch {
    fn run_settles(&self, jobs: &mut [SettleJob<'_>]) {
        for job in jobs {
            job.run();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_dispatch_runs_every_job_once() {
        let counter = AtomicUsize::new(0);
        let mut jobs: Vec<SettleJob> = (0..5)
            .map(|_| {
                SettleJob::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        SerialDispatch.run_settles(&mut jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 5);
        assert!(jobs.iter().all(SettleJob::is_done));
        // double dispatch is a no-op, not a double refresh
        SerialDispatch.run_settles(&mut jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn jobs_can_mutate_borrowed_state() {
        let mut cells = [0u64, 0, 0];
        let mut jobs: Vec<SettleJob> = cells
            .iter_mut()
            .enumerate()
            .map(|(i, c)| SettleJob::new(move || *c = i as u64 + 1))
            .collect();
        SerialDispatch.run_settles(&mut jobs);
        drop(jobs);
        assert_eq!(cells, [1, 2, 3]);
    }
}
