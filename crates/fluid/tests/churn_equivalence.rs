//! End-to-end equivalence of the incremental fluid engine against the
//! full-recompute oracle, plus the `PopulationDelta` edge cases the slab
//! refactor must not regress: empty (cancelled) deltas, simultaneous
//! arrival+departure of the same endpoint pair (now served as a chained
//! mixed delta), and completion-batch ordering. Schedules come from the
//! shared churn generator in `netbw-bench` — the same source the churn
//! bench and the `churn_smoke` CI guard draw from.

use netbw_bench::churn_transfers_seeded;
use netbw_core::{GigabitEthernetModel, InfinibandModel, MyrinetModel, PenaltyModel};
use netbw_fluid::{FluidNetwork, NetworkParams};
use netbw_graph::Communication;
use proptest::prelude::*;

/// Drains `transfers` through a fresh network, returning `(key, completion)`
/// sorted by key, plus the cache stats.
fn drain<M: PenaltyModel>(
    model: M,
    transfers: &[(u64, Communication, f64)],
    full_recompute: bool,
) -> (Vec<(u64, f64)>, netbw_fluid::CacheStats) {
    let mut net = FluidNetwork::new(model, NetworkParams::new(2.0, 0.25));
    if full_recompute {
        net = net.with_full_recompute();
    }
    let mut sorted = transfers.to_vec();
    sorted.sort_by(|a, b| a.2.total_cmp(&b.2));
    for &(key, comm, start) in &sorted {
        net.add(key, comm, start);
    }
    let mut done: Vec<(u64, f64)> = net
        .run_to_completion()
        .into_iter()
        .map(|c| (c.key, c.completion))
        .collect();
    done.sort_by_key(|&(k, _)| k);
    let stats = net.cache_stats();
    (done, stats)
}

/// Schedules from the shared churn generator: seeded bounded-degree
/// fabrics, with staggers from dense (0: every flow arrives at once) to
/// sparse — the same generator the churn bench and `churn_smoke` use.
fn arb_transfers() -> impl Strategy<Value = Vec<(u64, Communication, f64)>> {
    (0u64..1_000_000, 2usize..24, 0usize..4).prop_map(|(seed, flows, stagger_pick)| {
        let stagger = [0.0, 0.5, 5.0, 40.0][stagger_pick];
        churn_transfers_seeded(flows, stagger, seed)
    })
}

proptest! {
    /// Incremental == full recompute on random churn for all three
    /// specialized models: identical completion times (bitwise — the
    /// penalties are bit-for-bit equal, so the integrations are too),
    /// with the incremental engine issuing no more model queries, every
    /// settle after the first reaching the model as a positional delta
    /// (mixed batches included), and every offered delta actually
    /// patched.
    #[test]
    fn incremental_engine_matches_oracle_on_random_churn(transfers in arb_transfers()) {
        macro_rules! check {
            ($model:expr) => {{
                let (fast, fast_stats) = drain($model, &transfers, false);
                let (slow, slow_stats) = drain($model, &transfers, true);
                prop_assert_eq!(fast.len(), slow.len());
                for (&(ka, ta), &(kb, tb)) in fast.iter().zip(&slow) {
                    prop_assert_eq!(ka, kb);
                    prop_assert_eq!(ta.to_bits(), tb.to_bits(),
                        "key {}: {} vs {}", ka, ta, tb);
                }
                prop_assert!(fast_stats.model_queries <= slow_stats.model_queries);
                prop_assert!(fast_stats.rebuild_queries() <= 1,
                    "only the first settle may rebuild: {:?}", fast_stats);
                prop_assert_eq!(fast_stats.patched_queries, fast_stats.delta_queries,
                    "every offered delta must be patched at these sizes: {:?}", fast_stats);
            }};
        }
        check!(GigabitEthernetModel::default());
        check!(MyrinetModel::default());
        check!(InfinibandModel::default());
    }
}

#[test]
fn zero_size_flash_is_served_by_patches_not_rebuilds() {
    // A zero-size transfer arrives and completes inside one event step.
    // Its arrival and departure are separated by one settle, so the engine
    // serves the flash with two incremental patches (`Arrived` then
    // `Departed`); only the very first settle of the run may rebuild.
    // (Pure cancellation — arrival and departure with *no* settle between,
    // an empty delta — is covered by the `PenaltyCache` unit tests.)
    let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
    net.add(0, Communication::new(0u32, 1u32, 1000), 0.0);
    net.advance_to(10.0);
    net.add(1, Communication::new(2u32, 3u32, 0), 10.0);
    let done = net.advance_to(10.0);
    assert_eq!(done.len(), 1, "zero-size flow completes instantly");
    assert_eq!(done[0].key, 1);
    let rest = net.run_to_completion();
    assert_eq!(rest.len(), 1);
    assert!((rest[0].completion - 1000.0).abs() < 1e-9);
    let stats = net.cache_stats();
    assert_eq!(
        stats.rebuild_queries(),
        1,
        "only the first settle may rebuild: {stats:?}"
    );
    assert!(stats.delta_queries >= 2, "{stats:?}");
}

#[test]
fn same_endpoint_pair_arrival_and_departure_in_one_batch() {
    // Flow A (0→1) completes at t=100 exactly when flow B with the *same
    // endpoint pair* opens its gate: the cache sees a mixed batch — now
    // served as a chained positional delta that the model patches — and
    // both engines must agree.
    for full in [false, true] {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
        if full {
            net = net.with_full_recompute();
        }
        net.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        net.add(1, Communication::new(0u32, 1u32, 100), 100.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        assert!((done[0].completion - 100.0).abs() < 1e-9, "full={full}");
        assert!((done[1].completion - 200.0).abs() < 1e-9, "full={full}");
        if !full {
            let stats = net.cache_stats();
            assert_eq!(
                stats.rebuild_queries(),
                1,
                "the mixed settle must stay positional: {stats:?}"
            );
            assert_eq!(
                stats.patched_queries, stats.delta_queries,
                "and must actually be patched: {stats:?}"
            );
        }
    }
}

#[test]
fn completion_batches_report_keys_in_order_and_patch_survivors() {
    // Four equal flows from one source complete simultaneously while two
    // more (staggered) survive: the batch must come out in key order and
    // the survivors' penalties must drop from 6 to 2 — an incremental
    // `Departed` patch over the slab.
    let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
    for k in 0..4u64 {
        net.add(10 + k, Communication::new(0u32, 1 + k as u32, 600), 0.0);
    }
    net.add(2, Communication::new(0u32, 8u32, 1000), 0.0);
    net.add(1, Communication::new(0u32, 9u32, 1000), 0.0);
    // all six share source 0: penalty 6 each; the four 600-byte flows
    // complete together at t = 3600.
    let batch = net.advance_to(3600.0);
    assert_eq!(batch.len(), 4);
    let keys: Vec<u64> = batch.iter().map(|c| c.key).collect();
    assert_eq!(keys, vec![10, 11, 12, 13], "batch sorted by caller key");
    // survivors continue at penalty 2: 400 bytes left × 2 = 800 s
    let rest = net.run_to_completion();
    assert_eq!(rest.len(), 2);
    for c in &rest {
        assert!((c.completion - 4400.0).abs() < 1e-9, "{c:?}");
    }
    let stats = net.cache_stats();
    assert!(
        stats.delta_queries >= 1,
        "the departure batch must reach the model as a positional delta: {stats:?}"
    );
}
