//! End-to-end equivalence of the incremental fluid engine against the
//! full-recompute oracle, plus the `PopulationDelta` edge cases the slab
//! refactor must not regress: empty (cancelled) deltas, simultaneous
//! arrival+departure of the same endpoint pair (now served as a chained
//! mixed delta), and completion-batch ordering. Schedules come from the
//! shared churn generator in `netbw-bench` — the same source the churn
//! bench and the `churn_smoke` CI guard draw from.

use netbw_bench::churn_transfers_seeded;
use netbw_core::{GigabitEthernetModel, InfinibandModel, MyrinetModel, PenaltyModel};
use netbw_fluid::{FluidNetwork, NetworkParams, TimelineStats};
use netbw_graph::Communication;
use proptest::prelude::*;

/// The three engine configurations under test: the event-heap timeline
/// (default), the pre-heap linear scans over the incremental cache, and
/// the pre-refactor full-recompute oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Heap,
    Linear,
    Oracle,
}

fn build<M: PenaltyModel>(model: M, mode: Mode) -> FluidNetwork<M> {
    let net = FluidNetwork::new(model, NetworkParams::new(2.0, 0.25));
    match mode {
        Mode::Heap => net,
        Mode::Linear => net.with_linear_timeline(),
        Mode::Oracle => net.with_full_recompute(),
    }
}

/// Adds `transfers` (sorted by start) and drains the network, returning
/// `(key, completion)` sorted by key.
fn drain_into<M: PenaltyModel>(
    net: &mut FluidNetwork<M>,
    transfers: &[(u64, Communication, f64)],
) -> Vec<(u64, f64)> {
    let mut sorted = transfers.to_vec();
    sorted.sort_by(|a, b| a.2.total_cmp(&b.2));
    for &(key, comm, start) in &sorted {
        net.add(key, comm, start);
    }
    let mut done: Vec<(u64, f64)> = net
        .run_to_completion()
        .into_iter()
        .map(|c| (c.key, c.completion))
        .collect();
    done.sort_by_key(|&(k, _)| k);
    done
}

/// Drains `transfers` through a fresh network in the given mode, returning
/// `(key, completion)` sorted by key, plus the cache and timeline stats.
fn drain<M: PenaltyModel>(
    model: M,
    transfers: &[(u64, Communication, f64)],
    mode: Mode,
) -> (Vec<(u64, f64)>, netbw_fluid::CacheStats, TimelineStats) {
    let mut net = build(model, mode);
    let done = drain_into(&mut net, transfers);
    let stats = net.cache_stats();
    let timeline = net.timeline_stats();
    (done, stats, timeline)
}

/// Schedules from the shared churn generator: seeded bounded-degree
/// fabrics, with staggers from dense (0: every flow arrives at once) to
/// sparse — the same generator the churn bench and `churn_smoke` use.
fn arb_transfers() -> impl Strategy<Value = Vec<(u64, Communication, f64)>> {
    (0u64..1_000_000, 2usize..24, 0usize..4).prop_map(|(seed, flows, stagger_pick)| {
        let stagger = [0.0, 0.5, 5.0, 40.0][stagger_pick];
        churn_transfers_seeded(flows, stagger, seed)
    })
}

proptest! {
    /// Heap timeline == linear scans == full recompute on random churn for
    /// all three specialized models: identical completion times (bitwise —
    /// the three modes share the anchored-finish arithmetic and the
    /// penalties are bit-for-bit equal, so the cached finish times are
    /// too), with the incremental engine issuing no more model queries,
    /// every settle after the first reaching the model as a positional
    /// delta (mixed batches included), and every offered delta actually
    /// patched.
    #[test]
    fn heap_engine_matches_linear_and_oracle_on_random_churn(transfers in arb_transfers()) {
        macro_rules! check {
            ($model:expr) => {{
                let (fast, fast_stats, fast_timeline) = drain($model, &transfers, Mode::Heap);
                let (lin, _, lin_timeline) = drain($model, &transfers, Mode::Linear);
                let (slow, slow_stats, _) = drain($model, &transfers, Mode::Oracle);
                prop_assert_eq!(fast.len(), slow.len());
                prop_assert_eq!(fast.len(), lin.len());
                for ((&(ka, ta), &(kl, tl)), &(kb, tb)) in fast.iter().zip(&lin).zip(&slow) {
                    prop_assert_eq!(ka, kb);
                    prop_assert_eq!(ka, kl);
                    prop_assert_eq!(ta.to_bits(), tb.to_bits(),
                        "heap vs oracle, key {}: {} vs {}", ka, ta, tb);
                    prop_assert_eq!(ta.to_bits(), tl.to_bits(),
                        "heap vs linear, key {}: {} vs {}", ka, ta, tl);
                }
                prop_assert!(fast_stats.model_queries <= slow_stats.model_queries);
                prop_assert!(fast_stats.rebuild_queries() <= 1,
                    "only the first settle may rebuild: {:?}", fast_stats);
                prop_assert_eq!(fast_stats.patched_queries, fast_stats.delta_queries,
                    "every offered delta must be patched at these sizes: {:?}", fast_stats);
                // heap hygiene: stale entries never outnumber pushes, the
                // only full resync is the first settle's rebuild, and the
                // linear ablation never touches the heaps
                prop_assert!(fast_timeline.lazy_pops <= fast_timeline.heap_pushes,
                    "{:?}", fast_timeline);
                prop_assert!(fast_timeline.heap_pushes >= transfers.len() as u64,
                    "every flow anchors at least once: {:?}", fast_timeline);
                prop_assert_eq!(fast_timeline.rescans, 1, "{:?}", fast_timeline);
                prop_assert_eq!(lin_timeline.heap_pushes, 0, "{:?}", lin_timeline);
                prop_assert_eq!(lin_timeline.gate_pushes, 0, "{:?}", lin_timeline);
            }};
        }
        check!(GigabitEthernetModel::default());
        check!(MyrinetModel::default());
        check!(InfinibandModel::default());
    }

    /// Pure time advances are free in the anchored arithmetic: draining
    /// the same schedule through arbitrary fixed-step `advance_to` targets
    /// (which cut the timeline at non-event instants) yields bitwise the
    /// same completions as the event-driven drain, and the stepping does
    /// not disturb the heap (no extra pushes: probes never re-anchor).
    #[test]
    fn stepped_time_advances_do_not_perturb_the_heap_timeline(
        transfers in arb_transfers(),
        step_denom in 3u32..17,
    ) {
        let (event_driven, _, event_timeline) =
            drain(MyrinetModel::default(), &transfers, Mode::Heap);
        let horizon = event_driven.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        let mut net = build(MyrinetModel::default(), Mode::Heap);
        let mut sorted = transfers.clone();
        sorted.sort_by(|a, b| a.2.total_cmp(&b.2));
        for &(key, comm, start) in &sorted {
            net.add(key, comm, start);
        }
        let mut done: Vec<(u64, f64)> = Vec::new();
        for k in 1..=step_denom {
            let t = horizon * f64::from(k) / f64::from(step_denom);
            done.extend(net.advance_to(t).into_iter().map(|c| (c.key, c.completion)));
        }
        // mop up float shortfall at the horizon
        done.extend(net.run_to_completion().into_iter().map(|c| (c.key, c.completion)));
        done.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(done.len(), event_driven.len());
        for (&(ka, ta), &(kb, tb)) in done.iter().zip(&event_driven) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(ta.to_bits(), tb.to_bits(), "key {}: {} vs {}", ka, ta, tb);
        }
        let stepped_timeline = net.timeline_stats();
        prop_assert_eq!(stepped_timeline.heap_pushes, event_timeline.heap_pushes,
            "probe boundaries must not re-anchor: {:?} vs {:?}",
            stepped_timeline, event_timeline);
    }
}

#[test]
fn zero_size_transfers_complete_at_their_gate_in_all_modes() {
    // `remaining <= eps` at arrival: the flow anchors with its finish time
    // equal to the settle instant and completes in the same event step —
    // including one landing exactly on another flow's completion instant.
    // All three timelines must agree bitwise.
    let mut results = Vec::new();
    for mode in [Mode::Heap, Mode::Linear, Mode::Oracle] {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
        net = match mode {
            Mode::Heap => net,
            Mode::Linear => net.with_linear_timeline(),
            Mode::Oracle => net.with_full_recompute(),
        };
        net.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        net.add(1, Communication::new(0u32, 2u32, 0), 0.0); // flashes at t=0
        let mut done: Vec<(u64, f64)> = net
            .advance_to(50.0)
            .into_iter()
            .map(|c| (c.key, c.completion))
            .collect();
        net.add(2, Communication::new(2u32, 3u32, 0), 100.0); // lands on 0's completion
        done.extend(
            net.run_to_completion()
                .into_iter()
                .map(|c| (c.key, c.completion)),
        );
        done.sort_by_key(|&(k, _)| k);
        assert_eq!(done.len(), 3, "{mode:?}");
        assert_eq!(done[1].1, 0.0, "{mode:?}: zero-size completes at its gate");
        assert!((done[0].1 - 100.0).abs() < 1e-9, "{mode:?}: {done:?}");
        assert_eq!(
            done[2].1, done[0].1,
            "{mode:?}: flash at the completion instant"
        );
        results.push(done);
    }
    let (heap, linear, oracle) = (&results[0], &results[1], &results[2]);
    for ((&(ka, ta), &(kl, tl)), &(ko, to)) in heap.iter().zip(linear).zip(oracle) {
        assert_eq!(ka, kl);
        assert_eq!(ka, ko);
        assert_eq!(ta.to_bits(), tl.to_bits(), "heap vs linear, key {ka}");
        assert_eq!(ta.to_bits(), to.to_bits(), "heap vs oracle, key {ka}");
    }
}

#[test]
fn reset_network_replays_the_heap_timeline_bit_for_bit() {
    // Network reuse across drains (the FluidSolver pattern): a reset heap
    // engine must hand back exactly what a fresh one would — the cleared
    // slab re-issues the same key/epoch sequence, so the heap's lazy
    // invalidation cannot leak state across batteries.
    let battery = [
        churn_transfers_seeded(16, 5.0, 11),
        churn_transfers_seeded(12, 0.0, 12),
        churn_transfers_seeded(20, 0.5, 13),
    ];
    let mut reused = build(MyrinetModel::default(), Mode::Heap);
    for transfers in &battery {
        let again = drain_into(&mut reused, transfers);
        let (fresh, _, _) = drain(MyrinetModel::default(), transfers, Mode::Heap);
        assert_eq!(again.len(), fresh.len());
        for (&(ka, ta), &(kb, tb)) in again.iter().zip(&fresh) {
            assert_eq!(ka, kb);
            assert_eq!(ta.to_bits(), tb.to_bits(), "key {ka}: {ta} vs {tb}");
        }
        reused.reset();
    }
}

#[test]
fn zero_size_flash_is_served_by_patches_not_rebuilds() {
    // A zero-size transfer arrives and completes inside one event step.
    // Its arrival and departure are separated by one settle, so the engine
    // serves the flash with two incremental patches (`Arrived` then
    // `Departed`); only the very first settle of the run may rebuild.
    // (Pure cancellation — arrival and departure with *no* settle between,
    // an empty delta — is covered by the `PenaltyCache` unit tests.)
    let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
    net.add(0, Communication::new(0u32, 1u32, 1000), 0.0);
    net.advance_to(10.0);
    net.add(1, Communication::new(2u32, 3u32, 0), 10.0);
    let done = net.advance_to(10.0);
    assert_eq!(done.len(), 1, "zero-size flow completes instantly");
    assert_eq!(done[0].key, 1);
    let rest = net.run_to_completion();
    assert_eq!(rest.len(), 1);
    assert!((rest[0].completion - 1000.0).abs() < 1e-9);
    let stats = net.cache_stats();
    assert_eq!(
        stats.rebuild_queries(),
        1,
        "only the first settle may rebuild: {stats:?}"
    );
    assert!(stats.delta_queries >= 2, "{stats:?}");
}

#[test]
fn same_endpoint_pair_arrival_and_departure_in_one_batch() {
    // Flow A (0→1) completes at t=100 exactly when flow B with the *same
    // endpoint pair* opens its gate: the cache sees a mixed batch — now
    // served as a chained positional delta that the model patches — and
    // both engines must agree.
    for full in [false, true] {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
        if full {
            net = net.with_full_recompute();
        }
        net.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        net.add(1, Communication::new(0u32, 1u32, 100), 100.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        assert!((done[0].completion - 100.0).abs() < 1e-9, "full={full}");
        assert!((done[1].completion - 200.0).abs() < 1e-9, "full={full}");
        if !full {
            let stats = net.cache_stats();
            assert_eq!(
                stats.rebuild_queries(),
                1,
                "the mixed settle must stay positional: {stats:?}"
            );
            assert_eq!(
                stats.patched_queries, stats.delta_queries,
                "and must actually be patched: {stats:?}"
            );
        }
    }
}

#[test]
fn completion_batches_report_keys_in_order_and_patch_survivors() {
    // Four equal flows from one source complete simultaneously while two
    // more (staggered) survive: the batch must come out in key order and
    // the survivors' penalties must drop from 6 to 2 — an incremental
    // `Departed` patch over the slab.
    let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
    for k in 0..4u64 {
        net.add(10 + k, Communication::new(0u32, 1 + k as u32, 600), 0.0);
    }
    net.add(2, Communication::new(0u32, 8u32, 1000), 0.0);
    net.add(1, Communication::new(0u32, 9u32, 1000), 0.0);
    // all six share source 0: penalty 6 each; the four 600-byte flows
    // complete together at t = 3600.
    let batch = net.advance_to(3600.0);
    assert_eq!(batch.len(), 4);
    let keys: Vec<u64> = batch.iter().map(|c| c.key).collect();
    assert_eq!(keys, vec![10, 11, 12, 13], "batch sorted by caller key");
    // survivors continue at penalty 2: 400 bytes left × 2 = 800 s
    let rest = net.run_to_completion();
    assert_eq!(rest.len(), 2);
    for c in &rest {
        assert!((c.completion - 4400.0).abs() < 1e-9, "{c:?}");
    }
    let stats = net.cache_stats();
    assert!(
        stats.delta_queries >= 1,
        "the departure batch must reach the model as a positional delta: {stats:?}"
    );
}
