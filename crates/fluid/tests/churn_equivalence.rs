//! End-to-end equivalence of the incremental fluid engine against the
//! full-recompute oracle, plus the `PopulationDelta` edge cases the slab
//! refactor must not regress: empty (cancelled) deltas, simultaneous
//! arrival+departure of the same endpoint pair (now served as a chained
//! mixed delta), and completion-batch ordering. Schedules come from the
//! shared churn generator in `netbw-bench` — the same source the churn
//! bench and the `churn_smoke` CI guard draw from.

use netbw_bench::{bridge_wave_churn, churn_transfers_seeded, multi_component_churn};
use netbw_core::{GigabitEthernetModel, InfinibandModel, MyrinetModel, PenaltyModel};
use netbw_fluid::{FluidNetwork, NetworkParams, TimelineStats};
use netbw_graph::Communication;
use proptest::prelude::*;

/// The four engine configurations under test: the event-heap timeline
/// (default), the pre-heap linear scans over the incremental cache, the
/// pre-refactor full-recompute oracle, and the component-sharded engine
/// (one cache + scratch + timeline per conflict component). `MergeOnly`
/// is the sharded engine with departure-driven splitting disabled — the
/// refinement ablation, equally bound by bitwise equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Heap,
    Linear,
    Oracle,
    Sharded,
    MergeOnly,
}

fn build<M: PenaltyModel>(model: M, mode: Mode) -> FluidNetwork<M> {
    let net = FluidNetwork::new(model, NetworkParams::new(2.0, 0.25));
    match mode {
        Mode::Heap => net,
        Mode::Linear => net.with_linear_timeline(),
        Mode::Oracle => net.with_full_recompute(),
        Mode::Sharded => net.with_sharded(),
        Mode::MergeOnly => net.with_sharded_merge_only(),
    }
}

/// Adds `transfers` (sorted by start) and drains the network, returning
/// `(key, completion)` sorted by key.
fn drain_into<M: PenaltyModel>(
    net: &mut FluidNetwork<M>,
    transfers: &[(u64, Communication, f64)],
) -> Vec<(u64, f64)> {
    let mut sorted = transfers.to_vec();
    sorted.sort_by(|a, b| a.2.total_cmp(&b.2));
    for &(key, comm, start) in &sorted {
        net.add(key, comm, start);
    }
    let mut done: Vec<(u64, f64)> = net
        .run_to_completion()
        .into_iter()
        .map(|c| (c.key, c.completion))
        .collect();
    done.sort_by_key(|&(k, _)| k);
    done
}

/// Drains `transfers` through a fresh network in the given mode, returning
/// `(key, completion)` sorted by key, plus the cache and timeline stats.
fn drain<M: PenaltyModel>(
    model: M,
    transfers: &[(u64, Communication, f64)],
    mode: Mode,
) -> (Vec<(u64, f64)>, netbw_fluid::CacheStats, TimelineStats) {
    let mut net = build(model, mode);
    let done = drain_into(&mut net, transfers);
    let stats = net.cache_stats();
    let timeline = net.timeline_stats();
    (done, stats, timeline)
}

/// Schedules from the shared churn generator: seeded bounded-degree
/// fabrics, with staggers from dense (0: every flow arrives at once) to
/// sparse — the same generator the churn bench and `churn_smoke` use.
fn arb_transfers() -> impl Strategy<Value = Vec<(u64, Communication, f64)>> {
    (0u64..1_000_000, 2usize..24, 0usize..4).prop_map(|(seed, flows, stagger_pick)| {
        let stagger = [0.0, 0.5, 5.0, 40.0][stagger_pick];
        churn_transfers_seeded(flows, stagger, seed)
    })
}

proptest! {
    /// Heap timeline == linear scans == full recompute == component-sharded
    /// on random churn for all three specialized models: identical
    /// completion times (bitwise — the four modes share the anchored-finish
    /// arithmetic and the penalties are bit-for-bit equal because every
    /// model is component-local, so the cached finish times are too), with
    /// the incremental engine issuing no more model queries, every settle
    /// after the first reaching the model as a positional delta (mixed
    /// batches included), and every offered delta actually patched.
    #[test]
    fn heap_engine_matches_linear_oracle_and_sharded_on_random_churn(
        transfers in arb_transfers(),
    ) {
        macro_rules! check {
            ($model:expr) => {{
                let (fast, fast_stats, fast_timeline) = drain($model, &transfers, Mode::Heap);
                let (lin, _, lin_timeline) = drain($model, &transfers, Mode::Linear);
                let (slow, slow_stats, _) = drain($model, &transfers, Mode::Oracle);
                let (shard, shard_stats, shard_timeline) =
                    drain($model, &transfers, Mode::Sharded);
                prop_assert_eq!(fast.len(), slow.len());
                prop_assert_eq!(fast.len(), lin.len());
                prop_assert_eq!(fast.len(), shard.len());
                for ((&(ka, ta), &(kl, tl)), &(kb, tb)) in fast.iter().zip(&lin).zip(&slow) {
                    prop_assert_eq!(ka, kb);
                    prop_assert_eq!(ka, kl);
                    prop_assert_eq!(ta.to_bits(), tb.to_bits(),
                        "heap vs oracle, key {}: {} vs {}", ka, ta, tb);
                    prop_assert_eq!(ta.to_bits(), tl.to_bits(),
                        "heap vs linear, key {}: {} vs {}", ka, ta, tl);
                }
                for (&(ka, ta), &(ks, ts)) in fast.iter().zip(&shard) {
                    prop_assert_eq!(ka, ks);
                    prop_assert_eq!(ta.to_bits(), ts.to_bits(),
                        "heap vs sharded, key {}: {} vs {}", ka, ta, ts);
                }
                // the sharded engine anchors every flow in some shard's heap
                // and settles each shard's cache at least once
                prop_assert!(shard_timeline.heap_pushes >= transfers.len() as u64,
                    "{:?}", shard_timeline);
                prop_assert!(shard_stats.rebuild_queries() >= 1, "{:?}", shard_stats);
                prop_assert!(fast_stats.model_queries <= slow_stats.model_queries);
                prop_assert!(fast_stats.rebuild_queries() <= 1,
                    "only the first settle may rebuild: {:?}", fast_stats);
                prop_assert_eq!(fast_stats.patched_queries, fast_stats.delta_queries,
                    "every offered delta must be patched at these sizes: {:?}", fast_stats);
                // heap hygiene: stale entries never outnumber pushes, the
                // only full resync is the first settle's rebuild, and the
                // linear ablation never touches the heaps
                prop_assert!(fast_timeline.lazy_pops <= fast_timeline.heap_pushes,
                    "{:?}", fast_timeline);
                prop_assert!(fast_timeline.heap_pushes >= transfers.len() as u64,
                    "every flow anchors at least once: {:?}", fast_timeline);
                prop_assert_eq!(fast_timeline.rescans, 1, "{:?}", fast_timeline);
                prop_assert_eq!(lin_timeline.heap_pushes, 0, "{:?}", lin_timeline);
                prop_assert_eq!(lin_timeline.gate_pushes, 0, "{:?}", lin_timeline);
            }};
        }
        check!(GigabitEthernetModel::default());
        check!(MyrinetModel::default());
        check!(InfinibandModel::default());
    }

    /// Pure time advances are free in the anchored arithmetic: draining
    /// the same schedule through arbitrary fixed-step `advance_to` targets
    /// (which cut the timeline at non-event instants) yields bitwise the
    /// same completions as the event-driven drain, and the stepping does
    /// not disturb the heap (no extra pushes: probes never re-anchor).
    #[test]
    fn stepped_time_advances_do_not_perturb_the_heap_timeline(
        transfers in arb_transfers(),
        step_denom in 3u32..17,
    ) {
        let (event_driven, _, event_timeline) =
            drain(MyrinetModel::default(), &transfers, Mode::Heap);
        let horizon = event_driven.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        let mut net = build(MyrinetModel::default(), Mode::Heap);
        let mut sorted = transfers.clone();
        sorted.sort_by(|a, b| a.2.total_cmp(&b.2));
        for &(key, comm, start) in &sorted {
            net.add(key, comm, start);
        }
        let mut done: Vec<(u64, f64)> = Vec::new();
        for k in 1..=step_denom {
            let t = horizon * f64::from(k) / f64::from(step_denom);
            done.extend(net.advance_to(t).into_iter().map(|c| (c.key, c.completion)));
        }
        // mop up float shortfall at the horizon
        done.extend(net.run_to_completion().into_iter().map(|c| (c.key, c.completion)));
        done.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(done.len(), event_driven.len());
        for (&(ka, ta), &(kb, tb)) in done.iter().zip(&event_driven) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(ta.to_bits(), tb.to_bits(), "key {}: {} vs {}", ka, ta, tb);
        }
        let stepped_timeline = net.timeline_stats();
        prop_assert_eq!(stepped_timeline.heap_pushes, event_timeline.heap_pushes,
            "probe boundaries must not re-anchor: {:?} vs {:?}",
            stepped_timeline, event_timeline);
    }

    /// A delta that bridges two components mid-settle: two disjoint
    /// node-offset copies of the churn schedule, plus one extra flow whose
    /// endpoints straddle the copies, arriving anywhere from before the
    /// first gate to past the stagger horizon. The sharded engine merges
    /// the two shards at that settle (the winner rebuilds); all four modes
    /// must still agree bitwise on all three models.
    #[test]
    fn bridging_delta_agrees_across_all_modes(
        seed in 0u64..1_000_000,
        flows in 3usize..14,
        stagger_pick in 0usize..4,
        sa in 0u32..64,
        sb in 0u32..64,
        bridge_pct in 0u32..120,
    ) {
        let stagger = [0.0, 0.5, 5.0, 40.0][stagger_pick];
        let mut transfers = multi_component_churn(2, flows, stagger, seed);
        let nodes = (flows.max(4) / 2) as u32;
        let key = transfers.len() as u64;
        let bridge = Communication::new(sa % nodes, nodes + sb % nodes, 4_000);
        let bridge_start = stagger * flows as f64 * f64::from(bridge_pct) / 100.0;
        transfers.push((key, bridge, bridge_start));
        macro_rules! check {
            ($model:expr) => {{
                let (fast, _, _) = drain($model, &transfers, Mode::Heap);
                let (lin, _, _) = drain($model, &transfers, Mode::Linear);
                let (slow, _, _) = drain($model, &transfers, Mode::Oracle);
                let (shard, _, _) = drain($model, &transfers, Mode::Sharded);
                prop_assert_eq!(fast.len(), transfers.len());
                prop_assert_eq!(fast.len(), lin.len());
                prop_assert_eq!(fast.len(), slow.len());
                prop_assert_eq!(fast.len(), shard.len());
                for (((&(ka, ta), &(_, tl)), &(_, tb)), &(_, ts)) in
                    fast.iter().zip(&lin).zip(&slow).zip(&shard)
                {
                    prop_assert_eq!(ta.to_bits(), tl.to_bits(),
                        "heap vs linear, key {}: {} vs {}", ka, ta, tl);
                    prop_assert_eq!(ta.to_bits(), tb.to_bits(),
                        "heap vs oracle, key {}: {} vs {}", ka, ta, tb);
                    prop_assert_eq!(ta.to_bits(), ts.to_bits(),
                        "heap vs sharded, key {}: {} vs {}", ka, ta, ts);
                }
            }};
        }
        check!(GigabitEthernetModel::default());
        check!(MyrinetModel::default());
        check!(InfinibandModel::default());
    }

    /// Mid-run component splits: the bridge-wave workload merges the
    /// partition every wave and carves it back apart when the bridges
    /// complete, so the splitting machinery (slab-key partitioning, cache
    /// forks, heap rebuilds, slot reuse) runs continuously mid-drain. All
    /// five modes — including the merge-only ablation, whose partition
    /// shape differs — must agree bitwise on all three models, because a
    /// union of components is still a safe partition cell.
    #[test]
    fn bridge_wave_splits_agree_across_all_modes(
        seed in 0u64..1_000_000,
        comps in 2usize..4,
        flows_per_comp in 4usize..9,
        waves in 1usize..4,
        stagger_pick in 0usize..3,
    ) {
        let stagger = [0.5, 5.0, 40.0][stagger_pick];
        let transfers = bridge_wave_churn(comps, flows_per_comp, waves, stagger, seed);
        macro_rules! check {
            ($model:expr) => {{
                let (fast, _, _) = drain($model, &transfers, Mode::Heap);
                let (lin, _, _) = drain($model, &transfers, Mode::Linear);
                let (slow, _, _) = drain($model, &transfers, Mode::Oracle);
                let (shard, _, _) = drain($model, &transfers, Mode::Sharded);
                let (fused, _, _) = drain($model, &transfers, Mode::MergeOnly);
                prop_assert_eq!(fast.len(), transfers.len());
                for modeled in [&lin, &slow, &shard, &fused] {
                    prop_assert_eq!(fast.len(), modeled.len());
                    for (&(ka, ta), &(kb, tb)) in fast.iter().zip(modeled) {
                        prop_assert_eq!(ka, kb);
                        prop_assert_eq!(ta.to_bits(), tb.to_bits(),
                            "key {}: {} vs {}", ka, ta, tb);
                    }
                }
            }};
        }
        check!(GigabitEthernetModel::default());
        check!(MyrinetModel::default());
        check!(InfinibandModel::default());

        // The refining engine must have actually exercised the partition:
        // every wave's bridge chain coarsens it, and (stagger permitting)
        // its completion refines it back.
        let mut net = build(GigabitEthernetModel::default(), Mode::Sharded);
        drain_into(&mut net, &transfers);
        let stats = net.shard_stats();
        prop_assert!(
            stats.merges >= (comps - 1) as u64,
            "bridges must merge shards: {:?}", stats
        );
    }

    /// Split-then-rebridge round-trips: two components joined and re-joined
    /// by a sequence of short bridges, each gone before the next arrives.
    /// The partition round-trips merged → split → merged; the kept shard
    /// and the splinter must stay interchangeable with the fused modes at
    /// every step — bitwise, on all three models.
    #[test]
    fn split_rebridge_round_trips_agree_across_all_modes(
        seed in 0u64..1_000_000,
        flows in 4usize..12,
        stagger_pick in 0usize..3,
        bridges in 2usize..5,
        sa in 0u32..64,
        sb in 0u32..64,
    ) {
        let stagger = [0.5, 5.0, 40.0][stagger_pick];
        let mut transfers = multi_component_churn(2, flows, stagger, seed);
        let nodes = (flows.max(4) / 2) as u32;
        let horizon = stagger * flows as f64 + 1.0;
        for r in 0..bridges {
            let key = transfers.len() as u64;
            let bridge = Communication::new(sa % nodes, nodes + sb % nodes, 20);
            transfers.push((key, bridge, horizon * r as f64 / bridges as f64));
        }
        macro_rules! check {
            ($model:expr) => {{
                let (fast, _, _) = drain($model, &transfers, Mode::Heap);
                let (slow, _, _) = drain($model, &transfers, Mode::Oracle);
                let (shard, _, _) = drain($model, &transfers, Mode::Sharded);
                let (fused, _, _) = drain($model, &transfers, Mode::MergeOnly);
                prop_assert_eq!(fast.len(), transfers.len());
                for modeled in [&slow, &shard, &fused] {
                    prop_assert_eq!(fast.len(), modeled.len());
                    for (&(ka, ta), &(kb, tb)) in fast.iter().zip(modeled) {
                        prop_assert_eq!(ka, kb);
                        prop_assert_eq!(ta.to_bits(), tb.to_bits(),
                            "key {}: {} vs {}", ka, ta, tb);
                    }
                }
            }};
        }
        check!(GigabitEthernetModel::default());
        check!(MyrinetModel::default());
        check!(InfinibandModel::default());
    }
}

#[test]
fn zero_size_transfers_complete_at_their_gate_in_all_modes() {
    // `remaining <= eps` at arrival: the flow anchors with its finish time
    // equal to the settle instant and completes in the same event step —
    // including one landing exactly on another flow's completion instant.
    // All three timelines must agree bitwise.
    let mut results = Vec::new();
    for mode in [
        Mode::Heap,
        Mode::Linear,
        Mode::Oracle,
        Mode::Sharded,
        Mode::MergeOnly,
    ] {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
        net = match mode {
            Mode::Heap => net,
            Mode::Linear => net.with_linear_timeline(),
            Mode::Oracle => net.with_full_recompute(),
            Mode::Sharded => net.with_sharded(),
            Mode::MergeOnly => net.with_sharded_merge_only(),
        };
        net.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        net.add(1, Communication::new(0u32, 2u32, 0), 0.0); // flashes at t=0
        let mut done: Vec<(u64, f64)> = net
            .advance_to(50.0)
            .into_iter()
            .map(|c| (c.key, c.completion))
            .collect();
        net.add(2, Communication::new(2u32, 3u32, 0), 100.0); // lands on 0's completion
        done.extend(
            net.run_to_completion()
                .into_iter()
                .map(|c| (c.key, c.completion)),
        );
        done.sort_by_key(|&(k, _)| k);
        assert_eq!(done.len(), 3, "{mode:?}");
        assert_eq!(done[1].1, 0.0, "{mode:?}: zero-size completes at its gate");
        assert!((done[0].1 - 100.0).abs() < 1e-9, "{mode:?}: {done:?}");
        assert_eq!(
            done[2].1, done[0].1,
            "{mode:?}: flash at the completion instant"
        );
        results.push(done);
    }
    let heap = &results[0];
    for (done, mode) in
        results[1..]
            .iter()
            .zip([Mode::Linear, Mode::Oracle, Mode::Sharded, Mode::MergeOnly])
    {
        for (&(ka, ta), &(kb, tb)) in heap.iter().zip(done) {
            assert_eq!(ka, kb, "{mode:?}");
            assert_eq!(ta.to_bits(), tb.to_bits(), "heap vs {mode:?}, key {ka}");
        }
    }
}

#[test]
fn reset_network_replays_the_heap_timeline_bit_for_bit() {
    // Network reuse across drains (the FluidSolver pattern): a reset heap
    // engine must hand back exactly what a fresh one would — the cleared
    // slab re-issues the same key/epoch sequence, so the heap's lazy
    // invalidation cannot leak state across batteries.
    let battery = [
        churn_transfers_seeded(16, 5.0, 11),
        churn_transfers_seeded(12, 0.0, 12),
        churn_transfers_seeded(20, 0.5, 13),
    ];
    let mut reused = build(MyrinetModel::default(), Mode::Heap);
    for transfers in &battery {
        let again = drain_into(&mut reused, transfers);
        let (fresh, _, _) = drain(MyrinetModel::default(), transfers, Mode::Heap);
        assert_eq!(again.len(), fresh.len());
        for (&(ka, ta), &(kb, tb)) in again.iter().zip(&fresh) {
            assert_eq!(ka, kb);
            assert_eq!(ta.to_bits(), tb.to_bits(), "key {ka}: {ta} vs {tb}");
        }
        reused.reset();
    }
}

#[test]
fn zero_size_flash_is_served_by_patches_not_rebuilds() {
    // A zero-size transfer arrives and completes inside one event step.
    // Its arrival and departure are separated by one settle, so the engine
    // serves the flash with two incremental patches (`Arrived` then
    // `Departed`); only the very first settle of the run may rebuild.
    // (Pure cancellation — arrival and departure with *no* settle between,
    // an empty delta — is covered by the `PenaltyCache` unit tests.)
    let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
    net.add(0, Communication::new(0u32, 1u32, 1000), 0.0);
    net.advance_to(10.0);
    net.add(1, Communication::new(2u32, 3u32, 0), 10.0);
    let done = net.advance_to(10.0);
    assert_eq!(done.len(), 1, "zero-size flow completes instantly");
    assert_eq!(done[0].key, 1);
    let rest = net.run_to_completion();
    assert_eq!(rest.len(), 1);
    assert!((rest[0].completion - 1000.0).abs() < 1e-9);
    let stats = net.cache_stats();
    assert_eq!(
        stats.rebuild_queries(),
        1,
        "only the first settle may rebuild: {stats:?}"
    );
    assert!(stats.delta_queries >= 2, "{stats:?}");
}

#[test]
fn same_endpoint_pair_arrival_and_departure_in_one_batch() {
    // Flow A (0→1) completes at t=100 exactly when flow B with the *same
    // endpoint pair* opens its gate: the cache sees a mixed batch — now
    // served as a chained positional delta that the model patches — and
    // both engines must agree.
    for full in [false, true] {
        let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
        if full {
            net = net.with_full_recompute();
        }
        net.add(0, Communication::new(0u32, 1u32, 100), 0.0);
        net.add(1, Communication::new(0u32, 1u32, 100), 100.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 2);
        assert!((done[0].completion - 100.0).abs() < 1e-9, "full={full}");
        assert!((done[1].completion - 200.0).abs() < 1e-9, "full={full}");
        if !full {
            let stats = net.cache_stats();
            assert_eq!(
                stats.rebuild_queries(),
                1,
                "the mixed settle must stay positional: {stats:?}"
            );
            assert_eq!(
                stats.patched_queries, stats.delta_queries,
                "and must actually be patched: {stats:?}"
            );
        }
    }
}

#[test]
fn components_collapsing_to_singletons_agree_in_all_modes() {
    // Two fan-out components that each shrink to a single surviving flow
    // as the short transfers complete: the shard keeps settling a
    // singleton population (departure patches down to one flow) before
    // draining dry. All four modes must agree bitwise, and the sharded
    // engine must keep both component shards alive through the collapse
    // (shards retire only by merging, never by emptying).
    let transfers: Vec<(u64, Communication, f64)> = vec![
        // component A: shared source 0
        (0, Communication::new(0u32, 1u32, 600), 0.0),
        (1, Communication::new(0u32, 2u32, 600), 0.0),
        (2, Communication::new(0u32, 3u32, 5_000), 0.0), // A's singleton
        // component B: shared source 10
        (3, Communication::new(10u32, 11u32, 400), 1.0),
        (4, Communication::new(10u32, 12u32, 7_000), 1.0), // B's singleton
    ];
    let mut results = Vec::new();
    for mode in [Mode::Heap, Mode::Linear, Mode::Oracle, Mode::Sharded] {
        let (done, _, _) = drain(MyrinetModel::default(), &transfers, mode);
        assert_eq!(done.len(), transfers.len(), "{mode:?}");
        results.push(done);
    }
    let heap = &results[0];
    for (done, mode) in results[1..]
        .iter()
        .zip([Mode::Linear, Mode::Oracle, Mode::Sharded])
    {
        for (&(ka, ta), &(kb, tb)) in heap.iter().zip(done) {
            assert_eq!(ka, kb, "{mode:?}");
            assert_eq!(
                ta.to_bits(),
                tb.to_bits(),
                "heap vs {mode:?}, key {ka}: {ta} vs {tb}"
            );
        }
    }
    let mut net = build(MyrinetModel::default(), Mode::Sharded);
    for &(key, comm, start) in &transfers {
        net.add(key, comm, start);
    }
    // Past every short flow's completion but before the singletons finish:
    // both component shards must still be alive (shards retire only by
    // merging or a full drain, never by shrinking to a singleton).
    net.advance_to(2000.0);
    assert_eq!(net.in_flight(), 2, "only the singletons remain");
    assert_eq!(
        net.shard_count(),
        2,
        "collapsed components keep their shards"
    );
    // A full drain is the quiescent barrier: the partition is forgotten
    // wholesale and rebuilt by the next churn phase.
    net.run_to_completion();
    assert_eq!(net.shard_count(), 0, "a full drain quiesces the partition");
}

#[test]
fn completion_batches_report_keys_in_order_and_patch_survivors() {
    // Four equal flows from one source complete simultaneously while two
    // more (staggered) survive: the batch must come out in key order and
    // the survivors' penalties must drop from 6 to 2 — an incremental
    // `Departed` patch over the slab.
    let mut net = FluidNetwork::new(MyrinetModel::default(), NetworkParams::new(1.0, 0.0));
    for k in 0..4u64 {
        net.add(10 + k, Communication::new(0u32, 1 + k as u32, 600), 0.0);
    }
    net.add(2, Communication::new(0u32, 8u32, 1000), 0.0);
    net.add(1, Communication::new(0u32, 9u32, 1000), 0.0);
    // all six share source 0: penalty 6 each; the four 600-byte flows
    // complete together at t = 3600.
    let batch = net.advance_to(3600.0);
    assert_eq!(batch.len(), 4);
    let keys: Vec<u64> = batch.iter().map(|c| c.key).collect();
    assert_eq!(keys, vec![10, 11, 12, 13], "batch sorted by caller key");
    // survivors continue at penalty 2: 400 bytes left × 2 = 800 s
    let rest = net.run_to_completion();
    assert_eq!(rest.len(), 2);
    for c in &rest {
        assert!((c.completion - 4400.0).abs() < 1e-9, "{c:?}");
    }
    let stats = net.cache_stats();
    assert!(
        stats.delta_queries >= 1,
        "the departure batch must reach the model as a positional delta: {stats:?}"
    );
}

/// A budget-starved Myrinet run where the degradation is *asymmetric*:
/// component A (an 8-flow conflict cycle, 10 maximal states) blows the
/// state-set budget of 9, component B (a 6-flow conflict cycle, 5 states,
/// exact penalty 5/2 vs max-conflict approximation 2) fits it. The
/// unsharded engines degrade the whole population the moment A blows,
/// B included; a per-shard query would keep B exact and diverge. The
/// sharded engine must detect the fallback, collapse its partition into
/// one global shard mid-settle, and stay bit-for-bit with the heap.
#[test]
fn budget_fallback_collapses_the_partition_and_stays_bitwise() {
    // Conflict cycles alternate shared-source and shared-destination
    // pairs (an out-link conflict, then an in-link conflict, ...): C8 on
    // nodes 0..8, C6 on nodes 8..14.
    let c8 = [
        (0u32, 1u32),
        (2, 1),
        (2, 3),
        (4, 3),
        (4, 5),
        (6, 5),
        (6, 7),
        (0, 7),
    ];
    let c6 = [(8u32, 9u32), (10, 9), (10, 11), (12, 11), (12, 13), (8, 13)];
    let transfers: Vec<(u64, Communication, f64)> = c8
        .iter()
        .chain(&c6)
        .enumerate()
        .map(|(i, &(s, d))| (i as u64, Communication::new(s, d, 4_000), 0.0))
        .collect();

    let (heap, ..) = drain(MyrinetModel::with_budget(9), &transfers, Mode::Heap);
    let (oracle, ..) = drain(MyrinetModel::with_budget(9), &transfers, Mode::Oracle);
    let mut net = build(MyrinetModel::with_budget(9), Mode::Sharded);
    for &(key, comm, start) in &transfers {
        net.add(key, comm, start);
    }
    assert_eq!(
        net.shard_count(),
        2,
        "two components before the first settle"
    );
    // Open the latency gates: the first populated settle hits the budget
    // and must collapse the partition.
    net.advance_to(0.3);
    assert_eq!(
        net.shard_count(),
        1,
        "the budget fallback must collapse both shards into one"
    );
    let mut sharded: Vec<(u64, f64)> = net
        .run_to_completion()
        .into_iter()
        .map(|c| (c.key, c.completion))
        .collect();
    sharded.sort_by_key(|&(k, _)| k);
    assert_eq!(
        net.shard_count(),
        0,
        "the full drain quiesces the collapse pin"
    );
    assert!(
        net.cache_stats().budget_fallbacks >= 1,
        "the workload must actually hit the budget: {:?}",
        net.cache_stats()
    );
    for ((hk, ht), (sk, st)) in heap.iter().zip(&sharded) {
        assert_eq!(hk, sk);
        assert_eq!(
            ht.to_bits(),
            st.to_bits(),
            "key {hk}: heap {ht} vs sharded {st}"
        );
    }
    for ((hk, ht), (ok, ot)) in heap.iter().zip(&oracle) {
        assert_eq!(hk, ok);
        assert_eq!(ht.to_bits(), ot.to_bits(), "key {hk}: heap vs oracle");
    }
}

/// Split after a budget collapse: the C8 cycle blows the state-set budget
/// and collapses the partition, pinned to its component. When C8 drains,
/// the collapse must lift *mid-run* — the partition is rebuilt from the
/// live slab (the surviving C6 component and a still-gated future flow
/// each get a shard back), C6's penalties return to exact, and every mode
/// still agrees bitwise. The merge-only ablation never un-collapses and
/// must agree all the same.
#[test]
fn pinned_collapse_lifts_when_the_offender_departs_and_stays_bitwise() {
    let c8 = [
        (0u32, 1u32),
        (2, 1),
        (2, 3),
        (4, 3),
        (4, 5),
        (6, 5),
        (6, 7),
        (0, 7),
    ];
    let c6 = [(8u32, 9u32), (10, 9), (10, 11), (12, 11), (12, 13), (8, 13)];
    let mut transfers: Vec<(u64, Communication, f64)> = c8
        .iter()
        .map(|&(s, d)| Communication::new(s, d, 2_000))
        .chain(c6.iter().map(|&(s, d)| Communication::new(s, d, 8_000)))
        .enumerate()
        .map(|(i, comm)| (i as u64, comm, 0.0))
        .collect();
    // A latecomer, gated until long after the collapse lifts: the rebuild
    // must re-seat still-gated flows too.
    transfers.push((14, Communication::new(20u32, 21u32, 1_000), 6_500.0));

    let (heap, ..) = drain(MyrinetModel::with_budget(9), &transfers, Mode::Heap);
    let (oracle, ..) = drain(MyrinetModel::with_budget(9), &transfers, Mode::Oracle);
    let (fused, ..) = drain(MyrinetModel::with_budget(9), &transfers, Mode::MergeOnly);

    let mut net = build(MyrinetModel::with_budget(9), Mode::Sharded);
    for &(key, comm, start) in &transfers {
        net.add(key, comm, start);
    }
    assert_eq!(net.shard_count(), 3, "C8, C6 and the gated latecomer");
    net.advance_to(0.3); // first populated settle: C8 blows the budget
    let stats = net.shard_stats();
    assert!(stats.collapsed, "{stats:?}");
    assert_eq!(stats.budget_collapses, 1, "{stats:?}");
    assert_eq!(net.shard_count(), 1, "collapsed into the global shard");

    // Past C8's drain, before C6 finishes or the latecomer arrives.
    let mut sharded: Vec<(u64, f64)> = net
        .advance_to(6_000.0)
        .into_iter()
        .map(|c| (c.key, c.completion))
        .collect();
    assert_eq!(sharded.len(), 8, "all of C8 drains by t=6000");
    let stats = net.shard_stats();
    assert!(!stats.collapsed, "the pinned component left: {stats:?}");
    assert_eq!(stats.uncollapses, 1, "{stats:?}");
    assert_eq!(
        net.shard_count(),
        2,
        "C6 and the still-gated latecomer get their shards back"
    );

    sharded.extend(
        net.run_to_completion()
            .into_iter()
            .map(|c| (c.key, c.completion)),
    );
    sharded.sort_by_key(|&(k, _)| k);
    assert_eq!(net.shard_count(), 0, "full drain quiesces");
    for (modeled, name) in [(&heap, "heap"), (&oracle, "oracle"), (&fused, "merge-only")] {
        assert_eq!(sharded.len(), modeled.len(), "{name}");
        for (&(ka, ta), &(kb, tb)) in sharded.iter().zip(modeled.iter()) {
            assert_eq!(ka, kb, "{name}");
            assert_eq!(
                ta.to_bits(),
                tb.to_bits(),
                "sharded vs {name}, key {ka}: {ta} vs {tb}"
            );
        }
    }

    // The ablation keeps the collapse for good.
    let mut fused_net = build(MyrinetModel::with_budget(9), Mode::MergeOnly);
    for &(key, comm, start) in &transfers {
        fused_net.add(key, comm, start);
    }
    fused_net.advance_to(6_000.0);
    let stats = fused_net.shard_stats();
    assert!(stats.collapsed, "merge-only never un-collapses: {stats:?}");
    assert_eq!(stats.uncollapses, 0, "{stats:?}");
}
