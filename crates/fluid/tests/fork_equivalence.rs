//! `FluidNetwork::fork` equivalence: a fork of a warm engine, diverged
//! with additional transfers, must match a rebuild-and-replay of the same
//! history bit-for-bit — across all three fabric models and all four
//! engine modes, including forks taken mid-churn with latency-gated flows
//! still pending. This is the contract the `netbw-serve` what-if service
//! relies on when it answers speculative placement queries from a forked
//! snapshot instead of replaying the admission log.

use netbw_bench::churn_transfers_seeded;
use netbw_core::{GigabitEthernetModel, InfinibandModel, MyrinetModel, PenaltyModel};
use netbw_fluid::{FluidNetwork, NetworkParams};
use netbw_graph::Communication;
use proptest::prelude::*;

/// The four engine configurations under test (same set as the churn
/// equivalence suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Heap,
    Linear,
    Oracle,
    Sharded,
}

const MODES: [Mode; 4] = [Mode::Heap, Mode::Linear, Mode::Oracle, Mode::Sharded];

fn build<M: PenaltyModel>(model: M, mode: Mode) -> FluidNetwork<M> {
    let net = FluidNetwork::new(model, NetworkParams::new(2.0, 0.25));
    match mode {
        Mode::Heap => net,
        Mode::Linear => net.with_linear_timeline(),
        Mode::Oracle => net.with_full_recompute(),
        Mode::Sharded => net.with_sharded(),
    }
}

fn add_all<M: PenaltyModel>(net: &mut FluidNetwork<M>, transfers: &[(u64, Communication, f64)]) {
    for &(key, comm, start) in transfers {
        net.add(key, comm, start);
    }
}

fn completions<M: PenaltyModel>(net: &mut FluidNetwork<M>) -> Vec<(u64, u64)> {
    net.run_to_completion()
        .into_iter()
        .map(|c| (c.key, c.completion.to_bits()))
        .collect()
}

/// Drives one `(model, mode, split)` scenario: builds a base network over
/// the prefix, advances it to the last prefix start (so the newest flow's
/// latency gate is still pending — the fork happens mid-churn), forks it,
/// diverges the fork with the suffix, and checks the fork against a fresh
/// rebuild-and-replay of the identical history. Also drains the parent
/// afterwards to prove the fork did not perturb it.
fn check_fork_equivalence<M: PenaltyModel + Clone>(
    model: M,
    mode: Mode,
    transfers: &[(u64, Communication, f64)],
    split: usize,
) {
    let (prefix, suffix) = transfers.split_at(split);
    // churn starts are monotonically increasing, so the fork instant is
    // the last prefix flow's start: its gate (start + latency) is pending.
    let fork_time = prefix.last().expect("non-empty prefix").2;

    let mut base = build(model.clone(), mode);
    add_all(&mut base, prefix);
    let mut done_before: Vec<(u64, u64)> = base
        .advance_to(fork_time)
        .into_iter()
        .map(|c| (c.key, c.completion.to_bits()))
        .collect();

    let mut forked = base.fork();
    assert_eq!(forked.time().to_bits(), base.time().to_bits());
    assert_eq!(forked.in_flight(), base.in_flight());
    add_all(&mut forked, suffix);
    let mut fork_done = done_before.clone();
    fork_done.extend(completions(&mut forked));
    fork_done.sort_by_key(|&(k, _)| k);

    // Rebuild-and-replay the exact same history on a fresh engine.
    let mut replay = build(model.clone(), mode);
    add_all(&mut replay, prefix);
    let mut replay_done: Vec<(u64, u64)> = replay
        .advance_to(fork_time)
        .into_iter()
        .map(|c| (c.key, c.completion.to_bits()))
        .collect();
    add_all(&mut replay, suffix);
    replay_done.extend(completions(&mut replay));
    replay_done.sort_by_key(|&(k, _)| k);

    assert_eq!(
        fork_done, replay_done,
        "fork-then-diverge must equal rebuild-and-replay ({mode:?}, split {split})"
    );

    // The parent continues (without the suffix) exactly as an un-forked
    // control over the prefix alone.
    done_before.extend(completions(&mut base));
    done_before.sort_by_key(|&(k, _)| k);
    let mut control = build(model, mode);
    add_all(&mut control, prefix);
    let mut control_done: Vec<(u64, u64)> = control
        .advance_to(fork_time)
        .into_iter()
        .map(|c| (c.key, c.completion.to_bits()))
        .collect();
    control_done.extend(completions(&mut control));
    control_done.sort_by_key(|&(k, _)| k);
    assert_eq!(
        done_before, control_done,
        "forking must not perturb the parent ({mode:?}, split {split})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random churn, random mid-churn split point: fork + diverge equals
    /// rebuild + replay bitwise for every model and engine mode, and the
    /// forked-from parent is left unperturbed.
    #[test]
    fn fork_then_diverge_equals_rebuild_and_replay(
        seed in 0u64..1_000_000,
        flows in 3usize..16,
        stagger_pick in 0usize..4,
        split_pick in 0u32..1000,
    ) {
        let stagger = [0.0, 0.5, 5.0, 40.0][stagger_pick];
        let transfers = churn_transfers_seeded(flows, stagger, seed);
        let split = 1 + (split_pick as usize) % (transfers.len() - 1);
        for mode in MODES {
            check_fork_equivalence(GigabitEthernetModel::default(), mode, &transfers, split);
            check_fork_equivalence(MyrinetModel::default(), mode, &transfers, split);
            check_fork_equivalence(InfinibandModel::default(), mode, &transfers, split);
        }
    }
}

/// Forking a sharded engine whose partition was collapsed by a Myrinet
/// budget fallback: the fork must carry the collapse pin and stay bitwise
/// with the rebuild (which re-collapses on its own first settle).
#[test]
fn fork_carries_a_collapsed_partition() {
    // An 8-flow conflict cycle that blows a state-set budget of 9 (same
    // workload as the churn-equivalence collapse test) plus a second
    // small component, staggered so there is a meaningful mid-point.
    let c8 = [
        (0u32, 1u32),
        (2, 1),
        (2, 3),
        (4, 3),
        (4, 5),
        (6, 5),
        (6, 7),
        (0, 7),
    ];
    let mut transfers: Vec<(u64, Communication, f64)> = c8
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| (i as u64, Communication::new(s, d, 4_000), i as f64))
        .collect();
    transfers.push((8, Communication::new(10u32, 11u32, 2_000), 8.0));
    transfers.push((9, Communication::new(12u32, 13u32, 2_000), 9.0));
    check_fork_equivalence(MyrinetModel::with_budget(9), Mode::Sharded, &transfers, 8);
    check_fork_equivalence(MyrinetModel::with_budget(9), Mode::Heap, &transfers, 8);
}

/// A fork taken while *every* prefix flow is still latency-gated (advance
/// never crossed a gate): the gate heaps and pending-arrival sets must
/// survive the fork verbatim.
#[test]
fn fork_with_only_gated_flows_pending() {
    let transfers: Vec<(u64, Communication, f64)> = (0..6u64)
        .map(|i| {
            (
                i,
                Communication::new(i as u32 % 3, 3 + i as u32 % 2, 1_000 + 100 * i),
                0.0,
            )
        })
        .collect();
    for mode in MODES {
        // split 3, fork at t = 0.0: all three prefix gates (latency 0.25)
        // are pending at the fork instant.
        check_fork_equivalence(MyrinetModel::default(), mode, &transfers, 3);
    }
}
