//! Halo-exchange (stencil) workload: the nearest-neighbour pattern that
//! dominates structured-grid codes, a classic source of simultaneous
//! bidirectional NIC traffic (income/outgo conflicts).

use netbw_trace::Trace;

/// A 2-D Jacobi-style stencil: tasks arranged on a `px × py` process grid,
/// each iteration exchanges halos with the four neighbours (periodic
/// boundaries), then computes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StencilConfig {
    /// Process-grid width.
    pub px: usize,
    /// Process-grid height.
    pub py: usize,
    /// Local subdomain edge length (cells); halo payload per direction is
    /// `edge × 8` bytes.
    pub edge: usize,
    /// Number of iterations to trace.
    pub iterations: usize,
    /// Per-task compute rate, cell-updates/second.
    pub update_rate: f64,
}

impl StencilConfig {
    /// A small default: 4×2 grid, 4096-cell edges, 10 iterations.
    pub fn small() -> Self {
        StencilConfig {
            px: 4,
            py: 2,
            edge: 4096,
            iterations: 10,
            update_rate: 5e8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// On degenerate values.
    pub fn validate(&self) {
        assert!(self.px >= 1 && self.py >= 1, "grid must be non-empty");
        assert!(
            self.px * self.py >= 2,
            "need at least two tasks for communication"
        );
        assert!(self.edge >= 1 && self.iterations >= 1);
        assert!(self.update_rate > 0.0);
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.px * self.py
    }

    fn rank(&self, x: usize, y: usize) -> usize {
        y * self.px + x
    }

    /// Number of halo messages each task sends per iteration: two per
    /// dimension of extent > 1 (the two halo faces are distinct data even
    /// when the periodic neighbours coincide).
    pub fn halos_per_task(&self) -> usize {
        2 * usize::from(self.px > 1) + 2 * usize::from(self.py > 1)
    }

    /// Generates the halo-exchange trace as four directional ring-shift
    /// phases (E, W, S, N). Each phase is a shift-by-one along a grid
    /// ring; under blocking rendezvous sends a full ring of simultaneous
    /// sends deadlocks, so — like `MPI_Sendrecv`-ordered production codes —
    /// the rank at coordinate 0 of the shifted dimension receives first.
    pub fn trace(&self) -> Trace {
        self.validate();
        let halo_bytes = (self.edge * 8) as u64;
        let compute = (self.edge * self.edge) as f64 / self.update_rate;
        let mut tr = Trace::with_tasks(self.tasks());
        for _ in 0..self.iterations {
            // (shift dim is x?, delta, coordinate that breaks the cycle)
            let phases: [(bool, isize); 4] = [(true, 1), (true, -1), (false, 1), (false, -1)];
            for (shift_x, delta) in phases {
                let extent = if shift_x { self.px } else { self.py };
                if extent <= 1 {
                    continue;
                }
                for y in 0..self.py {
                    for x in 0..self.px {
                        let me = self.rank(x, y);
                        let coord = if shift_x { x } else { y };
                        let step = |c: usize, d: isize| -> usize {
                            ((c as isize + d).rem_euclid(extent as isize)) as usize
                        };
                        let dst = if shift_x {
                            self.rank(step(x, delta), y)
                        } else {
                            self.rank(x, step(y, delta))
                        };
                        let src = if shift_x {
                            self.rank(step(x, -delta), y)
                        } else {
                            self.rank(x, step(y, -delta))
                        };
                        let task = tr.task_mut(me);
                        if coord == 0 {
                            task.recv(src as u32, halo_bytes);
                            task.send(dst as u32, halo_bytes);
                        } else {
                            task.send(dst as u32, halo_bytes);
                            task.recv(src as u32, halo_bytes);
                        }
                    }
                }
            }
            for y in 0..self.py {
                for x in 0..self.px {
                    tr.task_mut(self.rank(x, y)).compute(compute);
                }
            }
        }
        tr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_validates() {
        let tr = StencilConfig::small().trace();
        assert_eq!(tr.validate(), Ok(()));
        assert_eq!(tr.len(), 8);
    }

    #[test]
    fn halo_counts() {
        let full = StencilConfig {
            px: 4,
            py: 4,
            ..StencilConfig::small()
        };
        assert_eq!(full.halos_per_task(), 4);
        let line = StencilConfig {
            px: 4,
            py: 1,
            ..StencilConfig::small()
        };
        assert_eq!(line.halos_per_task(), 2);
    }

    #[test]
    fn degenerate_dimension_still_exchanges_both_faces() {
        // 2×1 grid: east and west neighbours coincide but the two halo
        // faces are distinct messages.
        let c = StencilConfig {
            px: 2,
            py: 1,
            iterations: 1,
            ..StencilConfig::small()
        };
        let tr = c.trace();
        assert_eq!(tr.validate(), Ok(()));
        let s = netbw_trace::TraceStats::of(&tr);
        assert_eq!(s.total_messages(), 2 * 2);
    }

    #[test]
    fn message_counts_match_halo_structure() {
        let c = StencilConfig::small(); // 4×2 grid
        let tr = c.trace();
        let s = netbw_trace::TraceStats::of(&tr);
        assert_eq!(
            s.total_messages(),
            c.tasks() * c.halos_per_task() * c.iterations
        );
    }

    #[test]
    #[should_panic(expected = "at least two tasks")]
    fn rejects_single_task_grid() {
        StencilConfig {
            px: 1,
            py: 1,
            ..StencilConfig::small()
        }
        .validate();
    }
}
