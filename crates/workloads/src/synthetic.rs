//! Synthetic scheme batteries for systematic model evaluation.

use netbw_graph::{schemes, CommGraph};

/// Every scheme the paper evaluates, with its figure name: the Fig. 2
/// ladder/income schemes, the Fig. 4 calibration graph, the Fig. 5 Myrinet
/// example and the Fig. 7 synthetic graphs, all at `size` bytes.
pub fn paper_battery(size: u64) -> Vec<CommGraph> {
    let mut out: Vec<CommGraph> = (1..=6).map(schemes::fig2_scheme).collect();
    out.push(schemes::fig4(size));
    out.push(schemes::fig5());
    out.push(schemes::mk1());
    out.push(schemes::mk2());
    out.into_iter().map(|g| g.with_uniform_size(size)).collect()
}

/// A reproducible battery of random schemes with bounded degrees (so the
/// Myrinet enumeration stays fast): `count` graphs over `nodes` nodes with
/// `comms` communications each.
pub fn random_battery(
    count: usize,
    nodes: usize,
    comms: usize,
    size: u64,
    seed: u64,
) -> Vec<CommGraph> {
    (0..count)
        .map(|i| {
            schemes::random_bounded(
                nodes,
                comms,
                3,
                3,
                size,
                seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::units::MB;

    #[test]
    fn paper_battery_contains_all_figures() {
        let b = paper_battery(8 * MB);
        assert_eq!(b.len(), 10);
        let names: Vec<&str> = b.iter().map(|g| g.name()).collect();
        assert!(names.contains(&"fig2-1"));
        assert!(names.contains(&"fig2-6"));
        assert!(names.contains(&"fig4"));
        assert!(names.contains(&"fig5"));
        assert!(names.contains(&"mk1"));
        assert!(names.contains(&"mk2"));
        assert!(b.iter().all(|g| g.comms().iter().all(|c| c.size == 8 * MB)));
    }

    #[test]
    fn random_battery_is_reproducible_and_distinct() {
        let a = random_battery(4, 8, 10, MB, 7);
        let b = random_battery(4, 8, 10, MB, 7);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
        assert_eq!(a.len(), 4);
    }
}
