//! Workload generators: HPL/Linpack traces and synthetic scheme batteries.
//!
//! The paper's application evaluation (§VI.D) runs Linpack (HPL) at problem
//! size 20500 with a ring communication scheme — "each task n send message
//! to the task n + 1" — and extracts events with an instrumented MPE. This
//! crate generates equivalent traces analytically from the HPL algorithm
//! structure (block-cyclic LU with ring panel pipelining), plus batteries
//! of synthetic schemes used by the evaluation harness.

pub mod collective;
pub mod hpl;
pub mod stencil;
pub mod synthetic;

pub use collective::{alltoall, pipeline, tree_broadcast};
pub use hpl::{HplConfig, HplTraceStats};
pub use stencil::StencilConfig;
pub use synthetic::{paper_battery, random_battery};
