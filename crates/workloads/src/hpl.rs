//! HPL (High-Performance Linpack) trace generation.
//!
//! HPL factorises a dense N×N system by blocked LU with partial pivoting:
//! at iteration `k` the owner of panel `k` (block-cyclic over tasks)
//! factorises an `m×NB` panel (`m = N − k·NB`), the panel travels along the
//! ring — task `n` sends to task `n + 1`, the paper's communication scheme
//! — and every task updates its share of the trailing submatrix with DGEMM.
//!
//! Compute times come from a flops model (`flops / dgemm_rate`); message
//! sizes are the panel payloads (`m × NB × 8` bytes + pivoting metadata).
//! This reproduces the *shape* that matters for bandwidth-sharing studies:
//! interleaved compute and ring communication with sizes shrinking over
//! iterations, several tasks per node contending for the NIC.

use netbw_trace::{Trace, TraceStats};

/// Configuration of an HPL run to trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HplConfig {
    /// Matrix order N.
    pub n: usize,
    /// Block size NB.
    pub nb: usize,
    /// Number of MPI tasks P (1-D block-cyclic column distribution).
    pub tasks: usize,
    /// Effective DGEMM rate per task, flops/second.
    pub dgemm_rate: f64,
    /// Effective panel-factorisation rate, flops/second (memory-bound,
    /// typically lower than DGEMM).
    pub panel_rate: f64,
}

impl HplConfig {
    /// The paper's configuration: N = 20500, 16 tasks on 2-core Opteron
    /// nodes (~3.2 GFLOP/s effective DGEMM per core in 2008).
    pub fn paper() -> Self {
        HplConfig {
            n: 20500,
            nb: 120,
            tasks: 16,
            dgemm_rate: 3.2e9,
            panel_rate: 1.2e9,
        }
    }

    /// A small configuration for tests and examples.
    pub fn small() -> Self {
        HplConfig {
            n: 2048,
            nb: 128,
            tasks: 4,
            dgemm_rate: 3.2e9,
            panel_rate: 1.2e9,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// On degenerate values.
    pub fn validate(&self) {
        assert!(self.n >= self.nb && self.nb >= 1, "need n >= nb >= 1");
        assert!(self.tasks >= 2, "need at least two tasks");
        assert!(self.dgemm_rate > 0.0 && self.panel_rate > 0.0);
    }

    /// Number of panel iterations.
    pub fn iterations(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Panel payload in bytes at iteration `k` (column panel of the
    /// trailing matrix, f64 entries, plus pivot rows).
    pub fn panel_bytes(&self, k: usize) -> u64 {
        let m = self.n.saturating_sub(k * self.nb);
        let nb = self.nb.min(m);
        ((m * nb + nb) * 8) as u64
    }

    /// Panel factorisation flops at iteration `k` (≈ m·NB² for the
    /// unblocked panel).
    pub fn panel_flops(&self, k: usize) -> f64 {
        let m = self.n.saturating_sub(k * self.nb) as f64;
        let nb = self.nb as f64;
        m * nb * nb
    }

    /// Trailing-update flops per task at iteration `k`
    /// (2·m·m·NB spread over the tasks).
    pub fn update_flops_per_task(&self, k: usize) -> f64 {
        let m = self.n.saturating_sub((k + 1) * self.nb) as f64;
        let nb = self.nb as f64;
        2.0 * m * m * nb / self.tasks as f64
    }

    /// Generates the MPE-style event trace of the run.
    ///
    /// Per iteration `k` with owner `o = k mod P`:
    /// * `o` computes the panel factorisation, then sends the panel to
    ///   `o+1`;
    /// * every other task in ring order receives from its predecessor and
    ///   (unless it is the last, `o−1`) forwards to its successor;
    /// * every task then computes its trailing update.
    pub fn trace(&self) -> Trace {
        self.validate();
        let p = self.tasks;
        let mut tr = Trace::with_tasks(p);
        for k in 0..self.iterations() {
            let owner = k % p;
            let bytes = self.panel_bytes(k);
            let t_panel = self.panel_flops(k) / self.panel_rate;
            let t_update = self.update_flops_per_task(k) / self.dgemm_rate;

            // ring positions: owner, owner+1, …, owner+p−1 (mod p)
            for pos in 0..p {
                let rank = (owner + pos) % p;
                let next = (rank + 1) % p;
                let prev = (rank + p - 1) % p;
                let task = tr.task_mut(rank);
                if pos == 0 {
                    task.compute(t_panel);
                    if bytes > 0 {
                        task.send(next as u32, bytes);
                    }
                } else {
                    if bytes > 0 {
                        task.recv(prev as u32, bytes);
                        if pos != p - 1 {
                            task.send(next as u32, bytes);
                        }
                    }
                }
                task.compute(t_update);
            }
        }
        tr
    }

    /// Static statistics of the generated trace (for reports).
    pub fn stats(&self) -> HplTraceStats {
        let tr = self.trace();
        let s = TraceStats::of(&tr);
        HplTraceStats {
            iterations: self.iterations(),
            total_bytes: s.total_bytes(),
            total_messages: s.total_messages(),
            total_compute: s.total_compute(),
        }
    }
}

/// Summary statistics of an HPL trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HplTraceStats {
    /// Number of LU iterations.
    pub iterations: usize,
    /// Total payload bytes across all messages.
    pub total_bytes: u64,
    /// Total number of messages.
    pub total_messages: usize,
    /// Total declared compute seconds (all tasks).
    pub total_compute: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = HplConfig::paper();
        c.validate();
        assert_eq!(c.iterations(), 171); // ceil(20500/120)
        assert_eq!(c.panel_bytes(0), ((20500 * 120 + 120) * 8) as u64);
        // last iteration panel is ragged: m = 20500 − 170*120 = 100 < NB
        let last = c.iterations() - 1;
        assert_eq!(c.panel_bytes(last), ((100 * 100 + 100) * 8) as u64);
    }

    #[test]
    fn trace_validates_as_matched_mpi_program() {
        let tr = HplConfig::small().trace();
        assert_eq!(tr.validate(), Ok(()));
    }

    #[test]
    fn paper_trace_validates_too() {
        let tr = HplConfig::paper().trace();
        assert_eq!(tr.validate(), Ok(()));
    }

    #[test]
    fn ring_structure_each_task_sends_to_successor_only() {
        use netbw_trace::Event;
        let c = HplConfig::small();
        let tr = c.trace();
        for (rank, t) in tr.tasks.iter().enumerate() {
            let next = ((rank + 1) % c.tasks) as u32;
            for e in &t.events {
                if let Event::Send { dst, .. } = e {
                    assert_eq!(dst.0, next, "task {rank} must only send to its successor");
                }
            }
        }
    }

    #[test]
    fn message_count_is_ring_pipelined() {
        // each iteration moves the panel P−1 times
        let c = HplConfig::small();
        let s = c.stats();
        assert_eq!(s.total_messages, c.iterations() * (c.tasks - 1));
        assert_eq!(s.iterations, c.iterations());
    }

    #[test]
    fn sizes_shrink_monotonically() {
        let c = HplConfig::paper();
        for k in 1..c.iterations() {
            assert!(c.panel_bytes(k) <= c.panel_bytes(k - 1));
        }
    }

    #[test]
    fn compute_dominates_early_comm_late() {
        // classic HPL profile: compute-bound at the start; by the end the
        // per-iteration update shrinks cubically while messages shrink
        // linearly, so communication gains relative weight.
        let c = HplConfig::paper();
        let t_up_first = c.update_flops_per_task(0) / c.dgemm_rate;
        let bytes_first = c.panel_bytes(0) as f64;
        let t_up_late = c.update_flops_per_task(c.iterations() - 2) / c.dgemm_rate;
        let bytes_late = c.panel_bytes(c.iterations() - 2) as f64;
        assert!(t_up_first / bytes_first > 10.0 * (t_up_late / bytes_late).max(1e-30));
    }

    #[test]
    #[should_panic(expected = "at least two tasks")]
    fn rejects_single_task() {
        HplConfig {
            tasks: 1,
            ..HplConfig::small()
        }
        .validate();
    }
}
