//! Collective-communication workloads: ring all-to-all and binary-tree
//! broadcast/reduction phases, expressed as point-to-point traces (the
//! way MPI implementations of the era lowered them).

use netbw_trace::Trace;

/// Ring-algorithm `MPI_Alltoall`: in step `s` (1 ≤ s < P), task `r` sends
/// a block to `(r+s) mod P` and receives one from `(r−s) mod P`, flooding
/// every NIC in both directions simultaneously — the heaviest sharing
/// pattern a cluster sees.
///
/// The shift-by-`s` permutation decomposes into `gcd(P, s)` cycles; with
/// blocking rendezvous sends a cycle of simultaneous sends deadlocks, so
/// (as real implementations do with `MPI_Sendrecv` ordering) one
/// designated rank per cycle (`r < gcd(P, s)`) posts its receive first.
pub fn alltoall(tasks: usize, block_bytes: u64, rounds: usize) -> Trace {
    assert!(tasks >= 2, "alltoall needs at least two tasks");
    assert!(rounds >= 1);
    let mut tr = Trace::with_tasks(tasks);
    for _ in 0..rounds {
        for s in 1..tasks {
            let g = gcd(tasks, s);
            for r in 0..tasks {
                let dst = ((r + s) % tasks) as u32;
                let src = ((r + tasks - s) % tasks) as u32;
                let task = tr.task_mut(r);
                if r < g {
                    task.recv(src, block_bytes);
                    task.send(dst, block_bytes);
                } else {
                    task.send(dst, block_bytes);
                    task.recv(src, block_bytes);
                }
            }
        }
        for r in 0..tasks {
            tr.task_mut(r).barrier();
        }
    }
    tr
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Binomial-tree broadcast from rank 0: in round `k`, ranks below `2^k`
/// send to their partner at distance `2^k`. Log-depth, outgoing conflicts
/// concentrate at the root's node early on.
pub fn tree_broadcast(tasks: usize, bytes: u64) -> Trace {
    assert!(tasks >= 2, "broadcast needs at least two tasks");
    let mut tr = Trace::with_tasks(tasks);
    let mut span = 1usize;
    while span < tasks {
        for r in 0..span.min(tasks) {
            let partner = r + span;
            if partner < tasks {
                tr.task_mut(r).send(partner as u32, bytes);
                tr.task_mut(partner).recv(r as u32, bytes);
            }
        }
        span *= 2;
    }
    tr
}

/// A software pipeline: `stages` tasks, each receiving a work unit from
/// its predecessor, computing on it, and forwarding to its successor;
/// `units` work units stream through. Models producer/consumer codes.
pub fn pipeline(stages: usize, units: usize, bytes: u64, compute_per_unit: f64) -> Trace {
    assert!(stages >= 2, "pipeline needs at least two stages");
    assert!(units >= 1);
    let mut tr = Trace::with_tasks(stages);
    for _ in 0..units {
        for r in 0..stages {
            let task = tr.task_mut(r);
            if r > 0 {
                task.recv((r - 1) as u32, bytes);
            }
            task.compute(compute_per_unit);
            if r + 1 < stages {
                task.send((r + 1) as u32, bytes);
            }
        }
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_trace::TraceStats;

    #[test]
    fn alltoall_validates_and_counts() {
        let tr = alltoall(4, 1000, 2);
        assert_eq!(tr.validate(), Ok(()));
        let s = TraceStats::of(&tr);
        // per round: P·(P−1) messages
        assert_eq!(s.total_messages(), 2 * 4 * 3);
        assert_eq!(s.total_bytes(), (2 * 4 * 3) as u64 * 1000);
    }

    #[test]
    fn tree_broadcast_reaches_everyone() {
        for p in [2usize, 3, 4, 7, 8, 16] {
            let tr = tree_broadcast(p, 100);
            assert_eq!(tr.validate(), Ok(()), "P = {p}");
            let s = TraceStats::of(&tr);
            // exactly P−1 messages deliver the payload to P−1 ranks
            assert_eq!(s.total_messages(), p - 1, "P = {p}");
        }
    }

    #[test]
    fn pipeline_conserves_units() {
        let tr = pipeline(4, 5, 256, 0.001);
        assert_eq!(tr.validate(), Ok(()));
        let s = TraceStats::of(&tr);
        // each unit crosses stages−1 links
        assert_eq!(s.total_messages(), 5 * 3);
        assert!(s.total_compute() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_sizes_rejected() {
        alltoall(1, 10, 1);
    }
}
