//! Trace event model.

use netbw_graph::TaskId;

/// One event in a task's sequential execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// Local computation for `duration` seconds.
    Compute {
        /// Wall-clock seconds of pure computation.
        duration: f64,
    },
    /// Blocking `MPI_Send` of `bytes` to task `dst`.
    Send {
        /// Destination rank.
        dst: TaskId,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive of `bytes`; `src == None` is `MPI_ANY_SOURCE`
    /// (the paper uses ANY_SOURCE to avoid imposing a receive order,
    /// §IV.B).
    Recv {
        /// Source rank, or `None` for `MPI_ANY_SOURCE`.
        src: Option<TaskId>,
        /// Payload bytes.
        bytes: u64,
    },
    /// Synchronization barrier over all tasks.
    Barrier,
}

/// The ordered events of one MPI task.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskTrace {
    /// The task's events, in program order.
    pub events: Vec<Event>,
}

impl TaskTrace {
    /// Appends a compute event (no-op when `duration` is zero).
    pub fn compute(&mut self, duration: f64) -> &mut Self {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "compute duration must be finite and non-negative"
        );
        if duration > 0.0 {
            self.events.push(Event::Compute { duration });
        }
        self
    }

    /// Appends a blocking send.
    pub fn send(&mut self, dst: impl Into<TaskId>, bytes: u64) -> &mut Self {
        self.events.push(Event::Send {
            dst: dst.into(),
            bytes,
        });
        self
    }

    /// Appends a blocking receive from a specific source.
    pub fn recv(&mut self, src: impl Into<TaskId>, bytes: u64) -> &mut Self {
        self.events.push(Event::Recv {
            src: Some(src.into()),
            bytes,
        });
        self
    }

    /// Appends a blocking receive from `MPI_ANY_SOURCE`.
    pub fn recv_any(&mut self, bytes: u64) -> &mut Self {
        self.events.push(Event::Recv { src: None, bytes });
        self
    }

    /// Appends a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.events.push(Event::Barrier);
        self
    }
}

/// A whole application trace: one event sequence per rank, rank = index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Per-task event sequences; `tasks[r]` is rank `r`.
    pub tasks: Vec<TaskTrace>,
}

impl Trace {
    /// An empty trace with `n` tasks.
    pub fn with_tasks(n: usize) -> Self {
        Trace {
            tasks: vec![TaskTrace::default(); n],
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the trace has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Mutable access to a task's event list.
    pub fn task_mut(&mut self, rank: usize) -> &mut TaskTrace {
        &mut self.tasks[rank]
    }

    /// Consistency check: every send must have a plausible matching
    /// receive. Verified per (src → dst) channel: the multiset of sent
    /// sizes must equal the multiset of sizes the destination expects from
    /// that source, with ANY_SOURCE receives usable by any sender (matched
    /// by size). Barrier counts must agree across tasks.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let n = self.tasks.len();
        // sends[(src,dst)] -> sizes; recvs_specific[(src,dst)] -> sizes;
        // recvs_any[dst] -> sizes
        let mut sends: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
        let mut recvs: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
        let mut recvs_any: HashMap<usize, Vec<u64>> = HashMap::new();
        let mut barriers = vec![0usize; n];
        for (rank, t) in self.tasks.iter().enumerate() {
            for e in &t.events {
                match *e {
                    Event::Send { dst, bytes } => {
                        if dst.idx() >= n {
                            return Err(format!("task {rank} sends to out-of-range {dst}"));
                        }
                        if dst.idx() == rank {
                            // self-sends are legal MPI but degenerate here
                            return Err(format!("task {rank} sends to itself"));
                        }
                        sends.entry((rank, dst.idx())).or_default().push(bytes);
                    }
                    Event::Recv {
                        src: Some(s),
                        bytes,
                    } => {
                        if s.idx() >= n {
                            return Err(format!("task {rank} receives from out-of-range {s}"));
                        }
                        recvs.entry((s.idx(), rank)).or_default().push(bytes);
                    }
                    Event::Recv { src: None, bytes } => {
                        recvs_any.entry(rank).or_default().push(bytes);
                    }
                    Event::Barrier => barriers[rank] += 1,
                    Event::Compute { .. } => {}
                }
            }
        }
        if n > 0 && barriers.iter().any(|&b| b != barriers[0]) {
            return Err(format!("unbalanced barrier counts: {barriers:?}"));
        }
        // match specific receives first
        for ((s, d), mut sent) in sends {
            sent.sort_unstable();
            let mut expect = recvs.remove(&(s, d)).unwrap_or_default();
            expect.sort_unstable();
            // remove matched prefix pairs
            let mut si = 0;
            let mut leftovers = Vec::new();
            for &r in &expect {
                // find r in sent[si..]
                match sent[si..].binary_search(&r) {
                    Ok(pos) => {
                        sent.remove(si + pos);
                    }
                    Err(_) => {
                        return Err(format!(
                            "task {d} expects {r} bytes from task {s}, never sent"
                        ))
                    }
                }
                si = 0;
            }
            leftovers.append(&mut sent);
            // leftovers must be absorbed by ANY_SOURCE receives at d
            if !leftovers.is_empty() {
                let any = recvs_any.entry(d).or_default();
                for bytes in leftovers {
                    match any.iter().position(|&b| b == bytes) {
                        Some(p) => {
                            any.remove(p);
                        }
                        None => {
                            return Err(format!(
                                "send {s}->{d} of {bytes} bytes has no matching receive"
                            ))
                        }
                    }
                }
            }
        }
        for ((s, d), expect) in recvs {
            if !expect.is_empty() {
                return Err(format!(
                    "task {d} expects {} message(s) from task {s} that are never sent",
                    expect.len()
                ));
            }
        }
        for (d, any) in recvs_any {
            if !any.is_empty() {
                return Err(format!(
                    "task {d} has {} ANY_SOURCE receive(s) with no matching send",
                    any.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_events() {
        let mut t = TaskTrace::default();
        t.compute(1.0)
            .send(1u32, 100)
            .recv(2u32, 50)
            .recv_any(7)
            .barrier();
        assert_eq!(t.events.len(), 5);
        t.compute(0.0); // zero compute elided
        assert_eq!(t.events.len(), 5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_compute_rejected() {
        TaskTrace::default().compute(-1.0);
    }

    #[test]
    fn validate_accepts_matched_ring() {
        let mut tr = Trace::with_tasks(3);
        for r in 0..3usize {
            let next = ((r + 1) % 3) as u32;
            tr.task_mut(r).send(next, 10);
            tr.task_mut(r).recv(((r + 2) % 3) as u32, 10);
        }
        assert_eq!(tr.validate(), Ok(()));
    }

    #[test]
    fn validate_accepts_any_source() {
        let mut tr = Trace::with_tasks(3);
        tr.task_mut(0).send(2u32, 10);
        tr.task_mut(1).send(2u32, 20);
        tr.task_mut(2).recv_any(20);
        tr.task_mut(2).recv_any(10);
        assert_eq!(tr.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unmatched_send() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 10);
        assert!(tr.validate().is_err());
    }

    #[test]
    fn validate_rejects_unmatched_recv() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(1).recv(0u32, 10);
        assert!(tr.validate().unwrap_err().contains("never sent"));
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(1).recv_any(10);
        assert!(tr.validate().unwrap_err().contains("ANY_SOURCE"));
    }

    #[test]
    fn validate_rejects_self_send_and_bad_ranks() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(0u32, 10);
        assert!(tr.validate().unwrap_err().contains("itself"));
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(5u32, 10);
        assert!(tr.validate().unwrap_err().contains("out-of-range"));
    }

    #[test]
    fn validate_rejects_unbalanced_barriers() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).barrier();
        assert!(tr.validate().unwrap_err().contains("barrier"));
    }

    #[test]
    fn validate_size_mismatch() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 10);
        tr.task_mut(1).recv(0u32, 11);
        assert!(tr.validate().is_err());
    }
}
