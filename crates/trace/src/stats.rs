//! Static trace statistics (event counts, byte volumes, compute time).

use crate::event::{Event, Trace};

/// Static statistics of one task's trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskStats {
    /// Number of send events.
    pub sends: usize,
    /// Number of receive events.
    pub recvs: usize,
    /// Number of barrier events.
    pub barriers: usize,
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received (as declared by receive events).
    pub bytes_received: u64,
    /// Total declared compute time in seconds.
    pub compute_time: f64,
}

/// Aggregate statistics over a whole trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Per-task statistics, indexed by rank.
    pub per_task: Vec<TaskStats>,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn of(trace: &Trace) -> Self {
        let per_task = trace
            .tasks
            .iter()
            .map(|t| {
                let mut s = TaskStats::default();
                for e in &t.events {
                    match *e {
                        Event::Compute { duration } => s.compute_time += duration,
                        Event::Send { bytes, .. } => {
                            s.sends += 1;
                            s.bytes_sent += bytes;
                        }
                        Event::Recv { bytes, .. } => {
                            s.recvs += 1;
                            s.bytes_received += bytes;
                        }
                        Event::Barrier => s.barriers += 1,
                    }
                }
                s
            })
            .collect();
        TraceStats { per_task }
    }

    /// Total bytes sent across all tasks.
    pub fn total_bytes(&self) -> u64 {
        self.per_task.iter().map(|t| t.bytes_sent).sum()
    }

    /// Total number of messages.
    pub fn total_messages(&self) -> usize {
        self.per_task.iter().map(|t| t.sends).sum()
    }

    /// Total declared compute seconds across tasks.
    pub fn total_compute(&self) -> f64 {
        self.per_task.iter().map(|t| t.compute_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_everything() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0)
            .compute(1.0)
            .send(1u32, 100)
            .send(1u32, 50)
            .barrier();
        tr.task_mut(1).recv(0u32, 100).recv_any(50).barrier();
        let s = TraceStats::of(&tr);
        assert_eq!(s.per_task[0].sends, 2);
        assert_eq!(s.per_task[0].bytes_sent, 150);
        assert_eq!(s.per_task[0].compute_time, 1.0);
        assert_eq!(s.per_task[0].barriers, 1);
        assert_eq!(s.per_task[1].recvs, 2);
        assert_eq!(s.per_task[1].bytes_received, 150);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_compute(), 1.0);
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::of(&Trace::default());
        assert!(s.per_task.is_empty());
        assert_eq!(s.total_bytes(), 0);
    }
}
