//! MPE-like event traces.
//!
//! The paper extracts application events by instrumenting MPICH's
//! MultiProcessing Environment (MPE) tracing library (§VI.D, overhead
//! ≈ 0.7 %). This crate is our stand-in: a task-ordered event format with a
//! plain-text serialization, consumed by the `netbw-sim` trace-driven
//! simulator and produced by the `netbw-workloads` generators.
//!
//! An application is "one or more … sequences of events. There are two
//! kinds of events: compute events and communication events" (§VI.A); we
//! add explicit `Recv` and `Barrier` events so MPI blocking semantics can
//! be replayed faithfully.

pub mod event;
pub mod multi;
pub mod stats;
pub mod text;

pub use event::{Event, TaskTrace, Trace};
pub use multi::{merge, AppSpan};
pub use stats::{TaskStats, TraceStats};
pub use text::{parse_trace, write_trace, TraceParseError};
