//! Multi-application composition.
//!
//! The paper's simulator takes "one or more applications" (§VI.A):
//! independent MPI jobs co-scheduled on one cluster interfere through the
//! network even though they never exchange messages. [`merge`] rebases
//! each application's ranks into one global trace so the simulator can
//! replay them together; [`AppSpan`] maps global ranks back to
//! applications for per-job reporting.

use crate::event::{Event, Trace};

/// The global-rank range one application occupies after merging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppSpan {
    /// Index of the application in the merge input.
    pub app: usize,
    /// First global rank (inclusive).
    pub start: usize,
    /// One past the last global rank.
    pub end: usize,
}

impl AppSpan {
    /// Number of tasks in the application.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the application has no tasks.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when a global rank belongs to this application.
    pub fn contains(&self, rank: usize) -> bool {
        (self.start..self.end).contains(&rank)
    }
}

/// Merges independent application traces into a single global trace,
/// rebasing every rank reference. Barriers stay application-local in MPI;
/// since the merged trace has a single barrier space, merging is rejected
/// if more than one application uses barriers (a cross-app barrier would
/// deadlock the replay).
pub fn merge(apps: &[Trace]) -> Result<(Trace, Vec<AppSpan>), String> {
    let barrier_users = apps
        .iter()
        .filter(|a| {
            a.tasks
                .iter()
                .any(|t| t.events.iter().any(|e| matches!(e, Event::Barrier)))
        })
        .count();
    if barrier_users > 1 {
        return Err(format!(
            "{barrier_users} applications use barriers; barriers are global in the merged trace"
        ));
    }
    let total: usize = apps.iter().map(Trace::len).sum();
    let mut out = Trace::with_tasks(total);
    let mut spans = Vec::with_capacity(apps.len());
    let mut base = 0usize;
    for (ai, app) in apps.iter().enumerate() {
        for (r, task) in app.tasks.iter().enumerate() {
            let global = base + r;
            for e in &task.events {
                match *e {
                    Event::Compute { duration } => {
                        out.task_mut(global).compute(duration);
                    }
                    Event::Send { dst, bytes } => {
                        out.task_mut(global).send((base + dst.idx()) as u32, bytes);
                    }
                    Event::Recv {
                        src: Some(s),
                        bytes,
                    } => {
                        out.task_mut(global).recv((base + s.idx()) as u32, bytes);
                    }
                    Event::Recv { src: None, bytes } => {
                        // ANY_SOURCE stays safe: only this app sends to
                        // this rank, because rank spaces are disjoint.
                        out.task_mut(global).recv_any(bytes);
                    }
                    Event::Barrier => {
                        out.task_mut(global).barrier();
                    }
                }
            }
        }
        spans.push(AppSpan {
            app: ai,
            start: base,
            end: base + app.len(),
        });
        base += app.len();
    }
    // barrier balance: if one app barriers, every *other* task needs the
    // same count for the global barrier to release. Reject that case too
    // unless the barrier app is alone.
    if barrier_users == 1 && apps.len() > 1 {
        return Err(
            "an application uses barriers but is co-scheduled; strip barriers first".into(),
        );
    }
    Ok((out, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, bytes: u64) -> Trace {
        let mut tr = Trace::with_tasks(n);
        for r in 0..n {
            tr.task_mut(r).send(((r + 1) % n) as u32, bytes);
            tr.task_mut(r).recv(((r + n - 1) % n) as u32, bytes);
        }
        tr
    }

    #[test]
    fn merge_rebases_ranks() {
        let (merged, spans) = merge(&[ring(3, 10), ring(2, 20)]).unwrap();
        assert_eq!(merged.len(), 5);
        assert_eq!(
            spans[0],
            AppSpan {
                app: 0,
                start: 0,
                end: 3
            }
        );
        assert_eq!(
            spans[1],
            AppSpan {
                app: 1,
                start: 3,
                end: 5
            }
        );
        assert!(spans[1].contains(4));
        assert!(!spans[1].contains(2));
        assert_eq!(spans[1].len(), 2);
        // app 1's ring sends go 3→4, 4→3
        match merged.tasks[3].events[0] {
            Event::Send { dst, bytes } => {
                assert_eq!(dst.idx(), 4);
                assert_eq!(bytes, 20);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(merged.validate(), Ok(()));
    }

    #[test]
    fn merged_traffic_stays_within_apps() {
        let (merged, spans) = merge(&[ring(3, 10), ring(3, 10)]).unwrap();
        for (rank, task) in merged.tasks.iter().enumerate() {
            let span = spans.iter().find(|s| s.contains(rank)).unwrap();
            for e in &task.events {
                if let Event::Send { dst, .. } = e {
                    assert!(span.contains(dst.idx()), "cross-app message");
                }
            }
        }
    }

    #[test]
    fn barriers_in_coscheduled_apps_rejected() {
        let mut a = ring(2, 10);
        a.task_mut(0).barrier();
        a.task_mut(1).barrier();
        let b = ring(2, 10);
        assert!(merge(&[a.clone(), b]).is_err());
        // alone it is fine
        assert!(merge(&[a]).is_ok());
    }

    #[test]
    fn empty_input() {
        let (merged, spans) = merge(&[]).unwrap();
        assert!(merged.is_empty());
        assert!(spans.is_empty());
    }
}
