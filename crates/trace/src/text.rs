//! Plain-text trace serialization.
//!
//! Format (one event per line, `t<rank>` prefixes):
//!
//! ```text
//! # netbw trace v1
//! tasks 4
//! t0 compute 0.5
//! t0 send 1 1048576
//! t1 recv 0 1048576
//! t2 recv any 64
//! t3 barrier
//! ```

use crate::event::{Event, Trace};
use std::fmt;

/// Error from [`parse_trace`], with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Serializes a trace to the line format.
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::from("# netbw trace v1\n");
    out.push_str(&format!("tasks {}\n", trace.len()));
    for (rank, task) in trace.tasks.iter().enumerate() {
        for e in &task.events {
            match *e {
                Event::Compute { duration } => {
                    out.push_str(&format!("t{rank} compute {duration}\n"));
                }
                Event::Send { dst, bytes } => {
                    out.push_str(&format!("t{rank} send {} {bytes}\n", dst.0));
                }
                Event::Recv {
                    src: Some(s),
                    bytes,
                } => {
                    out.push_str(&format!("t{rank} recv {} {bytes}\n", s.0));
                }
                Event::Recv { src: None, bytes } => {
                    out.push_str(&format!("t{rank} recv any {bytes}\n"));
                }
                Event::Barrier => {
                    out.push_str(&format!("t{rank} barrier\n"));
                }
            }
        }
    }
    out
}

/// Parses the line format back into a [`Trace`].
pub fn parse_trace(input: &str) -> Result<Trace, TraceParseError> {
    let mut trace: Option<Trace> = None;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let err = |message: String| TraceParseError {
            line: lineno,
            message,
        };
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let head = words.next().expect("non-empty line");
        if head == "tasks" {
            let n: usize = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| err("tasks directive needs a count".into()))?;
            if trace.is_some() {
                return Err(err("duplicate tasks directive".into()));
            }
            trace = Some(Trace::with_tasks(n));
            continue;
        }
        let rank: usize = head
            .strip_prefix('t')
            .and_then(|r| r.parse().ok())
            .ok_or_else(|| err(format!("expected t<rank>, got {head:?}")))?;
        let tr = trace
            .as_mut()
            .ok_or_else(|| err("event before tasks directive".into()))?;
        if rank >= tr.len() {
            return Err(err(format!(
                "rank {rank} out of range (tasks {})",
                tr.len()
            )));
        }
        let verb = words
            .next()
            .ok_or_else(|| err("missing event verb".into()))?;
        match verb {
            "compute" => {
                let d: f64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("compute needs a duration".into()))?;
                if !d.is_finite() || d < 0.0 {
                    return Err(err(format!("bad compute duration {d}")));
                }
                tr.task_mut(rank).compute(d);
            }
            "send" => {
                let dst: u32 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("send needs a destination rank".into()))?;
                let bytes: u64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("send needs a byte count".into()))?;
                tr.task_mut(rank).send(dst, bytes);
            }
            "recv" => {
                let src = words
                    .next()
                    .ok_or_else(|| err("recv needs a source rank or `any`".into()))?;
                let bytes: u64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("recv needs a byte count".into()))?;
                if src == "any" {
                    tr.task_mut(rank).recv_any(bytes);
                } else {
                    let s: u32 = src
                        .parse()
                        .map_err(|_| err(format!("bad recv source {src:?}")))?;
                    tr.task_mut(rank).recv(s, bytes);
                }
            }
            "barrier" => {
                tr.task_mut(rank).barrier();
            }
            other => return Err(err(format!("unknown event verb {other:?}"))),
        }
        if let Some(extra) = words.next() {
            return Err(err(format!("trailing tokens starting at {extra:?}")));
        }
    }
    trace.ok_or(TraceParseError {
        line: 0,
        message: "empty trace (no tasks directive)".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_trace() -> Trace {
        let mut tr = Trace::with_tasks(3);
        for r in 0..3usize {
            tr.task_mut(r).compute(0.25);
            tr.task_mut(r).send(((r + 1) % 3) as u32, 1024);
            tr.task_mut(r).recv_any(1024);
            tr.task_mut(r).barrier();
        }
        tr
    }

    #[test]
    fn round_trip() {
        let tr = ring_trace();
        let text = write_trace(&tr);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn specific_recv_round_trips() {
        let mut tr = Trace::with_tasks(2);
        tr.task_mut(0).send(1u32, 10);
        tr.task_mut(1).recv(0u32, 10);
        assert_eq!(parse_trace(&write_trace(&tr)).unwrap(), tr);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("tasks 2\nt0 warp 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown event verb"));

        let e = parse_trace("t0 compute 1\n").unwrap_err();
        assert!(e.message.contains("before tasks"));

        let e = parse_trace("tasks 1\nt3 barrier\n").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse_trace("tasks 1\nt0 compute -2\n").unwrap_err();
        assert!(e.message.contains("bad compute duration"));

        let e = parse_trace("tasks 1\nt0 barrier extra\n").unwrap_err();
        assert!(e.message.contains("trailing"));

        let e = parse_trace("").unwrap_err();
        assert!(e.message.contains("empty trace"));

        let e = parse_trace("tasks 1\ntasks 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let tr = parse_trace("# hello\n\ntasks 1\nt0 compute 1.5 # trailing\n").unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.tasks[0].events.len(), 1);
    }
}
