//! Evaluation harness: the paper's §VI.B methodology.
//!
//! Predictions are compared against measurements with two error metrics:
//!
//! * the **relative error** per communication,
//!   `Erel(ck) = (Tp − Tm)/Tm × 100`, which exposes optimistic (negative)
//!   vs pessimistic (positive) model behaviour;
//! * the **average of absolute errors** per graph,
//!   `Eabs(G) = (1/N)·Σ|Erel(ck)|`, which avoids error compensation;
//! * for application traces, the per-task absolute error
//!   `Eabs(ti) = |(Sp − Sm)/Sm| × 100` over each task's summed
//!   communication times.
//!
//! "Measured" times come from the packet-level fabrics (`netbw-packet`),
//! "predicted" times from the penalty models through the fluid solver
//! (`netbw-core` + `netbw-fluid`), optionally driven through the full
//! trace simulator (`netbw-sim`) for HPL.

pub mod error;
pub mod experiment;
pub mod session;
pub mod sizes;
pub mod sweep;
pub mod table;

pub use error::{mean_absolute_error, per_task_abs_error, relative_error};
pub use experiment::{compare_hpl, compare_scheme, fig2_table, HplComparison, SchemeComparison};
pub use session::{EvalSession, SweepStats, SweepWorker};
pub use sizes::{first_crossover, size_sweep, SizePoint};
pub use sweep::{parallel_map, ExecutorStats, SweepExecutor};
pub use table::Table;
