//! Error metrics (§VI.B).

/// Relative error in percent: `(Tp − Tm)/Tm × 100`.
/// Negative means the model is optimistic, positive pessimistic.
///
/// # Panics
/// If `tm` is not strictly positive.
pub fn relative_error(tp: f64, tm: f64) -> f64 {
    assert!(tm > 0.0, "measured time must be positive, got {tm}");
    (tp - tm) / tm * 100.0
}

/// Average of absolute relative errors (percent): `Eabs(G)`.
/// Returns 0 for an empty slice.
pub fn mean_absolute_error(erel: &[f64]) -> f64 {
    if erel.is_empty() {
        return 0.0;
    }
    erel.iter().map(|e| e.abs()).sum::<f64>() / erel.len() as f64
}

/// Per-task absolute error (percent): `|(Sp − Sm)/Sm| × 100`.
///
/// # Panics
/// If `sm` is not strictly positive.
pub fn per_task_abs_error(sp: f64, sm: f64) -> f64 {
    assert!(sm > 0.0, "measured sum must be positive, got {sm}");
    ((sp - sm) / sm * 100.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_signs() {
        assert!((relative_error(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!(relative_error(0.9, 1.0) < 0.0);
        assert_eq!(relative_error(2.0, 2.0), 0.0);
    }

    #[test]
    fn eabs_avoids_compensation() {
        // +10 and −10 compensate to 0 in the mean but not in Eabs
        let e = [10.0, -10.0];
        assert_eq!(mean_absolute_error(&e), 10.0);
        assert_eq!(mean_absolute_error(&[]), 0.0);
    }

    #[test]
    fn per_task_error_is_absolute() {
        assert!((per_task_abs_error(0.9, 1.0) - 10.0).abs() < 1e-9);
        assert!((per_task_abs_error(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert_eq!(per_task_abs_error(1.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_measurement() {
        relative_error(1.0, 0.0);
    }
}
