//! Measured-vs-predicted experiments (Figs. 2, 4, 7, 8, 9).

use crate::error::{mean_absolute_error, per_task_abs_error};
use crate::session::{EvalSession, SweepWorker};
use crate::table::{fnum, Table};
use netbw_core::PenaltyModel;
use netbw_fluid::{FluidNetwork, NetworkParams};
use netbw_graph::CommGraph;
use netbw_packet::{FabricConfig, PacketNetwork};
use netbw_sim::{ClusterSpec, Placement, PlacementPolicy, Simulator};
use netbw_workloads::HplConfig;

/// One scheme's measured-vs-predicted comparison (the Fig. 4/Fig. 7
/// experiment structure).
#[derive(Clone, Debug)]
pub struct SchemeComparison {
    /// Scheme name.
    pub scheme: String,
    /// Communication labels, scheme order.
    pub labels: Vec<String>,
    /// Measured times `Tm` (packet fabric), seconds.
    pub measured: Vec<f64>,
    /// Predicted times `Tp` (model × measured reference), seconds.
    pub predicted: Vec<f64>,
    /// Relative errors `Erel`, percent.
    pub erel: Vec<f64>,
    /// Mean absolute error `Eabs`, percent.
    pub eabs: f64,
}

impl SchemeComparison {
    /// Renders the Fig. 7-style table (`com | Tm | Tp | Erel`).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["com.", "Tm [s]", "Tp [s]", "Erel [%]"]);
        for i in 0..self.labels.len() {
            t.push([
                self.labels[i].clone(),
                fnum(self.measured[i], 4),
                fnum(self.predicted[i], 4),
                fnum(self.erel[i], 1),
            ]);
        }
        t
    }
}

/// Runs one scheme through a packet fabric (measured) and a penalty model
/// (predicted), paper-style: the model predicts effective penalties via
/// the fluid solver, then times are `penalty × Tref(size)` with `Tref`
/// *measured on the same fabric* — exactly how the paper turns model
/// penalties into predicted seconds.
///
/// One-shot wrapper over [`SweepWorker::compare_scheme`]; batteries
/// should go through [`EvalSession::compare_schemes`], which reuses
/// fabrics, `Tref` measurements and solvers across schemes and workers.
pub fn compare_scheme(
    model: &dyn PenaltyModel,
    fabric: FabricConfig,
    scheme: &CommGraph,
) -> SchemeComparison {
    SweepWorker::standalone().compare_scheme(model, fabric, scheme)
}

/// Regenerates the Fig. 2 table: measured penalties of the six schemes on
/// all three fabrics. One-shot wrapper over [`EvalSession::fig2_table`].
pub fn fig2_table(size: u64) -> Table {
    EvalSession::sequential().fig2_table(size)
}

/// Per-task HPL comparison (Figs. 8 and 9): the same trace replayed once
/// against the packet fabric (measured, `Sm`) and once against the penalty
/// model (predicted, `Sp`), with the per-task absolute error.
#[derive(Clone, Debug)]
pub struct HplComparison {
    /// Scheduling policy name.
    pub policy: String,
    /// Per-task sum of measured send times, `Sm`.
    pub sm: Vec<f64>,
    /// Per-task sum of predicted send times, `Sp`.
    pub sp: Vec<f64>,
    /// Per-task absolute error `Eabs(ti)`, percent.
    pub eabs: Vec<f64>,
    /// Measured application makespan.
    pub makespan_measured: f64,
    /// Predicted application makespan.
    pub makespan_predicted: f64,
}

impl HplComparison {
    /// Mean per-task error.
    pub fn mean_eabs(&self) -> f64 {
        mean_absolute_error(&self.eabs)
    }

    /// Renders the Fig. 8/9-style table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["task", "Sm [s]", "Sp [s]", "Eabs [%]"]);
        for i in 0..self.sm.len() {
            t.push([
                format!("{i}"),
                fnum(self.sm[i], 3),
                fnum(self.sp[i], 3),
                fnum(self.eabs[i], 1),
            ]);
        }
        t
    }
}

/// Runs the Fig. 8/9 experiment: HPL trace on `cluster` under `policy`;
/// measured against the (coarse-grained) packet fabric, predicted with the
/// penalty model over the fluid solver at the fabric's single-stream rate.
pub fn compare_hpl(
    hpl: &HplConfig,
    cluster: &ClusterSpec,
    policy: &PlacementPolicy,
    model: impl PenaltyModel,
    fabric: FabricConfig,
) -> Result<HplComparison, netbw_sim::SimError> {
    compare_hpl_dyn(hpl, cluster, policy, &model, fabric)
}

/// Object-safe body of [`compare_hpl`], shared with the session path
/// ([`SweepWorker::compare_hpl`]).
pub(crate) fn compare_hpl_dyn(
    hpl: &HplConfig,
    cluster: &ClusterSpec,
    policy: &PlacementPolicy,
    model: &dyn PenaltyModel,
    fabric: FabricConfig,
) -> Result<HplComparison, netbw_sim::SimError> {
    let trace = hpl.trace();
    let placement = Placement::assign(policy, trace.len(), cluster);

    // measured: packet fabric with coarse segments for tractability
    let measured_backend = PacketNetwork::new(fabric.coarse(), cluster.nodes);
    let measured = Simulator::new(&trace, *cluster, placement.clone(), measured_backend).run()?;

    // predicted: model over the fluid solver, base rate = the fabric's
    // single-stream goodput (the model's Tref convention)
    let params = NetworkParams::new(fabric.flow_cap, fabric.startup);
    let predicted_backend = FluidNetwork::new(model, params);
    let predicted = Simulator::new(&trace, *cluster, placement, predicted_backend).run()?;

    let sm = measured.task_send_sums();
    let sp = predicted.task_send_sums();
    let eabs: Vec<f64> = sm
        .iter()
        .zip(&sp)
        .map(|(&m, &p)| {
            if m > 0.0 {
                per_task_abs_error(p, m)
            } else {
                0.0
            }
        })
        .collect();
    Ok(HplComparison {
        policy: policy.to_string(),
        sm,
        sp,
        eabs,
        makespan_measured: measured.makespan(),
        makespan_predicted: predicted.makespan(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::{GigabitEthernetModel, MyrinetModel};
    use netbw_graph::schemes;
    use netbw_graph::units::MB;

    #[test]
    fn mk1_comparison_has_small_errors() {
        // Myrinet model vs Myrinet fabric on the paper's tree: the paper
        // reports Eabs = 2.6 %; our fabric is not their cluster, but the
        // model should stay within ~20 % on average.
        let cmp = compare_scheme(
            &MyrinetModel::default(),
            FabricConfig::myrinet2000(),
            &schemes::mk1().with_uniform_size(8 * MB),
        );
        assert_eq!(cmp.labels.len(), 7);
        assert!(cmp.eabs < 20.0, "Eabs = {:.1}%", cmp.eabs);
        let table = cmp.to_table().to_markdown();
        assert!(table.contains("Erel"));
    }

    #[test]
    fn ladder_prediction_is_nearly_exact() {
        // the GigE model was built from these schemes: near-zero error
        let cmp = compare_scheme(
            &GigabitEthernetModel::default(),
            FabricConfig::gige(),
            &schemes::outgoing_ladder(3).with_uniform_size(8 * MB),
        );
        assert!(cmp.eabs < 3.0, "Eabs = {:.2}%", cmp.eabs);
    }

    #[test]
    fn fig2_table_has_all_rows() {
        let t = fig2_table(2 * MB);
        assert_eq!(t.len(), 1 + 2 + 3 + 4 + 5 + 6);
        let md = t.to_markdown();
        assert!(md.contains("gige"));
        assert!(md.contains("myrinet"));
        assert!(md.contains("infiniband"));
    }

    #[test]
    fn hpl_comparison_runs_end_to_end() {
        let hpl = HplConfig {
            n: 1024,
            nb: 128,
            tasks: 4,
            ..HplConfig::small()
        };
        let cluster = ClusterSpec::smp(2);
        let cmp = compare_hpl(
            &hpl,
            &cluster,
            &PlacementPolicy::RoundRobinNode,
            MyrinetModel::default(),
            FabricConfig::myrinet2000(),
        )
        .unwrap();
        assert_eq!(cmp.sm.len(), 4);
        assert!(cmp.makespan_measured > 0.0);
        assert!(cmp.makespan_predicted > 0.0);
        // the two makespans agree within 30 % (same compute model, network
        // models differ)
        let ratio = cmp.makespan_predicted / cmp.makespan_measured;
        assert!(ratio > 0.7 && ratio < 1.3, "makespan ratio {ratio:.2}");
    }
}
