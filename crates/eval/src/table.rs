//! Plain-text and CSV tables for the experiment harnesses.

/// A simple rectangular table with headers.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// If the row width differs from the header width.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned monospace table (also valid GitHub markdown).
    pub fn to_markdown(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for i in 0..ncol {
                line.push_str(&format!(" {:width$} |", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders comma-separated values with a header line.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = self.headers.iter().map(esc).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `prec` decimals, trimming trailing zeros
/// (the paper's table style).
pub fn fnum(x: f64, prec: usize) -> String {
    let s = format!("{x:.prec$}");
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new(["com", "Tm", "Tp"]);
        t.push(["a", "0.087", "0.089"]);
        t.push(["b", "0.1", "0.2"]);
        let md = t.to_markdown();
        assert!(md.contains("| com | Tm    | Tp    |"));
        assert!(md.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.push(["x,y", "q\"z"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(["a"]);
        t.push(["x", "y"]);
    }

    #[test]
    fn fnum_trims() {
        assert_eq!(fnum(2.500, 3), "2.5");
        assert_eq!(fnum(1.0, 2), "1");
        assert_eq!(fnum(0.0866, 3), "0.087");
    }
}
