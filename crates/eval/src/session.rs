//! Sweep execution sessions: reusable per-worker state for experiment
//! batteries.
//!
//! The paper's methodology is batteries — `compare_scheme` over hundreds
//! of schemes, `fig2_table` over every scheme × fabric, size sweeps —
//! and the one-shot entry points rebuild everything per call: a fresh
//! [`PacketFabric`], a re-measured `Tref`, a new `FluidSolver`. An
//! [`EvalSession`] amortizes all three across a battery:
//!
//! * a **fabric arena** per worker, keyed by [`FabricKey`] (the fabric
//!   configuration by bit pattern): each arena entry is one
//!   [`PacketFabric`] whose internal network is reset between schemes and
//!   grown (to the next power-of-two node capacity) when a scheme needs
//!   more nodes — on a crossbar, capacity never changes timing, so a
//!   grown fabric answers bit-for-bit like a right-sized one;
//! * a **`Tref` memo** ([`TrefCache`]) per fabric per worker, backed by a
//!   session-shared cross-worker memo, so each `(fabric, size)` reference
//!   transfer is simulated once per battery instead of once per scheme;
//! * a **reusable [`FluidSolver`]** per worker per model instance: the
//!   solver resets (rather than rebuilds) its fluid network between
//!   schemes, keeping the slab and the model scratch allocations warm.
//!
//! Work is scheduled by the work-stealing [`SweepExecutor`]; results keep
//! input order, and sequential/parallel runs are bit-for-bit identical
//! (pinned by the equivalence tests in `tests/sweep_properties.rs`).
//! Everything is observable through [`SweepStats`], which the bench
//! binaries print and the `sweep_smoke` CI guard asserts on.

use crate::error::{mean_absolute_error, relative_error};
use crate::experiment::{HplComparison, SchemeComparison};
use crate::sweep::{ExecutorStats, SweepExecutor};
use crate::table::{fnum, Table};
use netbw_core::PenaltyModel;
use netbw_fluid::{FluidSolver, NetworkParams};
use netbw_graph::CommGraph;
use netbw_packet::{FabricConfig, FabricKey, PacketFabric, PenaltyMeasurement, TrefCache};
use netbw_sim::{ClusterSpec, PlacementPolicy, SimError};
use netbw_workloads::HplConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Aggregated observability counters of an [`EvalSession`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Battery items processed through the session.
    pub items: u64,
    /// Arena misses: `PacketFabric`s constructed (first use of a fabric
    /// on a worker, or capacity growth).
    pub fabrics_built: u64,
    /// Arena hits: runs served by resetting an arena fabric.
    pub fabrics_reused: u64,
    /// Packet networks constructed inside the arena fabrics.
    pub networks_built: u64,
    /// Packet-network resets inside the arena fabrics.
    pub networks_reused: u64,
    /// `Tref` lookups served from a memo (worker-local or shared).
    pub tref_hits: u64,
    /// `Tref` lookups that had to simulate the reference transfer.
    pub tref_misses: u64,
    /// Work-stealing batches moved between workers.
    pub steals: u64,
    /// Items per worker, summed across the session's sweeps.
    pub per_worker_items: Vec<u64>,
}

impl SweepStats {
    /// Share of fabric requests served by arena reuse, in `[0, 1]`.
    pub fn fabric_reuse_rate(&self) -> f64 {
        let total = self.fabrics_built + self.fabrics_reused;
        if total == 0 {
            0.0
        } else {
            self.fabrics_reused as f64 / total as f64
        }
    }

    /// Share of `Tref` lookups served from a memo, in `[0, 1]`.
    pub fn tref_hit_rate(&self) -> f64 {
        let total = self.tref_hits + self.tref_misses;
        if total == 0 {
            0.0
        } else {
            self.tref_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} items over {} workers {:?} | fabrics: {} built, {} reused ({:.1}% reuse) | \
             networks: {} built, {} reset | Tref: {} measured, {} memo hits ({:.1}% hit) | \
             {} steals",
            self.items,
            self.per_worker_items.len().max(1),
            self.per_worker_items,
            self.fabrics_built,
            self.fabrics_reused,
            self.fabric_reuse_rate() * 100.0,
            self.networks_built,
            self.networks_reused,
            self.tref_misses,
            self.tref_hits,
            self.tref_hit_rate() * 100.0,
            self.steals,
        )
    }
}

/// Cross-worker state of a session: the shared `Tref` memo (one bounded
/// [`TrefCache`] per fabric, so a long-lived session fed arbitrary sizes
/// cannot grow without bound) plus the atomically merged counters.
#[derive(Default)]
struct SessionShared {
    tref: Mutex<HashMap<FabricKey, TrefCache>>,
    /// Fork arenas parked between sweep calls, keyed by `(caller key,
    /// worker index)`: opaque warm state (the serve hot path parks a whole
    /// forked engine) that a worker checks out at first use and its drop
    /// flushes back, so steady-state re-forks reuse the allocations of the
    /// previous sweep's fork instead of building a fresh deep copy. Keyed
    /// per worker, an arena is never aliased across live workers.
    fork_arenas: Mutex<HashMap<(u64, usize), Box<dyn std::any::Any + Send>>>,
    items: AtomicU64,
    fabrics_built: AtomicU64,
    fabrics_reused: AtomicU64,
    networks_built: AtomicU64,
    networks_reused: AtomicU64,
    tref_hits: AtomicU64,
    tref_misses: AtomicU64,
    steals: AtomicU64,
    per_worker_items: Mutex<Vec<u64>>,
}

impl SessionShared {
    fn tref_lookup(&self, key: FabricKey, size: u64) -> Option<f64> {
        self.tref
            .lock()
            .expect("shared tref memo")
            .get(&key)
            .and_then(|cache| cache.lookup(size))
    }

    fn tref_publish(&self, key: FabricKey, size: u64, tref: f64) {
        self.tref
            .lock()
            .expect("shared tref memo")
            .entry(key)
            .or_default()
            .insert(size, tref);
    }

    fn absorb_exec(&self, stats: &ExecutorStats) {
        self.steals.fetch_add(stats.steals, Ordering::Relaxed);
        let mut per_worker = self.per_worker_items.lock().expect("per-worker items");
        if per_worker.len() < stats.per_worker_items.len() {
            per_worker.resize(stats.per_worker_items.len(), 0);
        }
        for (acc, &n) in per_worker.iter_mut().zip(&stats.per_worker_items) {
            *acc += n;
        }
    }
}

/// Worker-local counters, flushed to the shared state once on drop so the
/// per-item path never touches an atomic.
#[derive(Default)]
struct LocalCounters {
    fabrics_built: u64,
    fabrics_reused: u64,
    networks_built: u64,
    networks_reused: u64,
    tref_hits: u64,
    tref_misses: u64,
}

/// Per-worker reusable state of a sweep: the fabric arena, the `Tref`
/// memos and the reusable fluid solvers. Obtained inside
/// [`EvalSession::sweep`] closures, or standalone via
/// [`SweepWorker::standalone`] (which is what the one-shot free functions
/// wrap).
pub struct SweepWorker<'a> {
    shared: Option<&'a SessionShared>,
    /// This worker's stable index on the session executor (0 for
    /// standalone workers) — the second half of the fork-arena key.
    index: usize,
    arenas: HashMap<FabricKey, PacketFabric>,
    /// Fork arenas checked out from the session for the duration of one
    /// sweep call (see [`SessionShared::fork_arenas`]); flushed back on
    /// drop so they survive into the next sweep.
    fork_arenas: HashMap<u64, Box<dyn std::any::Any + Send>>,
    trefs: HashMap<FabricKey, TrefCache>,
    /// Reusable solvers keyed by model *instance*: `(name, address)`.
    /// The address distinguishes differently calibrated instances of one
    /// model type (which `name()` alone would conflate); the name
    /// distinguishes distinct zero-sized model types, whose locals can
    /// share one address. The referent cannot move or drop within `'a`.
    solvers: HashMap<(&'static str, usize), FluidSolver<&'a dyn PenaltyModel>>,
    local: LocalCounters,
}

impl<'a> SweepWorker<'a> {
    fn attached(shared: &'a SessionShared, index: usize) -> Self {
        SweepWorker {
            shared: Some(shared),
            index,
            arenas: HashMap::new(),
            fork_arenas: HashMap::new(),
            trefs: HashMap::new(),
            solvers: HashMap::new(),
            local: LocalCounters::default(),
        }
    }

    /// A worker with no session behind it: all reuse is worker-local.
    /// This is what the one-shot free functions (`compare_scheme`,
    /// `size_sweep`, …) are wrappers over.
    pub fn standalone() -> Self {
        SweepWorker {
            shared: None,
            index: 0,
            arenas: HashMap::new(),
            fork_arenas: HashMap::new(),
            trefs: HashMap::new(),
            solvers: HashMap::new(),
            local: LocalCounters::default(),
        }
    }

    /// Checks the fork arena for `key` out of the worker (falling back to
    /// the session's parked arenas from earlier sweep calls). The caller
    /// owns the arena until [`Self::put_fork_arena`] hands it back —
    /// taking it out of the worker sidesteps any borrow of the worker's
    /// other reusable state while the arena is in use. Returns `None` on
    /// a cold key (and always for standalone workers' first use), in
    /// which case the caller builds the state fresh and still hands it
    /// back to warm the next use.
    pub fn take_fork_arena(&mut self, key: u64) -> Option<Box<dyn std::any::Any + Send>> {
        if let Some(arena) = self.fork_arenas.remove(&key) {
            return Some(arena);
        }
        let shared = self.shared?;
        shared
            .fork_arenas
            .lock()
            .expect("session fork arenas")
            .remove(&(key, self.index))
    }

    /// Returns a fork arena to the worker; it survives into later sweep
    /// calls of the same session (flushed back on worker drop).
    pub fn put_fork_arena(&mut self, key: u64, arena: Box<dyn std::any::Any + Send>) {
        self.fork_arenas.insert(key, arena);
    }

    /// The arena fabric for `cfg`, reset and large enough for `nodes`
    /// nodes (growing to the next power-of-two capacity on a miss, so
    /// repeated growth stays logarithmic).
    pub fn fabric(&mut self, cfg: FabricConfig, nodes: usize) -> &mut PacketFabric {
        let key = cfg.key();
        let need = nodes.max(2);
        let fits = self
            .arenas
            .get(&key)
            .is_some_and(|fab| fab.capacity() >= need);
        if fits {
            self.local.fabrics_reused += 1;
        } else {
            self.local.fabrics_built += 1;
            if let Some(old) = self.arenas.remove(&key) {
                // carry the retiring fabric's network counters forward
                self.local.networks_built += old.stats().networks_built;
                self.local.networks_reused += old.stats().networks_reused;
            }
            // at least 8 nodes up front: batteries mix scheme sizes, and
            // crossbar capacity is timing-neutral, so over-provisioning
            // trades a few idle lanes for arena hits
            self.arenas
                .insert(key, PacketFabric::new(cfg, need.next_power_of_two().max(8)));
        }
        self.arenas.get_mut(&key).expect("just ensured")
    }

    /// The reference time `Tref(size)` on `cfg`, memoized worker-locally
    /// and (when attached to a session) across workers.
    pub fn tref(&mut self, cfg: FabricConfig, size: u64) -> f64 {
        let key = cfg.key();
        if let Some(t) = self.trefs.get(&key).and_then(|c| c.lookup(size)) {
            self.local.tref_hits += 1;
            return t;
        }
        if let Some(t) = self.shared.and_then(|s| s.tref_lookup(key, size)) {
            self.local.tref_hits += 1;
            self.trefs.entry(key).or_default().insert(size, t);
            return t;
        }
        self.local.tref_misses += 1;
        let t = self.fabric(cfg, 2).reference_time(size);
        self.trefs.entry(key).or_default().insert(size, t);
        if let Some(shared) = self.shared {
            shared.tref_publish(key, size, t);
        }
        t
    }

    /// The reusable fluid solver for this `model` instance.
    pub fn solver(
        &mut self,
        model: &'a dyn PenaltyModel,
    ) -> &mut FluidSolver<&'a dyn PenaltyModel> {
        let key = (
            model.name(),
            model as *const dyn PenaltyModel as *const () as usize,
        );
        self.solvers
            .entry(key)
            .or_insert_with(|| FluidSolver::new(model, NetworkParams::unit()))
    }

    /// Session-backed [`crate::compare_scheme`]: identical arithmetic and
    /// bit-for-bit identical results, but the fabric, the `Tref` values
    /// and the solver come from this worker's reusable state.
    pub fn compare_scheme(
        &mut self,
        model: &'a dyn PenaltyModel,
        fabric: FabricConfig,
        scheme: &CommGraph,
    ) -> SchemeComparison {
        let nodes = scheme
            .nodes()
            .iter()
            .map(|n| n.idx() + 1)
            .max()
            .unwrap_or(2)
            .max(2);
        let measured = self.fabric(fabric, nodes).run_scheme(scheme);
        let eff = self.solver(model).effective_penalties(scheme);
        let predicted: Vec<f64> = scheme
            .comms()
            .iter()
            .zip(&eff)
            .map(|(c, p)| p * self.tref(fabric, c.size))
            .collect();
        let erel: Vec<f64> = predicted
            .iter()
            .zip(&measured)
            .map(|(&tp, &tm)| relative_error(tp, tm))
            .collect();
        let eabs = mean_absolute_error(&erel);
        SchemeComparison {
            scheme: scheme.name().to_string(),
            labels: scheme.labels().to_vec(),
            measured,
            predicted,
            erel,
            eabs,
        }
    }

    /// Session-backed [`netbw_packet::measure_penalties`]: same
    /// methodology, fabric and `Tref` from the worker's reusable state.
    pub fn measure_penalties(
        &mut self,
        cfg: FabricConfig,
        graph: &CommGraph,
    ) -> PenaltyMeasurement {
        let nodes = graph
            .nodes()
            .iter()
            .map(|n| n.idx() + 1)
            .max()
            .unwrap_or(2)
            .max(2);
        let times = self.fabric(cfg, nodes).run_scheme(graph);
        let penalties: Vec<f64> = graph
            .comms()
            .iter()
            .zip(&times)
            .map(|(c, t)| t / self.tref(cfg, c.size))
            .collect();
        let tref = graph
            .comms()
            .first()
            .map(|c| self.tref(cfg, c.size))
            .unwrap_or(0.0);
        PenaltyMeasurement {
            fabric: cfg.name,
            tref,
            times,
            penalties,
        }
    }

    /// Session-backed [`crate::compare_hpl`]. HPL replays drive their own
    /// incremental networks through the trace simulator (nothing resets
    /// between policies), so the session contributes scheduling, not
    /// state reuse; the method exists so HPL batteries ride the same
    /// executor as scheme batteries.
    pub fn compare_hpl(
        &mut self,
        hpl: &HplConfig,
        cluster: &ClusterSpec,
        policy: &PlacementPolicy,
        model: &'a dyn PenaltyModel,
        fabric: FabricConfig,
    ) -> Result<HplComparison, SimError> {
        crate::experiment::compare_hpl_dyn(hpl, cluster, policy, model, fabric)
    }
}

impl Drop for SweepWorker<'_> {
    fn drop(&mut self) {
        let Some(shared) = self.shared else {
            return;
        };
        if !self.fork_arenas.is_empty() {
            let mut parked = shared.fork_arenas.lock().expect("session fork arenas");
            for (key, arena) in self.fork_arenas.drain() {
                parked.insert((key, self.index), arena);
            }
        }
        let mut nb = self.local.networks_built;
        let mut nr = self.local.networks_reused;
        for fab in self.arenas.values() {
            nb += fab.stats().networks_built;
            nr += fab.stats().networks_reused;
        }
        shared
            .fabrics_built
            .fetch_add(self.local.fabrics_built, Ordering::Relaxed);
        shared
            .fabrics_reused
            .fetch_add(self.local.fabrics_reused, Ordering::Relaxed);
        shared.networks_built.fetch_add(nb, Ordering::Relaxed);
        shared.networks_reused.fetch_add(nr, Ordering::Relaxed);
        shared
            .tref_hits
            .fetch_add(self.local.tref_hits, Ordering::Relaxed);
        shared
            .tref_misses
            .fetch_add(self.local.tref_misses, Ordering::Relaxed);
    }
}

/// A sweep execution session: a work-stealing executor plus the shared
/// and per-worker reusable state described in the module docs. Create one
/// per battery campaign and drive every battery through it; read
/// [`EvalSession::stats`] at the end.
pub struct EvalSession {
    threads: usize,
    shared: SessionShared,
}

impl Default for EvalSession {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalSession {
    /// A session using every available core.
    pub fn new() -> Self {
        Self::with_threads(0)
    }

    /// A session using up to `threads` workers (0 = available
    /// parallelism).
    pub fn with_threads(threads: usize) -> Self {
        EvalSession {
            threads: SweepExecutor::new(threads).threads(),
            shared: SessionShared::default(),
        }
    }

    /// A single-worker session: same reuse, no parallelism. The free
    /// functions wrap one of these per call.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// The worker ceiling in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every item on the session's executor, handing each
    /// worker its own reusable [`SweepWorker`]. Results keep input order;
    /// counters accumulate into [`EvalSession::stats`].
    pub fn sweep<'s, T, R, F>(&'s self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut SweepWorker<'s>, &T) -> R + Sync,
    {
        let exec = SweepExecutor::new(self.threads);
        let (out, exec_stats) = exec.map_init(
            items,
            |w| SweepWorker::attached(&self.shared, w),
            |worker, item, _| f(worker, item),
        );
        self.shared
            .items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        self.shared.absorb_exec(&exec_stats);
        out
    }

    /// [`crate::compare_scheme`] over a whole battery: one result per
    /// scheme, input order, bit-for-bit identical to the per-call path.
    pub fn compare_schemes<'s>(
        &'s self,
        model: &'s dyn PenaltyModel,
        fabric: FabricConfig,
        schemes: &[CommGraph],
    ) -> Vec<SchemeComparison> {
        self.sweep(schemes, |worker, scheme| {
            worker.compare_scheme(model, fabric, scheme)
        })
    }

    /// [`crate::sizes::size_sweep`] through the session: sweep points
    /// evaluate in parallel, fabrics and `Tref`s come from the arenas.
    pub fn size_sweep<'s>(
        &'s self,
        model: &'s dyn PenaltyModel,
        fabric: FabricConfig,
        scheme: &CommGraph,
        sizes: &[u64],
    ) -> Vec<crate::sizes::SizePoint> {
        self.sweep(sizes, |worker, &size| {
            crate::sizes::size_point(worker, model, fabric, scheme, size)
        })
    }

    /// The Fig. 2 table (measured penalties of the six schemes on all
    /// three fabrics) with every scheme × fabric cell measured through
    /// the session.
    pub fn fig2_table(&self, size: u64) -> Table {
        let fabrics = FabricConfig::paper_fabrics();
        let jobs: Vec<(usize, FabricConfig)> = (1..=6)
            .flat_map(|s| fabrics.into_iter().map(move |cfg| (s, cfg)))
            .collect();
        let measured = self.sweep(&jobs, |worker, &(s, cfg)| {
            let scheme = netbw_graph::schemes::fig2_scheme(s).with_uniform_size(size);
            worker.measure_penalties(cfg, &scheme).penalties
        });
        let mut t = Table::new(["scheme", "com.", "gige", "myrinet", "infiniband"]);
        for s in 1..=6usize {
            let scheme = netbw_graph::schemes::fig2_scheme(s);
            let per_fabric = &measured[(s - 1) * fabrics.len()..s * fabrics.len()];
            for (i, label) in scheme.labels().iter().enumerate() {
                t.push([
                    if i == 0 {
                        format!("{s}")
                    } else {
                        String::new()
                    },
                    label.clone(),
                    fnum(per_fabric[0][i], 2),
                    fnum(per_fabric[1][i], 2),
                    fnum(per_fabric[2][i], 2),
                ]);
            }
        }
        t
    }

    /// Snapshot of the session's counters.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            items: self.shared.items.load(Ordering::Relaxed),
            fabrics_built: self.shared.fabrics_built.load(Ordering::Relaxed),
            fabrics_reused: self.shared.fabrics_reused.load(Ordering::Relaxed),
            networks_built: self.shared.networks_built.load(Ordering::Relaxed),
            networks_reused: self.shared.networks_reused.load(Ordering::Relaxed),
            tref_hits: self.shared.tref_hits.load(Ordering::Relaxed),
            tref_misses: self.shared.tref_misses.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            per_worker_items: self
                .shared
                .per_worker_items
                .lock()
                .expect("per-worker items")
                .clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::{GigabitEthernetModel, MyrinetModel};
    use netbw_graph::schemes;
    use netbw_graph::units::MB;

    fn battery() -> Vec<CommGraph> {
        (1..=6)
            .map(|s| schemes::fig2_scheme(s).with_uniform_size(MB))
            .chain([
                schemes::mk1().with_uniform_size(MB),
                schemes::outgoing_ladder(3).with_uniform_size(2 * MB),
            ])
            .collect()
    }

    #[test]
    fn session_battery_matches_per_call_path_bit_for_bit() {
        let model = MyrinetModel::default();
        let fabric = FabricConfig::myrinet2000();
        let battery = battery();
        let session = EvalSession::with_threads(3);
        let got = session.compare_schemes(&model, fabric, &battery);
        assert_eq!(got.len(), battery.len());
        for (g, scheme) in got.iter().zip(&battery) {
            let want = crate::compare_scheme(&model, fabric, scheme);
            assert_eq!(g.scheme, want.scheme);
            assert_eq!(g.measured, want.measured, "{}", want.scheme);
            assert_eq!(g.predicted, want.predicted, "{}", want.scheme);
            assert_eq!(g.erel, want.erel, "{}", want.scheme);
            assert_eq!(g.eabs, want.eabs, "{}", want.scheme);
        }
    }

    #[test]
    fn session_reuses_fabrics_and_trefs() {
        let model = GigabitEthernetModel::default();
        let fabric = FabricConfig::gige();
        let battery = battery();
        let session = EvalSession::sequential();
        session.compare_schemes(&model, fabric, &battery);
        let stats = session.stats();
        assert_eq!(stats.items, battery.len() as u64);
        // one build (plus possible capacity growth), everything else reuse
        assert!(stats.fabrics_built <= 2, "{stats}");
        assert!(stats.fabric_reuse_rate() > 0.8, "{stats}");
        // two distinct sizes in the battery → two measurements, rest hits
        assert_eq!(stats.tref_misses, 2, "{stats}");
        assert!(stats.tref_hits > 0, "{stats}");
        assert_eq!(stats.per_worker_items, vec![battery.len() as u64]);
    }

    #[test]
    fn shared_tref_memo_crosses_workers() {
        let model = GigabitEthernetModel::default();
        let fabric = FabricConfig::gige();
        // every scheme the same size: with N workers, at most N misses
        let battery: Vec<CommGraph> = (0..12)
            .map(|_| schemes::outgoing_ladder(2).with_uniform_size(MB))
            .collect();
        let session = EvalSession::with_threads(4);
        session.compare_schemes(&model, fabric, &battery);
        let stats = session.stats();
        assert!(
            stats.tref_misses <= 4,
            "shared memo must bound misses by worker count: {stats}"
        );
    }

    #[test]
    fn session_fig2_table_matches_free_function() {
        let size = MB;
        let a = EvalSession::with_threads(2).fig2_table(size).to_markdown();
        let b = crate::fig2_table(size).to_markdown();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_zero_sized_models_get_distinct_solvers() {
        // LinearModel and MaxConflictModel are ZSTs, so their borrows can
        // land on one address (they reliably do in release builds): the
        // solver map must still keep them apart, or one baseline's column
        // silently becomes the other's. Keyed by (name, address).
        use netbw_core::baseline::{LinearModel, MaxConflictModel};
        let fabric = FabricConfig::myrinet2000();
        let scheme = schemes::outgoing_ladder(3).with_uniform_size(MB);
        let linear = LinearModel;
        let max_conflict = MaxConflictModel;
        let mut worker = SweepWorker::standalone();
        let lin = worker.compare_scheme(&linear, fabric, &scheme);
        let max = worker.compare_scheme(&max_conflict, fabric, &scheme);
        assert_eq!(worker.solvers.len(), 2, "one solver per model");
        assert_eq!(
            lin.predicted,
            crate::compare_scheme(&LinearModel, fabric, &scheme).predicted
        );
        assert_eq!(
            max.predicted,
            crate::compare_scheme(&MaxConflictModel, fabric, &scheme).predicted
        );
        assert_ne!(
            lin.predicted, max.predicted,
            "the two baselines disagree on a ladder; identical columns \
             mean the solver map conflated them"
        );
    }

    #[test]
    fn standalone_worker_reuses_across_calls() {
        let model = MyrinetModel::default();
        let fabric = FabricConfig::myrinet2000();
        let mut worker = SweepWorker::standalone();
        let g = schemes::outgoing_ladder(2).with_uniform_size(MB);
        let a = worker.compare_scheme(&model, fabric, &g);
        let b = worker.compare_scheme(&model, fabric, &g);
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(worker.local.fabrics_built, 1);
        assert!(worker.local.fabrics_reused >= 1);
        assert_eq!(worker.local.tref_misses, 1);
    }
}
