//! Work-stealing sweep executor for experiment batteries.
//!
//! Model evaluation is embarrassingly parallel across schemes, but the
//! items are far from uniform (a 10-comm MK2 run costs many times a
//! 2-comm ladder), so a static block split leaves workers idle. The
//! [`SweepExecutor`] gives every worker its own deque over a contiguous
//! block of item indices; a worker that drains its block steals the back
//! half of a victim's deque. Results land in per-worker `(index, result)`
//! buffers that are merged once at join — no shared results lock on the
//! per-item path (the pre-executor `parallel_map` funnelled every result
//! through a single `Mutex<Vec<Option<R>>>`) — and output always keeps
//! input order, whatever the steal schedule was.
//!
//! [`parallel_map`] survives as a thin stateless wrapper. Stateful sweeps
//! (per-worker fabric arenas, solver reuse) go through
//! [`SweepExecutor::map_init`], which is what
//! [`crate::session::EvalSession`] builds on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-worker `(input index, result)` buffers handed over at join.
type ResultBuffers<R> = Mutex<Vec<(usize, Vec<(usize, R)>)>>;

/// Observability counters of one executor run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Workers that ran (1 = inline sequential path).
    pub workers: usize,
    /// Successful steal operations (batches moved, not items).
    pub steals: u64,
    /// Items each worker processed, indexed by worker.
    pub per_worker_items: Vec<u64>,
}

/// Work-stealing executor over a fixed item set.
#[derive(Clone, Copy, Debug)]
pub struct SweepExecutor {
    threads: usize,
}

impl SweepExecutor {
    /// An executor using up to `threads` workers (0 = available
    /// parallelism).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        SweepExecutor { threads }
    }

    /// The configured worker ceiling.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, returning results in input order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_init(items, |_| (), |(), item, _| f(item)).0
    }

    /// Applies `f` to every item with per-worker state: `init(worker)`
    /// runs once on each worker thread before it takes its first item,
    /// and the state is threaded through every item that worker processes
    /// (its own block plus anything it steals). Results keep input order;
    /// `f` also receives the item's input index.
    ///
    /// A panicking `f` propagates to the caller (scoped threads re-raise
    /// on join), matching the sequential path.
    pub fn map_init<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> (Vec<R>, ExecutorStats)
    where
        T: Sync,
        R: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, &T, usize) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return (
                Vec::new(),
                ExecutorStats {
                    workers: 1,
                    steals: 0,
                    per_worker_items: vec![0],
                },
            );
        }
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            let mut state = init(0);
            let out = items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, item, i))
                .collect();
            return (
                out,
                ExecutorStats {
                    workers: 1,
                    steals: 0,
                    per_worker_items: vec![n as u64],
                },
            );
        }

        // Contiguous blocks keep each worker on cache-friendly, input-order
        // work until stealing begins.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w * n / workers..(w + 1) * n / workers).collect()))
            .collect();
        let steals = AtomicU64::new(0);
        // Per-worker result buffers, handed over once per worker at join —
        // the only cross-thread write is one push per worker.
        let buffers: ResultBuffers<R> = Mutex::new(Vec::with_capacity(workers));
        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let steals = &steals;
                let buffers = &buffers;
                let f = &f;
                let init = &init;
                scope.spawn(move || {
                    let mut state = init(w);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = deques[w].lock().expect("sweep deque").pop_front();
                        let i = match next {
                            Some(i) => i,
                            None => match steal_batch(deques, w) {
                                Some(mut batch) => {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    let first = batch.pop_front().expect("non-empty steal");
                                    if !batch.is_empty() {
                                        deques[w].lock().expect("sweep deque").append(&mut batch);
                                    }
                                    first
                                }
                                None => break,
                            },
                        };
                        local.push((i, f(&mut state, &items[i], i)));
                    }
                    buffers.lock().expect("sweep buffers").push((w, local));
                });
            }
        });

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut per_worker_items = vec![0u64; workers];
        for (w, buf) in buffers.into_inner().expect("sweep buffers") {
            per_worker_items[w] = buf.len() as u64;
            for (i, r) in buf {
                debug_assert!(out[i].is_none(), "item {i} processed twice");
                out[i] = Some(r);
            }
        }
        let out = out
            .into_iter()
            .map(|r| r.expect("every item processed"))
            .collect();
        let stats = ExecutorStats {
            workers,
            steals: steals.into_inner(),
            per_worker_items,
        };
        (out, stats)
    }
}

/// The sweep executor doubles as the settle dispatcher for the sharded
/// fluid engine ([`netbw_fluid::FluidNetwork::with_sharded_dispatch`]):
/// one settle barrier's dirty-shard refreshes are independent one-shot
/// jobs, exactly the uneven-item workload the work-stealing deques were
/// built for. Jobs are wrapped in per-item mutexes only to satisfy
/// `map`'s `&T` access — each job is taken by exactly one worker, so the
/// locks are uncontended. Panicking jobs propagate through the scoped
/// join, which is what keeps a poisoned shard from deadlocking the settle
/// barrier above. A single-job barrier (or a 1-thread executor) runs
/// inline on the calling thread — no spawn cost for mostly-serial
/// workloads.
impl netbw_fluid::SettleDispatch for SweepExecutor {
    fn run_settles(&self, jobs: &mut [netbw_fluid::SettleJob<'_>]) {
        let cells: Vec<Mutex<&mut netbw_fluid::SettleJob<'_>>> =
            jobs.iter_mut().map(Mutex::new).collect();
        self.map(&cells, |cell| {
            cell.lock().expect("settle job lock").run();
        });
    }
}

/// Steals the back half (at least one item) of the first non-empty
/// victim deque, scanning round-robin from the thief's successor. `None`
/// when every other deque is empty — with a fixed item set that means
/// the thief is done. (An item may briefly be in a thief's hands between
/// two locks; the thief itself processes it, so no item is ever lost.)
fn steal_batch(deques: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<VecDeque<usize>> {
    let workers = deques.len();
    for off in 1..workers {
        let victim = (thief + off) % workers;
        let mut q = deques[victim].lock().expect("sweep deque");
        let len = q.len();
        if len > 0 {
            // Take the back half: the victim keeps the front it is already
            // working towards.
            return Some(q.split_off(len / 2));
        }
    }
    None
}

/// Applies `f` to every item on a pool of work-stealing workers, returning
/// results in input order. Uses up to `threads` workers (0 = available
/// parallelism). Thin stateless wrapper over [`SweepExecutor::map`].
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    SweepExecutor::new(threads).map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let items: Vec<u64> = (0..16).collect();
        assert_eq!(parallel_map(&items, 0, |&x| x), items);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items = vec![1u64, 2, 3];
        parallel_map(&items, 2, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn per_worker_state_covers_every_item_once() {
        let items: Vec<usize> = (0..257).collect();
        let exec = SweepExecutor::new(4);
        let (out, stats) = exec.map_init(
            &items,
            |w| (w, 0u64),
            |s, &x, i| {
                s.1 += 1;
                assert_eq!(x, i);
                x * 3
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(stats.per_worker_items.iter().sum::<u64>(), 257);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn skewed_items_get_stolen() {
        // Worker 0's block is one long sleep; the other workers drain
        // their blocks instantly and must steal the rest of block 0.
        let items: Vec<u64> = (0..64).collect();
        let exec = SweepExecutor::new(4);
        let (out, stats) = exec.map_init(
            &items,
            |_| (),
            |(), &x, _| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(60));
                }
                x + 1
            },
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        assert!(stats.steals > 0, "expected steals: {stats:?}");
        // worker 0 spent its time asleep: it cannot have run its whole block
        assert!(
            stats.per_worker_items[0] < 16,
            "steals must relieve the stuck worker: {stats:?}"
        );
    }

    #[test]
    fn executor_caps_workers_at_item_count() {
        let items = vec![1u64, 2];
        let (out, stats) = SweepExecutor::new(16).map_init(&items, |_| (), |(), &x, _| x);
        assert_eq!(out, items);
        assert!(stats.workers <= 2);
    }
}
