//! Parallel experiment sweeps over scheme batteries.
//!
//! Model evaluation is embarrassingly parallel across schemes; this module
//! fans work out over `std::thread::scope` workers so batteries of
//! hundreds of graphs evaluate concurrently and deterministically
//! (results keep input order).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a pool of scoped worker threads, returning
/// results in input order. Uses up to `threads` workers (0 = available
/// parallelism).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    // std::thread::scope re-raises worker panics on join, so a panicking
    // `f` propagates to the caller like the sequential path.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("sweep results lock")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep results lock")
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let items: Vec<u64> = (0..16).collect();
        assert_eq!(parallel_map(&items, 0, |&x| x), items);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items = vec![1u64, 2, 3];
        parallel_map(&items, 2, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
