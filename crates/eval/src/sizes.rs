//! Message-size sweeps: where penalties and placement choices cross over.
//!
//! Penalties are size-independent in the models, but *applications* are
//! not: the balance between latency, contention, and intra-node copies
//! shifts with payload size. These sweeps expose crossovers — e.g. the
//! size above which co-locating ring neighbours (RRP) beats spreading
//! tasks (RRN) — which is exactly the integrator question from the
//! paper's introduction.

use crate::session::SweepWorker;
use netbw_core::PenaltyModel;
use netbw_graph::CommGraph;
use netbw_packet::FabricConfig;

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizePoint {
    /// Message size, bytes.
    pub size: u64,
    /// Mean absolute model error at this size, percent.
    pub eabs: f64,
    /// Worst measured penalty at this size.
    pub worst_measured_penalty: f64,
}

/// One sweep point through a worker's reusable state: the comparison and
/// the worst-penalty normalisation share the worker's arena fabric and
/// `Tref` memo (the pre-session path built a second fabric just to
/// re-measure `Tref`).
pub(crate) fn size_point<'a>(
    worker: &mut SweepWorker<'a>,
    model: &'a dyn PenaltyModel,
    fabric: FabricConfig,
    scheme: &CommGraph,
    size: u64,
) -> SizePoint {
    let sized = scheme.clone().with_uniform_size(size);
    let cmp = worker.compare_scheme(model, fabric, &sized);
    let tref = worker.tref(fabric, size);
    let worst = cmp.measured.iter().map(|&t| t / tref).fold(0.0, f64::max);
    SizePoint {
        size,
        eabs: cmp.eabs,
        worst_measured_penalty: worst,
    }
}

/// Sweeps a scheme across message sizes, measuring model accuracy and
/// worst-case sharing per size. One-shot wrapper over a standalone
/// [`SweepWorker`]; parallel campaigns should use
/// [`crate::EvalSession::size_sweep`].
pub fn size_sweep(
    model: &dyn PenaltyModel,
    fabric: FabricConfig,
    scheme: &CommGraph,
    sizes: &[u64],
) -> Vec<SizePoint> {
    let mut worker = SweepWorker::standalone();
    sizes
        .iter()
        .map(|&size| size_point(&mut worker, model, fabric, scheme, size))
        .collect()
}

/// Finds the first size (among `sizes`, ascending) where series `a`
/// drops below series `b` — a crossover detector for sweep outputs.
pub fn first_crossover(sizes: &[u64], a: &[f64], b: &[f64]) -> Option<u64> {
    assert_eq!(sizes.len(), a.len());
    assert_eq!(sizes.len(), b.len());
    sizes
        .iter()
        .zip(a.iter().zip(b))
        .find(|(_, (x, y))| x < y)
        .map(|(s, _)| *s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::MyrinetModel;
    use netbw_graph::schemes;
    use netbw_graph::units::MB;

    #[test]
    fn sweep_covers_requested_sizes() {
        let pts = size_sweep(
            &MyrinetModel::default(),
            FabricConfig::myrinet2000(),
            &schemes::outgoing_ladder(2),
            &[MB, 4 * MB],
        );
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].size, MB);
        // ladder sharing: worst penalty close to 1.9 at any size
        for p in &pts {
            assert!((p.worst_measured_penalty - 1.9).abs() < 0.25, "{p:?}");
            assert!(p.eabs < 15.0, "{p:?}");
        }
    }

    #[test]
    fn model_error_shrinks_with_size_on_ladders() {
        // startup costs distort small messages; the asymptotic sharing is
        // what the models capture, so accuracy improves with size.
        let pts = size_sweep(
            &MyrinetModel::default(),
            FabricConfig::myrinet2000(),
            &schemes::outgoing_ladder(3),
            &[64 * 1024, MB, 16 * MB],
        );
        assert!(
            pts[2].eabs <= pts[0].eabs + 1.0,
            "error should not grow with size: {pts:?}"
        );
    }

    #[test]
    fn crossover_detector() {
        let sizes = [1u64, 2, 3, 4];
        let a = [5.0, 4.0, 2.0, 1.0];
        let b = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(first_crossover(&sizes, &a, &b), Some(3));
        assert_eq!(first_crossover(&sizes, &b, &b), None);
    }
}
