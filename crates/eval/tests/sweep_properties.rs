//! Property tests for the sweep executor and the session path.
//!
//! The contract the sweep engine lives by: whatever the worker count and
//! whatever the steal schedule, results are **bit-for-bit identical to
//! the sequential path and keep input order** — parallelism and state
//! reuse may never change an answer.

use netbw_core::{GigabitEthernetModel, MyrinetModel, Penalty, PenaltyModel};
use netbw_eval::{compare_scheme, parallel_map, EvalSession, SweepExecutor};
use netbw_fluid::{FluidNetwork, NetworkParams};
use netbw_graph::schemes;
use netbw_graph::units::KB;
use netbw_graph::{Communication, NodeId};
use netbw_packet::FabricConfig;
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic, float-heavy per-item function: any index mix-up or
/// double-processing shows up as a bit-level mismatch.
fn knead(x: u64, i: usize) -> f64 {
    let a = (x as f64).sqrt() + (i as f64 + 1.0).ln();
    (a * 1e9).sin() / (x as f64 + 1.5)
}

proptest! {
    /// Sequential (1 worker) vs every parallel worker count: identical
    /// output bits, input order preserved.
    #[test]
    fn executor_matches_sequential_bit_for_bit(
        items in proptest::collection::vec(0u64..1_000_000, 0..200),
        threads in 2usize..9,
    ) {
        let seq: Vec<f64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| knead(x, i))
            .collect();
        let par = parallel_map(&items, threads, |&x| x);
        prop_assert_eq!(&par, &items, "parallel_map must keep input order");
        let exec = SweepExecutor::new(threads);
        let (stateful, stats) =
            exec.map_init(&items, |_| (), |(), &x, i| knead(x, i));
        prop_assert_eq!(seq, stateful);
        prop_assert_eq!(
            stats.per_worker_items.iter().sum::<u64>(),
            items.len() as u64
        );
    }

    /// Per-worker state is per-worker: summing worker-local counters over
    /// any schedule accounts for every item exactly once.
    #[test]
    fn every_item_processed_exactly_once(
        n in 0usize..300,
        threads in 1usize..9,
    ) {
        let items: Vec<usize> = (0..n).collect();
        let exec = SweepExecutor::new(threads);
        let (out, stats) = exec.map_init(
            &items,
            |_| 0u64,
            |count, &x, i| {
                *count += 1;
                assert_eq!(x, i);
                x
            },
        );
        prop_assert_eq!(out, items);
        prop_assert_eq!(stats.per_worker_items.iter().sum::<u64>(), n as u64);
        prop_assert!(stats.workers <= threads.max(1));
    }
}

/// The session path (arenas + shared memo + reusable solvers, arbitrary
/// worker counts) answers bit-for-bit like the per-call free function.
#[test]
fn session_equals_per_call_for_any_worker_count() {
    let model = GigabitEthernetModel::default();
    let fabric = FabricConfig::gige();
    let battery: Vec<netbw_graph::CommGraph> = (1..=6)
        .map(|s| schemes::fig2_scheme(s).with_uniform_size(256 * KB))
        .chain([schemes::outgoing_ladder(3).with_uniform_size(512 * KB)])
        .collect();
    let want: Vec<_> = battery
        .iter()
        .map(|g| compare_scheme(&model, fabric, g))
        .collect();
    for threads in [1, 2, 5] {
        let session = EvalSession::with_threads(threads);
        let got = session.compare_schemes(&model, fabric, &battery);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.scheme, w.scheme, "threads={threads}");
            assert_eq!(g.measured, w.measured, "threads={threads} {}", w.scheme);
            assert_eq!(g.predicted, w.predicted, "threads={threads} {}", w.scheme);
            assert_eq!(g.erel, w.erel, "threads={threads} {}", w.scheme);
            assert_eq!(g.eabs, w.eabs, "threads={threads} {}", w.scheme);
        }
        let stats = session.stats();
        assert_eq!(stats.items, battery.len() as u64);
    }
}

/// A panic in one item propagates to the caller even when other workers
/// are mid-steal, and the executor does not deadlock on the way out.
/// (`std::thread::scope` re-raises worker panics as "a scoped thread
/// panicked", so no payload message to match on.)
#[test]
#[should_panic]
fn panic_propagates_under_stealing() {
    let items: Vec<u64> = (0..120).collect();
    let exec = SweepExecutor::new(4);
    let _ = exec.map_init(
        &items,
        |_| (),
        |(), &x, _| {
            if x == 0 {
                // park worker 0 so its block gets stolen while the panic fires
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            if x == 37 {
                panic!("sweep item 37 exploded");
            }
            x
        },
    );
}

/// A staggered multi-component workload: `comps` disjoint conflict
/// components (nodes `base..base+4` each), every one alive across the
/// whole run so settle barriers regularly carry several dirty shards.
fn multi_component_workload(comps: u32) -> Vec<(u64, Communication, f64)> {
    let mut adds: Vec<(u64, Communication, f64)> = Vec::new();
    let mut key = 0u64;
    for c in 0..comps {
        let base = c * 4;
        for (i, (src, dst, size, start)) in [
            (base, base + 1, 300u64, 0.0f64),
            (base, base + 2, 201, 5.0),
            (base + 3, base + 1, 157, 12.5),
        ]
        .into_iter()
        .enumerate()
        {
            adds.push((key + i as u64, Communication::new(src, dst, size), start));
        }
        key += 3;
    }
    adds.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
    adds
}

/// The sharded engine dispatched through the work-stealing executor must
/// answer bit-for-bit like the serial dispatcher and the unsharded heap
/// engine, for every worker count — parallel settle barriers may never
/// change an answer.
#[test]
fn executor_dispatched_shard_settles_match_serial_bit_for_bit() {
    let adds = multi_component_workload(6);
    let run = |mut net: FluidNetwork<MyrinetModel>| {
        for &(k, c, s) in &adds {
            net.add(k, c, s);
        }
        let mut done = net.run_to_completion();
        done.sort_by_key(|d| d.key);
        done
    };
    let params = NetworkParams::new(2.0, 0.5);
    let heap = run(FluidNetwork::new(MyrinetModel::default(), params));
    let serial = run(FluidNetwork::new(MyrinetModel::default(), params).with_sharded());
    assert_eq!(heap.len(), adds.len());
    for threads in [1, 2, 4, 8] {
        let exec = Arc::new(SweepExecutor::new(threads));
        let par =
            run(FluidNetwork::new(MyrinetModel::default(), params).with_sharded_dispatch(exec));
        assert_eq!(par.len(), heap.len());
        for ((h, s), p) in heap.iter().zip(&serial).zip(&par) {
            assert_eq!(h.key, p.key, "threads={threads}");
            assert_eq!(
                h.completion.to_bits(),
                s.completion.to_bits(),
                "serial sharded vs heap, key {}",
                h.key
            );
            assert_eq!(
                h.completion.to_bits(),
                p.completion.to_bits(),
                "threads={threads}, key {}",
                h.key
            );
        }
    }
}

/// A penalty model that panics whenever node 13 sends: one poisoned shard
/// among healthy ones.
struct PoisonModel;

impl PenaltyModel for PoisonModel {
    fn name(&self) -> &'static str {
        "poison"
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        assert!(
            !comms.iter().any(|c| c.src == NodeId(13)),
            "poisoned shard: node 13 is sending"
        );
        vec![Penalty::ONE; comms.len()]
    }
}

/// A model panic inside one shard's settle job must propagate out of the
/// settle barrier (scoped threads re-raise on join) instead of
/// deadlocking the other workers — the shard-worker sibling of
/// [`panic_propagates_under_stealing`]. The test *finishing* (with the
/// expected panic) is the non-deadlock proof.
#[test]
#[should_panic]
fn poisoned_shard_panic_propagates_through_settle_barrier() {
    let mut net = FluidNetwork::new(PoisonModel, NetworkParams::new(1.0, 0.0))
        .with_sharded_dispatch(Arc::new(SweepExecutor::new(4)));
    // four disjoint components, all dirty at the first settle barrier;
    // the one where node 13 sends poisons its worker
    for (k, (src, dst)) in [(0u32, 1u32), (4, 5), (8, 9), (13, 12)].iter().enumerate() {
        net.add(k as u64, Communication::new(*src, *dst, 100), 0.0);
    }
    let _ = net.run_to_completion();
}

/// Myrinet through the session: the state-heavy model (union-find scratch,
/// budget certification) also survives solver reuse bit-for-bit.
#[test]
fn myrinet_session_equals_per_call() {
    let model = MyrinetModel::default();
    let fabric = FabricConfig::myrinet2000();
    let battery = [
        schemes::mk1().with_uniform_size(256 * KB),
        schemes::fig5().with_uniform_size(256 * KB),
        schemes::mk2().with_uniform_size(128 * KB),
    ];
    let session = EvalSession::with_threads(2);
    let got = session.compare_schemes(&model, fabric, &battery);
    for (g, scheme) in got.iter().zip(&battery) {
        let w = compare_scheme(&model, fabric, scheme);
        assert_eq!(g.measured, w.measured, "{}", w.scheme);
        assert_eq!(g.predicted, w.predicted, "{}", w.scheme);
    }
}
