//! Property-based tests for the packet-level fabrics.

use netbw_graph::Communication;
use netbw_packet::{FabricConfig, PacketFabric, PacketNetwork};
use proptest::prelude::*;

fn arb_scheme() -> impl Strategy<Value = Vec<Communication>> {
    proptest::collection::vec((0u32..6, 0u32..5, 1u64..4_000_000), 1..7).prop_map(|raw| {
        raw.into_iter()
            .map(|(s, d_raw, size)| {
                let d = if d_raw >= s { d_raw + 1 } else { d_raw };
                Communication::new(s, d, size)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every transfer completes, no earlier than its injection floor and
    /// no later than total-serialization time.
    #[test]
    fn completion_bounds(comms in arb_scheme()) {
        for cfg in [FabricConfig::gige(), FabricConfig::myrinet2000(), FabricConfig::infinihost3()] {
            let mut fab = PacketFabric::new(cfg, 8);
            let times = fab.run_with_starts(&comms, &vec![0.0; comms.len()]);
            let total_bytes: u64 = comms.iter().map(|c| c.size).sum();
            for (t, c) in times.iter().zip(&comms) {
                let floor = c.size as f64 / cfg.flow_cap;
                prop_assert!(*t >= floor - 1e-9, "{}: {t} < {floor}", cfg.name);
                // generous ceiling: whole workload serialized on one link
                // through the slowest stage, plus per-message startup
                let ceil = total_bytes as f64 / cfg.rx_budget_busy()
                    + comms.len() as f64 * (cfg.startup + 1e-3) + 1.0;
                prop_assert!(*t <= ceil, "{}: {t} > {ceil}", cfg.name);
            }
        }
    }

    /// Determinism: identical runs produce identical times.
    #[test]
    fn deterministic(comms in arb_scheme()) {
        let cfg = FabricConfig::myrinet2000();
        let mut fab = PacketFabric::new(cfg, 8);
        let a = fab.run_with_starts(&comms, &vec![0.0; comms.len()]);
        let b = fab.run_with_starts(&comms, &vec![0.0; comms.len()]);
        prop_assert_eq!(a, b);
    }

    /// Incremental advancement with arbitrary step sizes equals batch.
    #[test]
    fn incremental_equals_batch(comms in arb_scheme(), step_ms in 1u64..500) {
        let cfg = FabricConfig::gige();
        let mut fab = PacketFabric::new(cfg, 8);
        let batch = fab.run_with_starts(&comms, &vec![0.0; comms.len()]);

        let mut net = PacketNetwork::new(cfg, 8);
        for (i, c) in comms.iter().enumerate() {
            net.add(i as u64, *c, 0.0);
        }
        let mut done = vec![f64::NAN; comms.len()];
        let mut t = 0.0;
        while net.in_flight() > 0 {
            t += step_ms as f64 * 1e-3;
            for (k, at) in net.advance_to(t) {
                done[k as usize] = at;
            }
        }
        for (i, (&d, &b)) in done.iter().zip(&batch).enumerate() {
            prop_assert!((d - b).abs() < 1e-9, "flow {i}: {d} vs {b}");
        }
    }

    /// Adding an unrelated flow between two fresh nodes never speeds up an
    /// existing flow.
    #[test]
    fn adding_disjoint_flow_never_helps(comms in arb_scheme()) {
        let cfg = FabricConfig::infinihost3();
        let mut fab = PacketFabric::new(cfg, 12);
        let base = fab.run_with_starts(&comms, &vec![0.0; comms.len()]);
        let mut more = comms.clone();
        more.push(Communication::new(10u32, 11u32, 1_000_000));
        let with = fab.run_with_starts(&more, &vec![0.0; more.len()]);
        for i in 0..comms.len() {
            prop_assert!(with[i] >= base[i] - 1e-9, "flow {i} sped up");
        }
    }
}

/// Reference time grows monotonically with size (non-property sanity).
#[test]
fn tref_monotone_in_size() {
    for cfg in FabricConfig::paper_fabrics() {
        let mut fab = PacketFabric::new(cfg, 2);
        let mut last = 0.0;
        for size in [1_000u64, 100_000, 1_000_000, 10_000_000] {
            let t = fab.reference_time(size);
            assert!(t > last, "{}: {t} at {size}", cfg.name);
            last = t;
        }
    }
}
