//! Network topology and routing.
//!
//! The paper's clusters use full-bisection fat trees, so core contention is
//! absent and sharing happens at the endpoints (NIC emission, NIC
//! reception). The default topology is therefore a non-blocking crossbar:
//! one egress server per node, one ingress server per node. A two-level
//! fat tree with configurable *oversubscription* is provided as an
//! extension: with `oversubscription > 1` the shared uplinks become
//! additional contention points (not part of the paper's evaluation, used
//! by our extension tests).

use netbw_graph::NodeId;

/// A serialization point in the fabric (a directed link or port engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ServerId(pub u32);

/// Route of a segment: the ordered servers it must serialize through,
/// excluding the receiver's host stage (handled separately).
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// Serialization servers, in path order.
    pub servers: Vec<ServerId>,
    /// Number of propagation hops (`servers` transitions + final hop).
    pub hops: usize,
}

/// Fabric topology: computes routes and owns the server name space.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: usize,
    /// Nodes per leaf switch (0 = crossbar, no leaf level).
    leaf_radix: usize,
    /// Uplink oversubscription factor (1.0 = full bisection).
    oversubscription: f64,
    server_count: u32,
}

impl Topology {
    /// Non-blocking crossbar over `nodes` nodes (the paper's setting).
    pub fn crossbar(nodes: usize) -> Self {
        assert!(nodes >= 2, "topology needs at least two nodes");
        Topology {
            nodes,
            leaf_radix: 0,
            oversubscription: 1.0,
            // servers: tx[node] then down[node]
            server_count: (nodes * 2) as u32,
        }
    }

    /// Two-level fat tree: `leaf_radix` nodes per leaf switch, shared
    /// uplinks with the given oversubscription factor (uplink capacity =
    /// link_rate × leaf_radix / oversubscription, modelled as
    /// `ceil(radix/oversub)` unit-rate uplink servers used round-robin by
    /// source node index).
    pub fn fat_tree(nodes: usize, leaf_radix: usize, oversubscription: f64) -> Self {
        assert!(nodes >= 2 && leaf_radix >= 1);
        assert!(oversubscription >= 1.0);
        let leaves = nodes.div_ceil(leaf_radix);
        let uplinks_per_leaf = (leaf_radix as f64 / oversubscription).ceil() as usize;
        Topology {
            nodes,
            leaf_radix,
            oversubscription,
            // tx[node], down[node], then per-leaf uplink/downlink servers
            server_count: (nodes * 2 + leaves * uplinks_per_leaf * 2) as u32,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total number of serialization servers.
    pub fn server_count(&self) -> u32 {
        self.server_count
    }

    /// The egress (NIC transmit) server of a node.
    pub fn tx_server(&self, node: NodeId) -> ServerId {
        assert!((node.idx()) < self.nodes, "node {node} out of range");
        ServerId(node.0)
    }

    /// The ingress (switch-to-NIC delivery) server of a node.
    pub fn down_server(&self, node: NodeId) -> ServerId {
        assert!((node.idx()) < self.nodes, "node {node} out of range");
        ServerId(self.nodes as u32 + node.0)
    }

    fn leaf_of(&self, node: NodeId) -> usize {
        node.idx() / self.leaf_radix
    }

    fn uplinks_per_leaf(&self) -> usize {
        (self.leaf_radix as f64 / self.oversubscription).ceil() as usize
    }

    /// Route from `src` to `dst`.
    ///
    /// # Panics
    /// On out-of-range nodes or `src == dst` (intra-node transfers never
    /// enter the fabric).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        assert!(src != dst, "intra-node traffic does not enter the fabric");
        let tx = self.tx_server(src);
        let down = self.down_server(dst);
        if self.leaf_radix == 0 || self.leaf_of(src) == self.leaf_of(dst) {
            // crossbar or same leaf: two serialization points, two hops
            return Route {
                servers: vec![tx, down],
                hops: 2,
            };
        }
        // cross-leaf: tx -> leaf uplink -> spine -> leaf downlink -> down
        let per = self.uplinks_per_leaf();
        let leaves = self.nodes.div_ceil(self.leaf_radix);
        let base = (self.nodes * 2) as u32;
        let up_leaf = self.leaf_of(src);
        let down_leaf = self.leaf_of(dst);
        let up_idx = src.idx() % per;
        let down_idx = dst.idx() % per;
        let up = ServerId(base + (up_leaf * per + up_idx) as u32);
        let dn = ServerId(base + (leaves * per) as u32 + (down_leaf * per + down_idx) as u32);
        Route {
            servers: vec![tx, up, dn, down],
            hops: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_routes_have_two_stages() {
        let t = Topology::crossbar(4);
        let r = t.route(NodeId(0), NodeId(3));
        assert_eq!(r.servers.len(), 2);
        assert_eq!(r.servers[0], t.tx_server(NodeId(0)));
        assert_eq!(r.servers[1], t.down_server(NodeId(3)));
        assert_eq!(r.hops, 2);
    }

    #[test]
    fn distinct_servers_per_node_and_direction() {
        let t = Topology::crossbar(4);
        let mut all = std::collections::HashSet::new();
        for n in 0..4u32 {
            assert!(all.insert(t.tx_server(NodeId(n))));
            assert!(all.insert(t.down_server(NodeId(n))));
        }
        assert_eq!(all.len(), 8);
        assert_eq!(t.server_count(), 8);
    }

    #[test]
    #[should_panic(expected = "intra-node")]
    fn intra_node_route_panics() {
        Topology::crossbar(4).route(NodeId(1), NodeId(1));
    }

    #[test]
    fn fat_tree_same_leaf_is_short() {
        let t = Topology::fat_tree(8, 4, 1.0);
        let r = t.route(NodeId(0), NodeId(3)); // same leaf
        assert_eq!(r.servers.len(), 2);
    }

    #[test]
    fn fat_tree_cross_leaf_adds_uplinks() {
        let t = Topology::fat_tree(8, 4, 1.0);
        let r = t.route(NodeId(0), NodeId(7));
        assert_eq!(r.servers.len(), 4);
        assert_eq!(r.hops, 4);
        // uplink/downlink servers are distinct from endpoint servers
        assert!(r.servers[1].0 >= 16);
        assert!(r.servers[2].0 >= 16);
        assert!(r.servers[2] != r.servers[1]);
    }

    #[test]
    fn oversubscribed_tree_shares_uplinks() {
        let t = Topology::fat_tree(8, 4, 4.0); // 1 uplink per leaf
        let r0 = t.route(NodeId(0), NodeId(7));
        let r1 = t.route(NodeId(1), NodeId(6));
        // both cross-leaf routes share the single leaf-0 uplink
        assert_eq!(r0.servers[1], r1.servers[1]);
    }

    #[test]
    fn server_ids_stay_in_bounds() {
        for t in [
            Topology::crossbar(5),
            Topology::fat_tree(9, 4, 1.0),
            Topology::fat_tree(16, 4, 2.0),
        ] {
            let n = t.nodes();
            for s in 0..n as u32 {
                for d in 0..n as u32 {
                    if s == d {
                        continue;
                    }
                    let r = t.route(NodeId(s), NodeId(d));
                    for srv in &r.servers {
                        assert!(srv.0 < t.server_count(), "server {srv:?} out of bounds");
                    }
                }
            }
        }
    }
}
