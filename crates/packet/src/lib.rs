//! Packet-level flow-control simulators — the stand-in for the paper's
//! three physical clusters.
//!
//! The paper measures bandwidth-sharing penalties on an IBM e326 Gigabit
//! Ethernet cluster, an IBM e325 Myrinet 2000 cluster, and a BULL Novascale
//! InfiniHost III cluster. We have none of them, so this crate implements a
//! segment-level discrete-event simulation of each fabric's *flow-control
//! mechanism* (the paper's §III identifies flow control as the causal
//! mechanism behind the sharing behaviour):
//!
//! * **Gigabit Ethernet / TCP** — a per-flow window ceiling (the TCP
//!   window/RTT limit that caps one stream at β ≈ 0.75 of the line) with
//!   deep network queueing; 802.3x pause semantics appear as lossless
//!   backpressure.
//! * **Myrinet 2000** — wormhole cut-through with Stop & Go: at most a
//!   path-depth worth of packets outstanding (window 3), so a busy receiver
//!   immediately stalls the sender; inter-packet gaps cap a single flow at
//!   ≈ 0.95 of the link.
//! * **InfiniBand (InfiniHost III)** — credit-based flow control (moderate
//!   outstanding window) plus static rate control capping one stream at
//!   ≈ 0.8625 of the link.
//!
//! All three share a receiver-side *host budget*: while a node is also
//! transmitting, its reception path (DMA/memory) is limited to
//! `host_budget − link_rate`, which reproduces the paper's income/outgo
//! measurements (Fig. 2 schemes 4–6: an incoming flow pays 1.14–1.45
//! depending on fabric). See the module docs of each fabric for the calibration and
//! `report_all` (netbw-bench) for simulated-vs-paper tables including known
//! deviations (the paper's scheme 5/6 rows contain strong TCP-unfairness
//! outliers that a mean-behaviour simulator does not produce).
//!
//! The crate exposes both a batch API ([`PacketFabric::run_scheme`]) and an
//! incremental API ([`PacketNetwork`]) that `netbw-sim` uses as its
//! "measured hardware" backend.

pub mod config;
pub mod des;
pub mod fabric;
pub mod measure;
pub mod topology;
pub mod tref;

pub use config::{FabricConfig, FabricKey};
pub use fabric::{FabricStats, PacketFabric, PacketNetwork};
pub use measure::{measure_penalties, PenaltyMeasurement, SchemeMeasurer};
pub use topology::Topology;
pub use tref::{TrefCache, DEFAULT_TREF_CAPACITY};
