//! The paper's penalty-measurement software (§IV.B), over the simulated
//! fabrics.
//!
//! The methodology: warm up (discarded iterations against cache effects),
//! measure the reference time `Tref` (a lone 20 MB `MPI_Send` from node 0
//! to node 1), run the scheme with a synchronized start, and report
//! `Pi = Ti / Tref` per communication. The simulator is deterministic, so
//! iterations collapse to one run; the warm-up/iteration knobs are kept in
//! the interface for methodological fidelity and forward compatibility.

use crate::config::FabricConfig;
use crate::fabric::PacketFabric;
use crate::tref::TrefCache;
use netbw_graph::CommGraph;

/// Result of measuring one scheme on one fabric.
#[derive(Clone, Debug)]
pub struct PenaltyMeasurement {
    /// Fabric name.
    pub fabric: &'static str,
    /// The reference time used (seconds).
    pub tref: f64,
    /// Per-communication completion times `Ti` (seconds), scheme order.
    pub times: Vec<f64>,
    /// Per-communication penalties `Pi = Ti / Tref`, scheme order.
    pub penalties: Vec<f64>,
}

/// Measures a scheme's penalties on a fabric, paper-style.
///
/// Each communication's penalty is normalised by the reference time *for
/// its own payload size*, so mixed-size schemes are handled consistently.
pub fn measure_penalties(cfg: FabricConfig, graph: &CommGraph) -> PenaltyMeasurement {
    let nodes = graph
        .nodes()
        .iter()
        .map(|n| n.idx() + 1)
        .max()
        .unwrap_or(2)
        .max(2);
    let mut fab = PacketFabric::new(cfg, nodes);
    let times = fab.run_scheme(graph);
    let mut trefs = TrefCache::new();
    let penalties: Vec<f64> = graph
        .comms()
        .iter()
        .zip(&times)
        .map(|(c, t)| t / trefs.reference_time(&mut fab, c.size))
        .collect();
    let tref = graph
        .comms()
        .first()
        .and_then(|c| trefs.lookup(c.size))
        .unwrap_or(0.0);
    PenaltyMeasurement {
        fabric: cfg.name,
        tref,
        times,
        penalties,
    }
}

/// Adapter implementing `netbw_core::calibrate::Measurer` over a fabric,
/// so the paper's calibration protocol (§V.A) can run against the
/// simulated hardware.
pub struct SchemeMeasurer {
    fab: PacketFabric,
}

impl SchemeMeasurer {
    /// Creates a measurer for `cfg` with capacity for `nodes` nodes.
    pub fn new(cfg: FabricConfig, nodes: usize) -> Self {
        SchemeMeasurer {
            fab: PacketFabric::new(cfg, nodes),
        }
    }
}

impl netbw_core::calibrate::Measurer for SchemeMeasurer {
    fn reference_time(&mut self, size: u64) -> f64 {
        self.fab.reference_time(size)
    }

    fn measure(&mut self, scheme: &CommGraph) -> Vec<f64> {
        self.fab.run_scheme(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::calibrate::calibrate_gige;
    use netbw_graph::schemes;
    use netbw_graph::units::MB;

    #[test]
    fn single_scheme_measures_penalty_one() {
        let m = measure_penalties(FabricConfig::gige(), &schemes::single());
        assert_eq!(m.penalties.len(), 1);
        assert!((m.penalties[0] - 1.0).abs() < 1e-9, "{:?}", m.penalties);
        assert!(m.tref > 0.0);
    }

    #[test]
    fn mixed_sizes_normalise_per_size() {
        let mut g = netbw_graph::CommGraph::new();
        g.add("big", 0u32, 1u32, 8 * MB);
        g.add("small", 2u32, 3u32, MB);
        let m = measure_penalties(FabricConfig::infinihost3(), &g);
        // independent flows: both near penalty 1 despite size difference
        for p in &m.penalties {
            assert!((p - 1.0).abs() < 0.02, "{:?}", m.penalties);
        }
    }

    #[test]
    fn calibration_against_simulated_gige_recovers_beta() {
        // The paper's protocol run against our simulated cluster must find
        // β ≈ 0.75 (the configured single-stream efficiency).
        let mut measurer = SchemeMeasurer::new(FabricConfig::gige(), 8);
        let model = calibrate_gige(&mut measurer, 20 * MB, 4 * MB).unwrap();
        assert!(
            (model.beta - 0.75).abs() < 0.02,
            "calibrated beta {}",
            model.beta
        );
        // γs: non-negative corrections. The simulated fabric exhibits the
        // same direction as the paper (the least-loaded sender's flow is
        // relieved) but with FIFO switch queues the magnitude is larger
        // than the 0.036–0.115 measured on the real cluster.
        assert!(
            (0.0..0.5).contains(&model.gamma_o),
            "gamma_o {}",
            model.gamma_o
        );
        assert!(
            (0.0..0.5).contains(&model.gamma_i),
            "gamma_i {}",
            model.gamma_i
        );
    }
}
