//! Fabric configurations calibrated against the paper's Fig. 2.

/// Parameters of one simulated fabric.
///
/// `flow_cap` expresses the fabric's injection control: the TCP window/RTT
/// ceiling for Ethernet, the inter-packet gap for Myrinet, static rate
/// control for InfiniBand. `window` is the number of outstanding segments
/// the flow-control protocol allows (TCP window in segments, wormhole path
/// depth for Stop & Go, link credits for InfiniBand). `host_budget` is the
/// node's total DMA/memory throughput; while a node transmits, reception is
/// limited to `host_budget − link_rate` (the income/outgo coupling of
/// Fig. 2 schemes 4–6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricConfig {
    /// Stable name used in reports.
    pub name: &'static str,
    /// Link rate per direction, bytes/second.
    pub link_rate: f64,
    /// Per-flow injection ceiling, bytes/second (≤ `link_rate`).
    pub flow_cap: f64,
    /// Total host DMA/memory budget, bytes/second (≥ `link_rate`).
    pub host_budget: f64,
    /// Segment (packet/chunk) size in bytes.
    pub segment: u64,
    /// Maximum outstanding segments per flow.
    pub window: usize,
    /// Per-hop propagation delay, seconds.
    pub prop_delay: f64,
    /// Per-message startup cost (MPI envelope/handshake), seconds.
    pub startup: f64,
    /// Wormhole cut-through semantics: a packet holds *every* server on
    /// its path simultaneously (Stop & Go head-of-line blocking). False =
    /// store-and-forward pipelining (Ethernet, InfiniBand).
    pub circuit: bool,
}

impl FabricConfig {
    /// Validates invariants; panics on nonsense.
    pub fn validate(&self) {
        assert!(self.link_rate > 0.0, "link_rate must be positive");
        assert!(
            self.flow_cap > 0.0 && self.flow_cap <= self.link_rate,
            "flow_cap must be in (0, link_rate]"
        );
        assert!(
            self.host_budget >= self.link_rate,
            "host_budget must be at least link_rate"
        );
        assert!(self.segment > 0, "segment must be positive");
        assert!(self.window >= 1, "window must be at least 1");
        assert!(self.prop_delay >= 0.0 && self.startup >= 0.0);
    }

    /// Single-stream efficiency `flow_cap / link_rate` (the paper's β).
    pub fn beta(&self) -> f64 {
        self.flow_cap / self.link_rate
    }

    /// Receiver budget while the node also transmits, bytes/second.
    pub fn rx_budget_busy(&self) -> f64 {
        self.host_budget - self.link_rate
    }

    /// The paper's Gigabit Ethernet cluster (IBM e326, BCM5704, MPICH/TCP):
    /// 1 Gb/s line, β = 0.75, host budget 1.65× line (Fig. 2 scheme 4:
    /// incoming penalty 0.75/0.65 = 1.15).
    pub fn gige() -> Self {
        let c = 125e6;
        FabricConfig {
            name: "gige",
            link_rate: c,
            flow_cap: 0.75 * c,
            host_budget: 1.65 * c,
            segment: 64 * 1024,
            window: 4, // 256 KB TCP window, ACK-clocked
            prop_delay: 5e-6,
            startup: 50e-6,
            circuit: false,
        }
    }

    /// The paper's Myrinet 2000 cluster (IBM e325, MPICH-MX): 250 MB/s
    /// links, single-flow efficiency 0.95 (inter-packet gaps), wormhole
    /// window 3 (Stop & Go blocks almost immediately), host budget 1.69×
    /// (Fig. 2 scheme 4: incoming penalty 0.95/0.69 ≈ 1.38, paper 1.45).
    pub fn myrinet2000() -> Self {
        let c = 250e6;
        FabricConfig {
            name: "myrinet",
            link_rate: c,
            flow_cap: 0.95 * c,
            host_budget: 1.69 * c,
            segment: 32 * 1024,
            window: 3, // wormhole path depth: Stop & Go blocks quickly
            prop_delay: 1e-6,
            startup: 10e-6,
            // NOTE: full circuit-per-packet blocking (`circuit: true`) is
            // available but disabled: at 32 KB granularity the reservation
            // dead-time compounds into convoy collapse on dense graphs
            // (see packet::fabric::tests::circuit_mode_convoys_dense_graphs),
            // which real Stop & Go avoids by operating at small-packet
            // granularity with immediate Go resume.
            circuit: false,
        }
    }

    /// The paper's InfiniHost III cluster (BULL Novascale, MVAPICH): 1 GB/s
    /// data rate, static rate control at 0.8625, credit window 16, host
    /// budget 1.76× (Fig. 2 scheme 4: incoming penalty 0.8625/0.76 ≈ 1.13,
    /// paper 1.14).
    pub fn infinihost3() -> Self {
        let c = 1e9;
        FabricConfig {
            name: "infiniband",
            link_rate: c,
            flow_cap: 0.8625 * c,
            host_budget: 1.76 * c,
            segment: 64 * 1024,
            window: 8, // per-QP credits
            prop_delay: 0.5e-6,
            startup: 5e-6,
            circuit: false,
        }
    }

    /// Coarse-grained variant for long application traces (HPL): larger
    /// segments keep event counts tractable; sharing behaviour at the
    /// flow level is unchanged.
    pub fn coarse(mut self) -> Self {
        self.segment = 512 * 1024;
        // keep the wormhole behaviour qualitatively: window scales down
        // with segment growth is unnecessary; windows stay as configured.
        self
    }

    /// All three paper fabrics.
    pub fn paper_fabrics() -> [FabricConfig; 3] {
        [Self::gige(), Self::myrinet2000(), Self::infinihost3()]
    }

    /// Hashable identity of this configuration (`f64` fields compared by
    /// bit pattern): the key under which fabric arenas and `Tref` memos
    /// index their per-fabric state. Two configs with the same key behave
    /// identically in every simulation.
    pub fn key(&self) -> FabricKey {
        FabricKey {
            name: self.name,
            rates: [
                self.link_rate.to_bits(),
                self.flow_cap.to_bits(),
                self.host_budget.to_bits(),
                self.prop_delay.to_bits(),
                self.startup.to_bits(),
            ],
            segment: self.segment,
            window: self.window,
            circuit: self.circuit,
        }
    }
}

/// Opaque hashable identity of a [`FabricConfig`] (see
/// [`FabricConfig::key`]). Used by `netbw_eval`'s session to key fabric
/// arenas and shared `Tref` memos.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FabricKey {
    name: &'static str,
    rates: [u64; 5],
    segment: u64,
    window: usize,
    circuit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for f in FabricConfig::paper_fabrics() {
            f.validate();
            assert!(f.beta() > 0.5 && f.beta() <= 1.0);
            assert!(f.rx_budget_busy() > 0.0);
        }
    }

    #[test]
    fn betas_match_paper_fits() {
        assert!((FabricConfig::gige().beta() - 0.75).abs() < 1e-12);
        assert!((FabricConfig::myrinet2000().beta() - 0.95).abs() < 1e-12);
        assert!((FabricConfig::infinihost3().beta() - 0.8625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "flow_cap")]
    fn rejects_cap_above_line() {
        let mut f = FabricConfig::gige();
        f.flow_cap = f.link_rate * 1.5;
        f.validate();
    }

    #[test]
    fn coarse_enlarges_segments() {
        let f = FabricConfig::gige().coarse();
        assert_eq!(f.segment, 512 * 1024);
        f.validate();
    }
}
