//! Minimal discrete-event core: a time-ordered queue with deterministic
//! FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: fires at `time`; `seq` breaks ties in insertion
/// order so simulations are deterministic.
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue keyed by `f64` simulation time.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    /// If `time` is NaN.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes every pending event and restarts the deterministic
    /// tie-breaking sequence, leaving the queue indistinguishable from a
    /// freshly built one while keeping the heap allocation — reused
    /// queues must replay identical schedules identically.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
