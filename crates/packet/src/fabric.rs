//! The segment-level fabric simulation.
//!
//! Every message is split into segments that serialize through the servers
//! of its route (sender NIC egress → optional uplinks → receiver delivery
//! port)
//! and finally through the receiver's *host stage* (DMA/memory), whose rate
//! drops to `host_budget − link_rate` while the receiving node is itself
//! transmitting — the income/outgo coupling measured in the paper's Fig. 2.
//!
//! Flow control is expressed through two per-fabric knobs (see
//! [`crate::config::FabricConfig`]):
//!
//! * `flow_cap` — injection pacing (TCP window ceiling / Myrinet
//!   inter-packet gap / InfiniBand static rate control);
//! * `window` — outstanding segments (TCP window in segments / wormhole
//!   path depth for Stop & Go / InfiniBand credits). Acknowledgements (or
//!   credit returns, or Go frames) release window slots after a round-trip.

use crate::config::FabricConfig;
use crate::des::EventQueue;
use crate::topology::{Route, Topology};
use netbw_graph::{CommGraph, Communication, NodeId};

/// Caller-chosen transfer identifier.
pub type FlowKey = u64;

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Try to inject the flow's next segment.
    Inject { flow: usize },
    /// Segment arrival at a route server (store-and-forward fabrics).
    Hop { flow: usize, stage: u8, bytes: u32 },
    /// Segment arrival at the receiver host stage.
    HostArrive { flow: usize, bytes: u32 },
    /// Wormhole packet: reserve the whole path at once (Stop & Go).
    CircuitAdmit { flow: usize, bytes: u32 },
    /// Segment fully delivered (exits host stage).
    Delivered { flow: usize },
    /// Window slot released at the sender (ACK / credit / Go).
    Ack { flow: usize },
}

#[derive(Debug)]
struct Flow {
    key: FlowKey,
    comm: Communication,
    route: Option<Route>,
    total_segs: u64,
    injected: u64,
    delivered: u64,
    outstanding: usize,
    pace_next: f64,
    inject_scheduled: bool,
    done: bool,
}

impl Flow {
    fn seg_bytes(&self, cfg: &FabricConfig, index: u64) -> u32 {
        let seg = cfg.segment;
        let full = self.comm.size / seg;
        if index < full {
            seg as u32
        } else {
            (self.comm.size - full * seg) as u32
        }
    }
}

/// Incremental packet-level network: transfers are added over time,
/// completions drained by [`PacketNetwork::advance_to`]. The "measured
/// hardware" counterpart of `netbw_fluid::FluidNetwork`.
pub struct PacketNetwork {
    cfg: FabricConfig,
    topo: Topology,
    time: f64,
    queue: EventQueue<Ev>,
    flows: Vec<Flow>,
    /// Per-server busy horizon (FIFO serialization).
    busy: Vec<f64>,
    /// Per-node host-stage busy horizon.
    host_busy: Vec<f64>,
    /// Per-node count of unfinished transmitting flows.
    tx_flows: Vec<usize>,
    completed: Vec<(FlowKey, f64)>,
}

impl PacketNetwork {
    /// Creates an idle network over a crossbar of `nodes` nodes.
    pub fn new(cfg: FabricConfig, nodes: usize) -> Self {
        Self::with_topology(cfg, Topology::crossbar(nodes.max(2)))
    }

    /// Creates an idle network over an explicit topology.
    pub fn with_topology(cfg: FabricConfig, topo: Topology) -> Self {
        cfg.validate();
        let servers = topo.server_count() as usize;
        let nodes = topo.nodes();
        PacketNetwork {
            cfg,
            topo,
            time: 0.0,
            queue: EventQueue::new(),
            flows: Vec::new(),
            busy: vec![0.0; servers],
            host_busy: vec![0.0; nodes],
            tx_flows: vec![0; nodes],
            completed: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The fabric configuration in use.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Node capacity of the underlying topology.
    pub fn node_capacity(&self) -> usize {
        self.topo.nodes()
    }

    /// Returns the network to an idle state at time 0, keeping every
    /// allocation (event heap, flow table, server horizons) warm. A reset
    /// network replays any schedule bit-for-bit identically to a freshly
    /// built one of the same capacity; on a crossbar, capacity itself does
    /// not affect timing (every flow serializes through its own per-node
    /// servers), which is what makes fabric arenas sound.
    pub fn reset(&mut self) {
        self.time = 0.0;
        self.queue.clear();
        self.flows.clear();
        self.busy.fill(0.0);
        self.host_busy.fill(0.0);
        self.tx_flows.fill(0);
        self.completed.clear();
    }

    /// Number of unfinished transfers.
    pub fn in_flight(&self) -> usize {
        self.flows.iter().filter(|f| !f.done).count()
    }

    /// Starts a transfer of `comm` at absolute time `start`.
    ///
    /// # Panics
    /// If `start` precedes the current time, or an endpoint is outside the
    /// topology.
    pub fn add(&mut self, key: FlowKey, comm: Communication, start: f64) {
        assert!(
            start >= self.time - 1e-12,
            "transfer starts at {start} but network time is {}",
            self.time
        );
        assert!(
            !comm.is_intra_node(),
            "intra-node transfers do not enter the fabric"
        );
        let idx = self.flows.len();
        let route = self.topo.route(comm.src, comm.dst);
        let total_segs = comm.size.div_ceil(self.cfg.segment);
        let first = start.max(self.time) + self.cfg.startup;
        self.flows.push(Flow {
            key,
            comm,
            route: Some(route),
            total_segs,
            injected: 0,
            delivered: 0,
            outstanding: 0,
            pace_next: first,
            inject_scheduled: true,
            done: false,
        });
        if total_segs == 0 {
            self.queue.schedule(first, Ev::Delivered { flow: idx });
        } else {
            self.tx_flows[comm.src.idx()] += 1;
            self.queue.schedule(first, Ev::Inject { flow: idx });
        }
    }

    /// Instant of the next internal event, or `None` when idle.
    pub fn next_event_time(&self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Advances the clock to `t`, returning transfers completed in
    /// `(previous time, t]` as `(key, completion_time)` pairs, in
    /// completion order.
    pub fn advance_to(&mut self, t: f64) -> Vec<(FlowKey, f64)> {
        assert!(
            t >= self.time - 1e-12,
            "cannot advance backwards ({} -> {t})",
            self.time
        );
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            let (et, ev) = self.queue.pop().expect("peeked");
            self.time = self.time.max(et);
            self.handle(et, ev);
        }
        self.time = self.time.max(t);
        std::mem::take(&mut self.completed)
    }

    /// Runs until every transfer completes; returns all completions.
    pub fn run_to_completion(&mut self) -> Vec<(FlowKey, f64)> {
        let mut out = Vec::new();
        while let Some(t) = self.next_event_time() {
            out.extend(self.advance_to(t));
        }
        out
    }

    fn tx_active(&self, node: NodeId) -> bool {
        self.tx_flows[node.idx()] > 0
    }

    fn handle(&mut self, now: f64, ev: Ev) {
        match ev {
            Ev::Inject { flow } => {
                self.flows[flow].inject_scheduled = false;
                self.try_inject(now, flow);
            }
            Ev::Hop { flow, stage, bytes } => {
                let server = {
                    let f = &self.flows[flow];
                    f.route.as_ref().expect("routed flow").servers[stage as usize]
                };
                let start = now.max(self.busy[server.0 as usize]);
                let done = start + bytes as f64 / self.cfg.link_rate;
                self.busy[server.0 as usize] = done;
                let last_stage = {
                    let f = &self.flows[flow];
                    stage as usize + 1 >= f.route.as_ref().expect("routed").servers.len()
                };
                let next_at = done + self.cfg.prop_delay;
                if last_stage {
                    self.queue.schedule(next_at, Ev::HostArrive { flow, bytes });
                } else {
                    self.queue.schedule(
                        next_at,
                        Ev::Hop {
                            flow,
                            stage: stage + 1,
                            bytes,
                        },
                    );
                }
            }
            Ev::CircuitAdmit { flow, bytes } => {
                // Cut-through: the packet occupies every server on its path
                // plus the receiver host stage for its whole duration; the
                // drain rate is the slowest stage (link or host budget).
                let (dst, servers) = {
                    let f = &self.flows[flow];
                    (
                        f.comm.dst,
                        f.route.as_ref().expect("routed").servers.clone(),
                    )
                };
                let host_rate = if self.tx_active(dst) {
                    self.cfg.rx_budget_busy()
                } else {
                    self.cfg.host_budget.min(self.cfg.link_rate)
                };
                let rate = self.cfg.link_rate.min(host_rate);
                let mut admit = now.max(self.host_busy[dst.idx()]);
                for s in &servers {
                    admit = admit.max(self.busy[s.0 as usize]);
                }
                let done = admit + bytes as f64 / rate;
                for s in &servers {
                    self.busy[s.0 as usize] = done;
                }
                self.host_busy[dst.idx()] = done;
                let hops = self.flows[flow].route.as_ref().expect("routed").hops;
                let deliver = done + hops as f64 * self.cfg.prop_delay;
                self.queue.schedule(deliver, Ev::Delivered { flow });
                self.queue
                    .schedule(deliver + 2.0 * self.cfg.prop_delay, Ev::Ack { flow });
            }
            Ev::HostArrive { flow, bytes } => {
                let dst = self.flows[flow].comm.dst;
                // Reception shares the host with transmission: while the
                // node transmits, only the residual budget serves arrivals.
                let rate = if self.tx_active(dst) {
                    self.cfg.rx_budget_busy()
                } else {
                    self.cfg.host_budget.min(self.cfg.link_rate)
                };
                let start = now.max(self.host_busy[dst.idx()]);
                let done = start + bytes as f64 / rate;
                self.host_busy[dst.idx()] = done;
                self.queue.schedule(done, Ev::Delivered { flow });
                // window slot released after the reverse hop (ACK/credit/Go)
                self.queue
                    .schedule(done + 2.0 * self.cfg.prop_delay, Ev::Ack { flow });
            }
            Ev::Delivered { flow } => {
                let f = &mut self.flows[flow];
                if f.total_segs == 0 {
                    if !f.done {
                        f.done = true;
                        self.completed.push((f.key, now));
                    }
                    return;
                }
                f.delivered += 1;
                if f.delivered == f.total_segs && !f.done {
                    f.done = true;
                    let (key, src) = (f.key, f.comm.src);
                    self.completed.push((key, now));
                    let slot = &mut self.tx_flows[src.idx()];
                    *slot = slot.saturating_sub(1);
                }
            }
            Ev::Ack { flow } => {
                let f = &mut self.flows[flow];
                f.outstanding = f.outstanding.saturating_sub(1);
                self.try_inject(now, flow);
            }
        }
    }

    fn try_inject(&mut self, now: f64, flow: usize) {
        let cfg = self.cfg;
        let f = &mut self.flows[flow];
        if f.done || f.injected >= f.total_segs || f.inject_scheduled {
            return;
        }
        if f.outstanding >= cfg.window {
            return; // an Ack will retry
        }
        if now + 1e-15 < f.pace_next {
            f.inject_scheduled = true;
            let at = f.pace_next;
            self.queue.schedule(at, Ev::Inject { flow });
            return;
        }
        let bytes = f.seg_bytes(&cfg, f.injected);
        f.injected += 1;
        f.outstanding += 1;
        f.pace_next = f.pace_next.max(now) + bytes as f64 / cfg.flow_cap;
        if cfg.circuit {
            self.queue.schedule(now, Ev::CircuitAdmit { flow, bytes });
        } else {
            self.queue.schedule(
                now,
                Ev::Hop {
                    flow,
                    stage: 0,
                    bytes,
                },
            );
        }
        if f.outstanding < cfg.window && f.injected < f.total_segs {
            f.inject_scheduled = true;
            let at = f.pace_next;
            self.queue.schedule(at, Ev::Inject { flow });
        }
    }
}

/// Reuse counters of a [`PacketFabric`]'s retained network scratch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// `PacketNetwork`s constructed (first run, and capacity growth).
    pub networks_built: u64,
    /// Runs served by resetting the retained network instead.
    pub networks_reused: u64,
}

/// Batch façade over [`PacketNetwork`]: run whole schemes, measure
/// reference times and penalties.
///
/// The fabric retains one [`PacketNetwork`] and reuses it across runs
/// (resetting it between schemes, growing its crossbar capacity when a
/// scheme needs more nodes), so driving a battery of hundreds of schemes
/// through one fabric pays network construction once — the reuse that
/// `netbw_eval`'s fabric arenas are built on. [`FabricStats`] counts
/// builds vs reuses.
pub struct PacketFabric {
    cfg: FabricConfig,
    nodes: usize,
    scratch: Option<PacketNetwork>,
    stats: FabricStats,
}

impl Clone for PacketFabric {
    /// Clones the configuration and capacity; the retained network and the
    /// reuse counters stay with the original.
    fn clone(&self) -> Self {
        PacketFabric::new(self.cfg, self.nodes)
    }
}

impl std::fmt::Debug for PacketFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketFabric")
            .field("cfg", &self.cfg)
            .field("nodes", &self.nodes)
            .field("has_scratch", &self.scratch.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PacketFabric {
    /// A fabric over a crossbar large enough for `nodes` nodes.
    pub fn new(cfg: FabricConfig, nodes: usize) -> Self {
        cfg.validate();
        PacketFabric {
            cfg,
            nodes: nodes.max(2),
            scratch: None,
            stats: FabricStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Current node capacity (grows when a scheme needs more nodes).
    pub fn capacity(&self) -> usize {
        self.nodes
    }

    /// Network build/reuse counters since construction.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The retained network, reset and large enough for `nodes` nodes.
    fn network_for(&mut self, nodes: usize) -> &mut PacketNetwork {
        let need = nodes.max(self.nodes);
        if self
            .scratch
            .as_ref()
            .is_some_and(|n| n.node_capacity() >= need)
        {
            self.stats.networks_reused += 1;
            let net = self.scratch.as_mut().expect("capacity checked");
            net.reset();
            net
        } else {
            self.nodes = need;
            self.stats.networks_built += 1;
            self.scratch.insert(PacketNetwork::new(self.cfg, need))
        }
    }

    /// Completion times for a scheme, all communications starting at 0.
    /// The result is aligned with `graph.comms()`.
    pub fn run_scheme(&mut self, graph: &CommGraph) -> Vec<f64> {
        let starts = vec![0.0; graph.len()];
        self.run_with_starts(graph.comms(), &starts)
    }

    /// Completion times with explicit start times.
    pub fn run_with_starts(&mut self, comms: &[Communication], starts: &[f64]) -> Vec<f64> {
        assert_eq!(comms.len(), starts.len());
        let max_node = comms
            .iter()
            .flat_map(|c| [c.src.idx(), c.dst.idx()])
            .max()
            .map_or(self.nodes, |m| (m + 1).max(self.nodes));
        let net = self.network_for(max_node);
        let mut order: Vec<usize> = (0..comms.len()).collect();
        order.sort_by(|&a, &b| starts[a].total_cmp(&starts[b]));
        for &i in &order {
            net.add(i as FlowKey, comms[i], starts[i]);
        }
        let done = net.run_to_completion();
        let mut out = vec![f64::NAN; comms.len()];
        for (key, t) in done {
            out[key as usize] = t - starts[key as usize];
        }
        assert!(
            out.iter().all(|t| t.is_finite()),
            "every transfer must complete"
        );
        out
    }

    /// The paper's reference time: one uncontended transfer of `size` bytes
    /// between two otherwise idle nodes (§IV.B).
    pub fn reference_time(&mut self, size: u64) -> f64 {
        let comm = Communication::new(0u32, 1u32, size);
        self.run_with_starts(&[comm], &[0.0])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;
    use netbw_graph::units::MB;

    fn penalties(cfg: FabricConfig, graph: &CommGraph) -> Vec<f64> {
        let mut fab = PacketFabric::new(cfg, graph.nodes().len().max(2));
        let times = fab.run_scheme(graph);
        graph
            .comms()
            .iter()
            .zip(&times)
            .map(|(c, t)| t / fab.reference_time(c.size))
            .collect()
    }

    #[test]
    fn single_flow_achieves_cap() {
        for cfg in FabricConfig::paper_fabrics() {
            let mut fab = PacketFabric::new(cfg, 2);
            let t = fab.reference_time(20 * MB);
            let ideal = 20e6 / cfg.flow_cap;
            assert!(
                (t - ideal) / ideal < 0.03,
                "{}: tref {t:.4} vs ideal {ideal:.4}",
                cfg.name
            );
        }
    }

    #[test]
    fn gige_outgoing_ladder_matches_fig2() {
        // paper: k=2 -> 1.5 each, k=3 -> 2.25 each
        let p2 = penalties(FabricConfig::gige(), &schemes::outgoing_ladder(2));
        for p in &p2 {
            assert!((p - 1.5).abs() < 0.06, "k=2: {p2:?}");
        }
        let p3 = penalties(FabricConfig::gige(), &schemes::outgoing_ladder(3));
        for p in &p3 {
            assert!((p - 2.25).abs() < 0.09, "k=3: {p3:?}");
        }
    }

    #[test]
    fn myrinet_outgoing_ladder_matches_fig2() {
        // paper: k=2 -> 1.9 each, k=3 -> 2.8 each
        let p2 = penalties(FabricConfig::myrinet2000(), &schemes::outgoing_ladder(2));
        for p in &p2 {
            assert!((p - 1.9).abs() < 0.1, "k=2: {p2:?}");
        }
        let p3 = penalties(FabricConfig::myrinet2000(), &schemes::outgoing_ladder(3));
        for p in &p3 {
            assert!((p - 2.8).abs() < 0.15, "k=3: {p3:?}");
        }
    }

    #[test]
    fn infiniband_outgoing_ladder_matches_fig2() {
        // paper: k=2 -> 1.725 each, k=3 -> 2.61 each
        let p2 = penalties(FabricConfig::infinihost3(), &schemes::outgoing_ladder(2));
        for p in &p2 {
            assert!((p - 1.725).abs() < 0.09, "k=2: {p2:?}");
        }
        let p3 = penalties(FabricConfig::infinihost3(), &schemes::outgoing_ladder(3));
        for p in &p3 {
            assert!((p - 2.61).abs() < 0.13, "k=3: {p3:?}");
        }
    }

    #[test]
    fn scheme4_income_outgo_coupling() {
        // paper: GigE d = 1.15, Myrinet d = 1.45, IB d = 1.14; outgoing
        // flows essentially unchanged.
        let expect = [
            (FabricConfig::gige(), 1.15, 0.08),
            (FabricConfig::myrinet2000(), 1.45, 0.12),
            (FabricConfig::infinihost3(), 1.14, 0.06),
        ];
        for (cfg, want_d, tol) in expect {
            let p = penalties(cfg, &schemes::fig2_scheme(4));
            let d = p[3];
            assert!(
                (d - want_d).abs() < tol,
                "{}: d = {d:.3}, paper {want_d}",
                cfg.name
            );
            // a,b,c within 8% of the pure-outgoing penalty
            let pure = penalties(cfg, &schemes::outgoing_ladder(3))[0];
            for &abc in &p[..3] {
                assert!((abc - pure).abs() / pure < 0.08, "{}: {p:?}", cfg.name);
            }
        }
    }

    #[test]
    fn incoming_flows_share_residual_budget() {
        // scheme 5: two incoming flows split the residual host budget, so
        // each is roughly twice scheme 4's single-flow penalty; ordering
        // must hold on every fabric.
        for cfg in FabricConfig::paper_fabrics() {
            let p4 = penalties(cfg, &schemes::fig2_scheme(4));
            let p5 = penalties(cfg, &schemes::fig2_scheme(5));
            assert!(
                p5[3] > p4[3] * 1.5,
                "{}: d went {:.2} -> {:.2}",
                cfg.name,
                p4[3],
                p5[3]
            );
            // outgoing flows never speed up when incoming load is added
            assert!(p5[0] >= p4[0] - 0.1, "{}", cfg.name);
        }
    }

    #[test]
    fn incast_is_symmetric_to_outcast() {
        // income conflicts behave like outgoing conflicts (same β): the
        // receive side serializes identically.
        for cfg in FabricConfig::paper_fabrics() {
            let pin = penalties(cfg, &schemes::incoming_ladder(3));
            let pout = penalties(cfg, &schemes::outgoing_ladder(3));
            for (i, o) in pin.iter().zip(&pout) {
                assert!(
                    (i - o).abs() / o < 0.05,
                    "{}: in {pin:?} out {pout:?}",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn zero_size_message_completes_at_startup() {
        let cfg = FabricConfig::gige();
        let mut net = PacketNetwork::new(cfg, 2);
        net.add(0, Communication::new(0u32, 1u32, 0), 1.0);
        let done = net.run_to_completion();
        assert_eq!(done.len(), 1);
        assert!((done[0].1 - (1.0 + cfg.startup)).abs() < 1e-12);
    }

    #[test]
    fn incremental_advance_matches_batch() {
        let cfg = FabricConfig::myrinet2000();
        let g = schemes::fig5().with_uniform_size(2 * MB);
        let mut fab = PacketFabric::new(cfg, 6);
        let batch = fab.run_scheme(&g);

        let mut net = PacketNetwork::new(cfg, 6);
        for (i, c) in g.comms().iter().enumerate() {
            net.add(i as u64, *c, 0.0);
        }
        let mut done = Vec::new();
        // advance in arbitrary small steps: results must be identical
        let mut t = 0.0;
        while net.in_flight() > 0 {
            t += 0.001;
            done.extend(net.advance_to(t));
        }
        for (key, at) in done {
            assert!((batch[key as usize] - at).abs() < 1e-9, "flow {key}");
        }
    }

    #[test]
    fn staggered_start_detects_partial_overlap() {
        // second flow starts when the first is half done: both slower than
        // solo, faster than full overlap.
        let cfg = FabricConfig::gige();
        let mut fab = PacketFabric::new(cfg, 3);
        let comms = [
            Communication::new(0u32, 1u32, 8 * MB),
            Communication::new(0u32, 2u32, 8 * MB),
        ];
        let tref = fab.reference_time(8 * MB);
        let t = fab.run_with_starts(&comms, &[0.0, tref / 2.0]);
        assert!(t[0] > tref * 1.2 && t[0] < tref * 1.9, "t0 = {}", t[0]);
        assert!(t[1] > tref * 1.2 && t[1] < tref * 1.9, "t1 = {}", t[1]);
    }

    #[test]
    fn circuit_mode_convoys_dense_graphs() {
        // Wormhole circuit-per-packet blocking is faithful per packet but,
        // at coarse segment granularity, reservation dead-time compounds
        // on dense graphs: MK2 under circuit mode is far slower than under
        // store-and-forward. This documents why `circuit` is off by
        // default for the Myrinet preset.
        let mut circuit_cfg = FabricConfig::myrinet2000();
        circuit_cfg.circuit = true;
        let saf_cfg = FabricConfig::myrinet2000();
        let g = schemes::mk2().with_uniform_size(2 * MB);
        let t_circuit = PacketFabric::new(circuit_cfg, 5).run_scheme(&g);
        let t_saf = PacketFabric::new(saf_cfg, 5).run_scheme(&g);
        let worst_circuit = t_circuit.iter().cloned().fold(0.0, f64::max);
        let worst_saf = t_saf.iter().cloned().fold(0.0, f64::max);
        assert!(
            worst_circuit > 1.5 * worst_saf,
            "expected convoy collapse: circuit {worst_circuit:.3} vs saf {worst_saf:.3}"
        );
        // on a sparse scheme the two modes agree closely
        let sparse = schemes::outgoing_ladder(2).with_uniform_size(2 * MB);
        let c = PacketFabric::new(circuit_cfg, 3).run_scheme(&sparse);
        let s = PacketFabric::new(saf_cfg, 3).run_scheme(&sparse);
        for (a, b) in c.iter().zip(&s) {
            assert!((a - b).abs() / b < 0.15, "sparse: {a} vs {b}");
        }
    }

    #[test]
    fn reused_fabric_matches_fresh_fabrics_bit_for_bit() {
        // One fabric swept across a battery (with capacity growth in the
        // middle) answers exactly like a fresh fabric per scheme.
        let cfg = FabricConfig::myrinet2000();
        let mut reused = PacketFabric::new(cfg, 2);
        let battery = [
            schemes::outgoing_ladder(2).with_uniform_size(MB),
            schemes::mk2().with_uniform_size(2 * MB),
            schemes::fig2_scheme(4).with_uniform_size(MB),
            schemes::outgoing_ladder(2).with_uniform_size(MB),
        ];
        for g in &battery {
            let a = reused.run_scheme(g);
            let b = PacketFabric::new(cfg, 2).run_scheme(g);
            assert_eq!(a, b, "{}", g.name());
        }
        assert_eq!(reused.reference_time(MB), {
            let mut fresh = PacketFabric::new(cfg, 2);
            fresh.reference_time(MB)
        });
        let stats = reused.stats();
        assert_eq!(stats.networks_built + stats.networks_reused, 5);
        assert!(
            stats.networks_reused >= 3,
            "only capacity growth may rebuild: {stats:?}"
        );
        assert!(reused.capacity() >= 5, "mk2 grew the crossbar");
    }

    #[test]
    #[should_panic(expected = "intra-node")]
    fn rejects_intra_node_flows() {
        let mut net = PacketNetwork::new(FabricConfig::gige(), 2);
        net.add(0, Communication::new(1u32, 1u32, 100), 0.0);
    }

    #[test]
    fn oversubscribed_fat_tree_contends_in_the_core() {
        // 2:1 oversubscription, cross-leaf permutation: uplink shared by
        // two flows → each roughly half rate. Full bisection: no slowdown.
        let cfg = FabricConfig::infinihost3();
        let comms = [
            Communication::new(0u32, 4u32, 4 * MB),
            Communication::new(2u32, 6u32, 4 * MB),
        ];
        let run = |topo: Topology| {
            let mut net = PacketNetwork::with_topology(cfg, topo);
            net.add(0, comms[0], 0.0);
            net.add(1, comms[1], 0.0);
            let mut done = net.run_to_completion();
            done.sort_by_key(|d| d.0);
            (done[0].1, done[1].1)
        };
        let (full0, _) = run(Topology::fat_tree(8, 4, 1.0));
        let (over0, _) = run(Topology::fat_tree(8, 4, 4.0));
        assert!(
            over0 > full0 * 1.6,
            "oversubscription must slow cross-leaf flows: {full0} vs {over0}"
        );
    }
}
