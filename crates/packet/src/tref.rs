//! Memoized reference times — the paper's `Tref(size)` (§IV.B).
//!
//! Every measured-vs-predicted comparison normalises by the reference
//! time *for each payload size*: one uncontended transfer between two
//! otherwise idle nodes. Before this type, `measure_penalties` and
//! `netbw_eval`'s `compare_scheme` each hand-rolled the same
//! `HashMap<u64, f64>` per call, so a battery of hundreds of schemes
//! re-simulated the identical reference transfer hundreds of times. A
//! [`TrefCache`] makes the memo a first-class, observable object: the
//! one-shot entry points keep one per call, and `netbw_eval`'s
//! `EvalSession` keeps one per fabric per worker plus a shared
//! cross-worker memo, so each `(fabric, size)` pair is measured once per
//! battery.

use crate::fabric::PacketFabric;
use std::collections::HashMap;

/// Memo of `Tref(size)` measurements for one fabric configuration.
///
/// The cache itself never runs a simulation: misses call back into the
/// supplied closure (usually [`PacketFabric::reference_time`]), so the
/// caller decides which fabric instance pays for the measurement.
#[derive(Clone, Debug, Default)]
pub struct TrefCache {
    map: HashMap<u64, f64>,
    hits: u64,
    misses: u64,
}

impl TrefCache {
    /// An empty cache.
    pub fn new() -> Self {
        TrefCache::default()
    }

    /// The memoized reference time for `size`, if present. Does not count
    /// as a hit; used to peek before consulting a shared memo.
    pub fn lookup(&self, size: u64) -> Option<f64> {
        self.map.get(&size).copied()
    }

    /// Seeds the memo (e.g. from a session-shared cache).
    pub fn insert(&mut self, size: u64, tref: f64) {
        self.map.insert(size, tref);
    }

    /// The reference time for `size`, measuring via `compute` on a miss.
    pub fn get(&mut self, size: u64, compute: impl FnOnce(u64) -> f64) -> f64 {
        if let Some(&t) = self.map.get(&size) {
            self.hits += 1;
            return t;
        }
        self.misses += 1;
        let t = compute(size);
        self.map.insert(size, t);
        t
    }

    /// [`TrefCache::get`] measuring through `fab` on a miss.
    pub fn reference_time(&mut self, fab: &mut PacketFabric, size: u64) -> f64 {
        self.get(size, |s| fab.reference_time(s))
    }

    /// Number of distinct sizes memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to measure.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;

    #[test]
    fn memoizes_per_size() {
        let mut cache = TrefCache::new();
        let mut computes = 0;
        for &size in &[100u64, 200, 100, 100, 200] {
            cache.get(size, |s| {
                computes += 1;
                s as f64
            });
        }
        assert_eq!(computes, 2);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(100), Some(100.0));
        assert_eq!(cache.lookup(300), None);
    }

    #[test]
    fn measures_through_a_fabric_once() {
        let mut fab = PacketFabric::new(FabricConfig::gige(), 2);
        let mut cache = TrefCache::new();
        let a = cache.reference_time(&mut fab, 1 << 20);
        let b = cache.reference_time(&mut fab, 1 << 20);
        assert_eq!(a, b);
        assert!(a > 0.0);
        assert_eq!(cache.misses(), 1);
        // the second call never touched the fabric
        assert_eq!(fab.stats().networks_built + fab.stats().networks_reused, 1);
    }

    #[test]
    fn seeded_entries_hit() {
        let mut cache = TrefCache::new();
        cache.insert(64, 1.5);
        let t = cache.get(64, |_| unreachable!("seeded"));
        assert_eq!(t, 1.5);
        assert_eq!(cache.hits(), 1);
    }
}
