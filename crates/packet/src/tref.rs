//! Memoized reference times — the paper's `Tref(size)` (§IV.B).
//!
//! Every measured-vs-predicted comparison normalises by the reference
//! time *for each payload size*: one uncontended transfer between two
//! otherwise idle nodes. Before this type, `measure_penalties` and
//! `netbw_eval`'s `compare_scheme` each hand-rolled the same
//! `HashMap<u64, f64>` per call, so a battery of hundreds of schemes
//! re-simulated the identical reference transfer hundreds of times. A
//! [`TrefCache`] makes the memo a first-class, observable object: the
//! one-shot entry points keep one per call, and `netbw_eval`'s
//! `EvalSession` keeps one per fabric per worker plus a shared
//! cross-worker memo, so each `(fabric, size)` pair is measured once per
//! battery.
//!
//! The memo is **bounded**: a long-running service (`netbw-serve`)
//! answering arbitrary user-supplied sizes must not grow a per-size map
//! indefinitely, so the cache evicts in insertion (FIFO) order once it
//! exceeds its capacity and counts the evictions alongside the hit/miss
//! accounting.

use crate::fabric::PacketFabric;
use std::collections::{HashMap, VecDeque};

/// Default capacity of a [`TrefCache`] (distinct sizes). Batteries use a
/// handful of sizes, so the default never evicts in practice; it exists to
/// bound the worst case of a service fed adversarial size streams.
pub const DEFAULT_TREF_CAPACITY: usize = 1024;

/// Memo of `Tref(size)` measurements for one fabric configuration.
///
/// The cache itself never runs a simulation: misses call back into the
/// supplied closure (usually [`PacketFabric::reference_time`]), so the
/// caller decides which fabric instance pays for the measurement.
///
/// Holds at most `capacity` distinct sizes, evicting the oldest-inserted
/// entry first ([`Self::evictions`] counts them).
#[derive(Clone, Debug)]
pub struct TrefCache {
    map: HashMap<u64, f64>,
    /// Insertion order of the live keys (front = oldest).
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for TrefCache {
    fn default() -> Self {
        TrefCache::with_capacity(DEFAULT_TREF_CAPACITY)
    }
}

impl TrefCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        TrefCache::default()
    }

    /// An empty cache holding at most `capacity` distinct sizes (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TrefCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The memoized reference time for `size`, if present. Does not count
    /// as a hit; used to peek before consulting a shared memo.
    pub fn lookup(&self, size: u64) -> Option<f64> {
        self.map.get(&size).copied()
    }

    /// Seeds the memo (e.g. from a session-shared cache), evicting the
    /// oldest entry if the capacity is exceeded.
    pub fn insert(&mut self, size: u64, tref: f64) {
        if self.map.insert(size, tref).is_none() {
            self.order.push_back(size);
            self.evict_over_capacity();
        }
    }

    /// The reference time for `size`, measuring via `compute` on a miss.
    pub fn get(&mut self, size: u64, compute: impl FnOnce(u64) -> f64) -> f64 {
        if let Some(&t) = self.map.get(&size) {
            self.hits += 1;
            return t;
        }
        self.misses += 1;
        let t = compute(size);
        self.insert(size, t);
        t
    }

    /// [`TrefCache::get`] measuring through `fab` on a miss.
    pub fn reference_time(&mut self, fab: &mut PacketFabric, size: u64) -> f64 {
        self.get(size, |s| fab.reference_time(s))
    }

    fn evict_over_capacity(&mut self) {
        while self.map.len() > self.capacity {
            let oldest = self.order.pop_front().expect("order tracks every live key");
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Number of distinct sizes memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of distinct sizes held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to measure.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to keep the memo within its capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;

    #[test]
    fn memoizes_per_size() {
        let mut cache = TrefCache::new();
        let mut computes = 0;
        for &size in &[100u64, 200, 100, 100, 200] {
            cache.get(size, |s| {
                computes += 1;
                s as f64
            });
        }
        assert_eq!(computes, 2);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(100), Some(100.0));
        assert_eq!(cache.lookup(300), None);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn measures_through_a_fabric_once() {
        let mut fab = PacketFabric::new(FabricConfig::gige(), 2);
        let mut cache = TrefCache::new();
        let a = cache.reference_time(&mut fab, 1 << 20);
        let b = cache.reference_time(&mut fab, 1 << 20);
        assert_eq!(a, b);
        assert!(a > 0.0);
        assert_eq!(cache.misses(), 1);
        // the second call never touched the fabric
        assert_eq!(fab.stats().networks_built + fab.stats().networks_reused, 1);
    }

    #[test]
    fn seeded_entries_hit() {
        let mut cache = TrefCache::new();
        cache.insert(64, 1.5);
        let t = cache.get(64, |_| unreachable!("seeded"));
        assert_eq!(t, 1.5);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut cache = TrefCache::with_capacity(2);
        cache.get(1, |s| s as f64);
        cache.get(2, |s| s as f64);
        assert_eq!(cache.evictions(), 0);
        // inserting a third size evicts the oldest (1)
        cache.get(3, |s| s as f64);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.lookup(1), None);
        assert_eq!(cache.lookup(2), Some(2.0));
        assert_eq!(cache.lookup(3), Some(3.0));
        // a re-measure of the evicted size is a miss again, and evicts 2
        cache.get(1, |s| s as f64);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.lookup(2), None);
    }

    #[test]
    fn reinserting_a_live_size_does_not_evict() {
        let mut cache = TrefCache::with_capacity(2);
        cache.insert(1, 1.0);
        cache.insert(2, 2.0);
        // overwriting a live key must not grow the order queue
        cache.insert(1, 10.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.lookup(1), Some(10.0));
        // hit/miss accounting is untouched by seeding
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut cache = TrefCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, 1.0);
        cache.insert(2, 2.0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
    }
}
