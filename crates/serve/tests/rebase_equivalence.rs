//! Snapshot re-base equivalence: a snapshot that followed the
//! authoritative engine through admissions and clock advances by O(delta)
//! re-bases must answer what-if queries bit-for-bit like a fresh fork
//! would — across all five engine modes and all three fabric models,
//! including a re-base applied over a budget-collapsed Myrinet partition
//! and a re-base racing an in-flight batch that still aliases the cached
//! snapshot (which must publish a private successor, never mutate the
//! shared one).
//!
//! The oracle is [`WhatIfService::what_if_batch_via_rebuild`]: it ignores
//! the snapshot cache entirely and rebuilds-and-replays the admission log
//! per query, so any divergence introduced by re-basing (or by the warm
//! fork arenas underneath [`WhatIfService::what_if_batch`]) shows up as a
//! bit mismatch.

use netbw_bench::churn_transfers_seeded;
use netbw_core::{
    GigabitEthernetModel, InfinibandModel, ModelScratch, MyrinetModel, Penalty, PenaltyModel,
    PopulationDelta, QueryOutcome,
};
use netbw_fluid::NetworkParams;
use netbw_graph::Communication;
use netbw_packet::FabricConfig;
use netbw_serve::{EngineMode, ServeConfig, WhatIfAnswer, WhatIfQuery, WhatIfService};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

const MODES: [EngineMode; 5] = [
    EngineMode::Event,
    EngineMode::LinearTimeline,
    EngineMode::FullRecompute,
    EngineMode::Sharded,
    EngineMode::ShardedMergeOnly,
];

fn config(mode: EngineMode) -> ServeConfig {
    ServeConfig {
        params: NetworkParams::new(2.0, 0.25),
        fabric: FabricConfig::gige(),
        threads: 2,
        mode,
    }
}

fn assert_bitwise(
    rebased: &[Result<WhatIfAnswer, netbw_serve::ServeError>],
    oracle: &[Result<WhatIfAnswer, netbw_serve::ServeError>],
    context: &str,
) {
    assert_eq!(rebased.len(), oracle.len());
    for (r, o) in rebased.iter().zip(oracle) {
        let (r, o) = (r.as_ref().expect(context), o.as_ref().expect(context));
        assert_eq!(
            r.makespan.to_bits(),
            o.makespan.to_bits(),
            "makespan diverged: {context}"
        );
        for (rf, of) in r.flows.iter().zip(&o.flows) {
            assert_eq!(
                rf.completion.to_bits(),
                of.completion.to_bits(),
                "completion diverged: {context}"
            );
            assert_eq!(
                rf.slowdown.to_bits(),
                of.slowdown.to_bits(),
                "slowdown diverged: {context}"
            );
        }
    }
}

/// Feeds `transfers` through a service, warming the snapshot cache right
/// after the first admission so every subsequent admission and advance
/// travels the re-base path, then checks a query batch from the long-
/// rebased snapshot bitwise against the rebuild-and-replay oracle.
fn check_rebase_equivalence(
    model: Arc<dyn PenaltyModel>,
    mode: EngineMode,
    transfers: &[(u64, Communication, f64)],
    queries: &[WhatIfQuery],
) {
    let service = WhatIfService::with_model(model, config(mode));
    for (i, &(_, comm, start)) in transfers.iter().enumerate() {
        service.admit(comm, start).expect("churn admission");
        if i == 0 {
            // Populate the snapshot cache: from here on, every admission
            // and advance must re-base it instead of dropping it.
            service
                .what_if(&WhatIfQuery::flow(
                    Communication::new(60u32, 61u32, 100),
                    0.0,
                ))
                .expect("prewarm query");
        }
        if i % 3 == 2 {
            service.advance_to(start + 0.01).expect("churn advance");
        }
    }
    let last = transfers.last().expect("non-empty churn").2;
    service.advance_to(last + 0.02).expect("final advance");

    let stats = service.stats();
    assert_eq!(
        stats.snapshot_builds, 1,
        "one build, then re-bases ({mode:?})"
    );
    assert!(
        stats.rebases > 0,
        "churn after prewarm must re-base ({mode:?})"
    );

    let rebased = service.what_if_batch(queries);
    let oracle = service.what_if_batch_via_rebuild(queries);
    assert_bitwise(&rebased, &oracle, &format!("{mode:?}"));
    assert_eq!(
        service.stats().snapshot_builds,
        1,
        "the query batch must ride the rebased snapshot ({mode:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random churn, every engine mode × fabric model: a snapshot kept
    /// alive by re-basing answers bit-for-bit like the rebuild oracle.
    #[test]
    fn rebased_snapshot_equals_fresh_fork(
        seed in 0u64..1_000_000,
        flows in 4usize..12,
        stagger_pick in 0usize..3,
    ) {
        let stagger = [0.05, 0.5, 5.0][stagger_pick];
        let transfers = churn_transfers_seeded(flows, stagger, seed);
        let queries: Vec<WhatIfQuery> = (0..4u64)
            .map(|i| {
                let mut q = WhatIfQuery::flow(
                    Communication::new((i % 3) as u32, (3 + i % 2) as u32, 900 + 17 * i),
                    0.1 * i as f64,
                );
                q.flows.push((Communication::new(40u32, 41u32, 700), 0.0));
                q
            })
            .collect();
        for mode in MODES {
            check_rebase_equivalence(
                Arc::new(GigabitEthernetModel::default()), mode, &transfers, &queries);
            check_rebase_equivalence(
                Arc::new(MyrinetModel::default()), mode, &transfers, &queries);
            check_rebase_equivalence(
                Arc::new(InfinibandModel::default()), mode, &transfers, &queries);
        }
    }
}

/// Re-basing over a partition collapsed by a Myrinet budget fallback: the
/// 8-flow conflict cycle blows a state-set budget of 9 (the same workload
/// as the fluid crate's collapse tests), the sharded engine collapses the
/// partition, and the admissions that follow re-base the snapshot across
/// the collapsed state.
#[test]
fn rebase_over_a_budget_collapsed_partition() {
    let c8 = [
        (0u32, 1u32),
        (2, 1),
        (2, 3),
        (4, 3),
        (4, 5),
        (6, 5),
        (6, 7),
        (0, 7),
    ];
    let mut transfers: Vec<(u64, Communication, f64)> = c8
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| (i as u64, Communication::new(s, d, 4_000), i as f64))
        .collect();
    // Two extra flows admitted after the cycle is in flight: in sharded
    // mode these re-base onto an already-collapsed partition.
    transfers.push((8, Communication::new(10u32, 11u32, 2_000), 8.0));
    transfers.push((9, Communication::new(12u32, 13u32, 2_000), 9.0));
    let queries = vec![
        WhatIfQuery::flow(Communication::new(2u32, 7u32, 1_500), 0.0),
        WhatIfQuery::flow(Communication::new(20u32, 21u32, 1_500), 0.2),
    ];
    for mode in [
        EngineMode::Sharded,
        EngineMode::ShardedMergeOnly,
        EngineMode::Event,
    ] {
        check_rebase_equivalence(
            Arc::new(MyrinetModel::with_budget(9)),
            mode,
            &transfers,
            &queries,
        );
    }
}

/// A penalty model that delegates to GigE but, once armed, blocks exactly
/// one query at two barriers — long enough for the test to admit a
/// transfer while a batch is provably mid-flight and still aliasing the
/// cached snapshot.
struct GatedModel {
    inner: GigabitEthernetModel,
    armed: AtomicBool,
    /// The gated query signals here once it is inside the model...
    entered: Arc<Barrier>,
    /// ...and then blocks here until the test releases it.
    release: Arc<Barrier>,
}

impl PenaltyModel for GatedModel {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        self.gate();
        self.inner.penalties(comms)
    }

    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        self.inner.new_scratch()
    }

    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        self.gate();
        self.inner
            .penalties_with_scratch(comms, delta, previous, scratch)
    }
}

impl GatedModel {
    fn gate(&self) {
        if self.armed.swap(false, Ordering::SeqCst) {
            self.entered.wait();
            self.release.wait();
        }
    }
}

/// An admission landing while a batch still aliases the snapshot must not
/// mutate it under the batch's feet: the delta goes to a privately
/// re-based successor, published atomically (counted as a
/// `rebase_fallback`), and both the in-flight batch and every later query
/// stay bitwise with the rebuild oracle.
#[test]
fn rebase_while_a_batch_aliases_the_snapshot() {
    let entered = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));
    let model = Arc::new(GatedModel {
        inner: GigabitEthernetModel::default(),
        armed: AtomicBool::new(false),
        entered: Arc::clone(&entered),
        release: Arc::clone(&release),
    });
    let service = Arc::new(WhatIfService::with_model(
        Arc::clone(&model) as Arc<dyn PenaltyModel>,
        ServeConfig {
            threads: 1,
            ..config(EngineMode::Event)
        },
    ));
    for i in 0..6u64 {
        service
            .admit(
                Communication::new((i % 3) as u32, (3 + i % 2) as u32, 800 + 25 * i),
                i as f64 * 0.2,
            )
            .expect("background admission");
    }
    service.advance_to(1.3).expect("advance into the load");

    let queries = vec![WhatIfQuery::flow(Communication::new(1u32, 4u32, 640), 0.05)];
    // Build the snapshot and the oracle answers before arming the gate:
    // the blocked batch below must answer from exactly this state.
    let expected = service.what_if_batch_via_rebuild(&queries);
    service.what_if_batch(&queries);
    assert_eq!(service.stats().snapshot_builds, 1);

    model.armed.store(true, Ordering::SeqCst);
    let batch = {
        let service = Arc::clone(&service);
        let queries = queries.clone();
        std::thread::spawn(move || service.what_if_batch(&queries))
    };
    // The batch is now provably mid-query (inside the model, on a private
    // fork) and holds an `Arc` alias of the cached snapshot.
    entered.wait();
    service
        .admit(Communication::new(7u32, 8u32, 512), 1.35)
        .expect("admission while the batch is in flight");
    let stats = service.stats();
    assert!(
        stats.rebase_fallbacks >= 1,
        "an aliased snapshot must publish a successor, not mutate in place: {stats}"
    );
    release.wait();
    let in_flight_answers = batch.join().expect("in-flight batch");
    // The blocked batch rode the *old* snapshot: pre-admission state.
    assert_bitwise(&in_flight_answers, &expected, "aliased in-flight batch");

    // The successor snapshot carries the admission: later queries answer
    // bitwise like a rebuild of the grown log, with no new build.
    let after = service.what_if_batch(&queries);
    let oracle = service.what_if_batch_via_rebuild(&queries);
    assert_bitwise(&after, &oracle, "successor snapshot");
    assert_eq!(service.stats().snapshot_builds, 1);
}
