//! Asynchronous admission front-end: an mpsc queue in front of a service
//! thread that coalesces consecutive what-if requests into one executor
//! batch.
//!
//! The core [`WhatIfService`] is synchronous: callers that hold it can
//! batch queries themselves. A scheduler integrating the service as a
//! sidecar wants a channel instead — requests arrive one at a time from
//! many places, and the service thread re-discovers the batching: every
//! run of consecutive [`ServeRequest::WhatIf`] messages sitting in the
//! queue is drained and answered as a single [`WhatIfService::what_if_batch`]
//! call (one snapshot check, one executor fan-out), while admissions and
//! clock advances act as natural barriers, exactly where the snapshot
//! would be invalidated anyway.

use crate::service::{ServeError, ServeStats, WhatIfAnswer, WhatIfQuery, WhatIfService};
use netbw_fluid::{CompletedTransfer, TransferKey};
use netbw_graph::Communication;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A message on the admission queue. Public so integrations can speak the
/// wire format directly; [`ServeHandle`] wraps the common calls.
pub enum ServeRequest {
    /// Admit a transfer into the authoritative engine.
    Admit {
        /// The transfer to admit.
        comm: Communication,
        /// Absolute start time on the service clock.
        start: f64,
        /// Receives the assigned key, or the typed rejection.
        reply: Sender<Result<TransferKey, ServeError>>,
    },
    /// Advance the authoritative clock.
    Advance {
        /// Target clock value.
        t: f64,
        /// Receives the transfers that completed on the way.
        reply: Sender<Result<Vec<CompletedTransfer>, ServeError>>,
    },
    /// A speculative placement query (coalesced with its queue
    /// neighbours into one batch).
    WhatIf {
        /// The query.
        query: WhatIfQuery,
        /// Receives the answer.
        reply: Sender<Result<WhatIfAnswer, ServeError>>,
    },
    /// Read the service counters.
    Stats {
        /// Receives the counters.
        reply: Sender<ServeStats>,
    },
    /// Stop the service thread (it returns the [`WhatIfService`]).
    Shutdown,
}

/// A clonable client of a spawned service thread. All methods are
/// synchronous request/response over the queue; [`ServeError::ServiceStopped`]
/// signals that the thread has shut down.
#[derive(Clone)]
pub struct ServeHandle {
    tx: Sender<ServeRequest>,
}

impl ServeHandle {
    /// Sends `req` and waits for `reply_rx`, mapping a dead service
    /// thread to [`ServeError::ServiceStopped`].
    fn roundtrip<R>(
        &self,
        req: ServeRequest,
        reply_rx: Receiver<Result<R, ServeError>>,
    ) -> Result<R, ServeError> {
        self.tx.send(req).map_err(|_| ServeError::ServiceStopped)?;
        reply_rx.recv().unwrap_or(Err(ServeError::ServiceStopped))
    }

    /// [`WhatIfService::admit`] over the queue.
    pub fn admit(&self, comm: Communication, start: f64) -> Result<TransferKey, ServeError> {
        let (reply, rx) = channel();
        self.roundtrip(ServeRequest::Admit { comm, start, reply }, rx)
    }

    /// [`WhatIfService::advance_to`] over the queue.
    pub fn advance_to(&self, t: f64) -> Result<Vec<CompletedTransfer>, ServeError> {
        let (reply, rx) = channel();
        self.roundtrip(ServeRequest::Advance { t, reply }, rx)
    }

    /// [`WhatIfService::what_if`] over the queue. Concurrent callers'
    /// queries coalesce into one executor batch on the service thread.
    pub fn what_if(&self, query: WhatIfQuery) -> Result<WhatIfAnswer, ServeError> {
        let (reply, rx) = channel();
        self.roundtrip(ServeRequest::WhatIf { query, reply }, rx)
    }

    /// [`WhatIfService::stats`] over the queue.
    pub fn stats(&self) -> Result<ServeStats, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(ServeRequest::Stats { reply })
            .map_err(|_| ServeError::ServiceStopped)?;
        rx.recv().map_err(|_| ServeError::ServiceStopped)
    }

    /// Asks the service thread to stop. Join the handle returned by
    /// [`WhatIfService::spawn`] to get the service (and its final stats)
    /// back.
    pub fn shutdown(&self) {
        let _ = self.tx.send(ServeRequest::Shutdown);
    }
}

impl WhatIfService {
    /// Moves the service onto its own thread behind an mpsc admission
    /// queue. Returns the client handle and the join handle (which yields
    /// the service back on shutdown, for final stats inspection). The
    /// thread also stops when every [`ServeHandle`] clone is dropped.
    pub fn spawn(self) -> (ServeHandle, JoinHandle<WhatIfService>) {
        let (tx, rx) = channel::<ServeRequest>();
        let thread = std::thread::spawn(move || {
            self.serve(rx);
            self
        });
        (ServeHandle { tx }, thread)
    }

    /// The service loop: drains the queue, coalescing what-if runs.
    fn serve(&self, rx: Receiver<ServeRequest>) {
        // A non-what-if request that ended a coalescing drain, waiting to
        // be handled on the next loop turn.
        let mut carried: Option<ServeRequest> = None;
        loop {
            let req = match carried.take() {
                Some(req) => req,
                None => match rx.recv() {
                    Ok(req) => req,
                    Err(_) => return, // all handles dropped
                },
            };
            let (query, reply) = match req {
                ServeRequest::WhatIf { query, reply } => (query, reply),
                other => {
                    if !self.handle_one(other) {
                        return;
                    }
                    continue;
                }
            };
            // Coalesce the run of what-if requests at the head of the
            // queue into one batch; the first other request is carried.
            let mut queries = vec![query];
            let mut replies = vec![reply];
            while let Ok(next) = rx.try_recv() {
                match next {
                    ServeRequest::WhatIf { query, reply } => {
                        queries.push(query);
                        replies.push(reply);
                    }
                    other => {
                        carried = Some(other);
                        break;
                    }
                }
            }
            for (reply, answer) in replies.into_iter().zip(self.what_if_batch(&queries)) {
                let _ = reply.send(answer); // receiver may have given up
            }
        }
    }

    /// Handles one non-what-if request; `false` means shutdown.
    fn handle_one(&self, req: ServeRequest) -> bool {
        match req {
            ServeRequest::Admit { comm, start, reply } => {
                let _ = reply.send(self.admit(comm, start));
            }
            ServeRequest::Advance { t, reply } => {
                let _ = reply.send(self.advance_to(t));
            }
            ServeRequest::Stats { reply } => {
                let _ = reply.send(self.stats());
            }
            ServeRequest::WhatIf { .. } => unreachable!("coalesced by the serve loop"),
            ServeRequest::Shutdown => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use netbw_fluid::NetworkParams;
    use netbw_packet::FabricConfig;

    fn tiny() -> WhatIfService {
        WhatIfService::new(ServeConfig {
            params: NetworkParams::new(2.0, 0.25),
            fabric: FabricConfig::gige(),
            threads: 2,
            mode: crate::service::EngineMode::Event,
        })
    }

    #[test]
    fn roundtrips_through_the_queue() {
        let (handle, thread) = tiny().spawn();
        let key = handle
            .admit(Communication::new(0u32, 1u32, 400), 0.0)
            .unwrap();
        assert_eq!(key, 0);
        assert!(handle.advance_to(1.0).unwrap().is_empty());
        let answer = handle
            .what_if(WhatIfQuery::flow(Communication::new(2u32, 3u32, 400), 0.0))
            .unwrap();
        assert_eq!(answer.flows[0].elapsed, 0.25 + 200.0);
        assert!(matches!(
            handle.advance_to(0.5),
            Err(ServeError::NonMonotonicClock { .. })
        ));
        handle.shutdown();
        let service = thread.join().expect("service thread");
        assert_eq!(service.stats().admitted, 1);
        assert_eq!(service.stats().queries, 1);
        // the queue is closed once the service returns
        assert_eq!(
            handle.what_if(WhatIfQuery::flow(Communication::new(0u32, 1u32, 1), 0.0)),
            Err(ServeError::ServiceStopped)
        );
    }

    #[test]
    fn concurrent_queries_coalesce_and_answer_like_direct_calls() {
        let service = tiny();
        service
            .admit(Communication::new(0u32, 1u32, 2_000), 0.0)
            .unwrap();
        service.advance_to(1.0).unwrap();
        let queries: Vec<WhatIfQuery> = (0..10u64)
            .map(|i| WhatIfQuery::flow(Communication::new((i % 4) as u32, 1u32, 300 + i), 0.1))
            .collect();
        let direct = service.what_if_batch(&queries);

        let (handle, thread) = tiny().spawn();
        handle
            .admit(Communication::new(0u32, 1u32, 2_000), 0.0)
            .unwrap();
        handle.advance_to(1.0).unwrap();
        let answers: Vec<_> = {
            let clients: Vec<_> = queries
                .iter()
                .map(|q| {
                    let handle = handle.clone();
                    let q = q.clone();
                    std::thread::spawn(move || handle.what_if(q))
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().expect("client thread"))
                .collect()
        };
        handle.shutdown();
        thread.join().expect("service thread");
        for (a, d) in answers.iter().zip(&direct) {
            let (a, d) = (a.as_ref().unwrap(), d.as_ref().unwrap());
            assert_eq!(a.makespan.to_bits(), d.makespan.to_bits());
        }
    }
}
