//! Long-running what-if service over a warm fluid engine.
//!
//! The paper's predictive model is cheap enough to consult *online*: a
//! scheduler holding a live view of the cluster's in-flight transfers can
//! ask "if I placed this job's communications here, how slow would they
//! run?" before committing. The batch entry points in `netbw-eval` rebuild
//! the whole world per question; this crate keeps the world *warm* and
//! answers speculative questions by forking it.
//!
//! Three layers:
//!
//! * [`WhatIfService`] — the core service. One **authoritative**
//!   [`netbw_fluid::FluidNetwork`] tracks the transfers actually admitted
//!   (through the fallible `try_add`, so malformed requests surface as
//!   typed [`ServeError`]s instead of panics). What-if queries never touch
//!   it: they run on throwaway [`netbw_fluid::FluidNetwork::fork`]s of a cached
//!   **snapshot** fork, which is invalidated on admission/advance and
//!   rebuilt at most once per batch — the fork-equivalence proptests in
//!   `netbw-fluid` pin that a fork diverged with speculative flows answers
//!   bit-for-bit like a rebuild-and-replay of the admission log.
//! * An [`netbw_eval::EvalSession`] underneath — query batches fan out on
//!   the work-stealing sweep executor, and per-flow slowdowns normalise by
//!   `Tref(size)` through the session's bounded, shared
//!   [`netbw_packet::TrefCache`] memo, so each distinct size is measured
//!   once per service lifetime (not per query).
//! * [`ServeHandle`] — an asynchronous front-end: requests go down an
//!   mpsc admission queue to a service thread that coalesces consecutive
//!   what-if requests into one executor batch ([`WhatIfService::spawn`]).
//!
//! The ablation baseline [`WhatIfService::what_if_batch_via_rebuild`]
//! answers the same queries by replaying the admission log from scratch;
//! `serve_smoke` (netbw-bench) guards that the fork path is at least 2×
//! faster and bitwise-identical.
//!
//! ```
//! use netbw_graph::Communication;
//! use netbw_serve::{ServeConfig, WhatIfQuery, WhatIfService};
//!
//! let service = WhatIfService::new(ServeConfig::default());
//! service.admit(Communication::new(0u32, 1u32, 1 << 20), 0.0).unwrap();
//! service.advance_to(0.001).unwrap();
//! let answer = service
//!     .what_if(&WhatIfQuery::flow(Communication::new(2u32, 1u32, 1 << 20), 0.0))
//!     .unwrap();
//! assert!(answer.flows[0].slowdown >= 1.0);
//! ```

mod frontend;
mod service;

pub use frontend::{ServeHandle, ServeRequest};
pub use service::{
    EngineMode, FlowAnswer, ServeConfig, ServeError, ServeStats, WhatIfAnswer, WhatIfQuery,
    WhatIfService,
};
