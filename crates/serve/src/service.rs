//! The core what-if service: authoritative engine, snapshot cache, and
//! batched speculative evaluation on the sweep executor.

use netbw_core::{GigabitEthernetModel, PenaltyModel};
use netbw_eval::{EvalSession, SweepStats, SweepWorker};
use netbw_fluid::{AddError, CompletedTransfer, FluidNetwork, NetworkParams, TransferKey};
use netbw_graph::Communication;
use netbw_packet::FabricConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key bit marking a speculative (what-if) flow inside a fork. Admitted
/// transfers take keys counting up from zero, so the two namespaces can
/// never collide in practice.
const SPEC_BASE: TransferKey = 1 << 63;

/// Shared penalty model handle: the authoritative engine, its snapshot
/// and every per-query fork alias one model allocation.
type ModelHandle = Arc<dyn PenaltyModel>;

/// The service's key into each worker's fork arena (see
/// [`netbw_eval::SweepWorker::take_fork_arena`]); one engine is parked
/// per worker.
const FORK_ARENA_KEY: u64 = 0;

/// Which fluid-engine variant the service runs — authoritative engine,
/// snapshot and rebuild ablation alike, so the bitwise-equality guards
/// (fork == rebuild, re-base == fresh fork) can be pinned per mode. All
/// five settle bit-for-bit identically; they differ only in how much work
/// a settle costs (see `netbw-fluid`'s crate docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// Lazy event heaps (the default production engine).
    #[default]
    Event,
    /// Linear scan timeline (no heaps).
    LinearTimeline,
    /// Full-recompute oracle (every settle recomputes everything).
    FullRecompute,
    /// Conflict-component sharding over the event engine.
    Sharded,
    /// Sharding with departure refinement disabled (merge-only ablation).
    ShardedMergeOnly,
}

impl EngineMode {
    /// Applies the mode to a freshly built network.
    fn apply(self, net: FluidNetwork<ModelHandle>) -> FluidNetwork<ModelHandle> {
        match self {
            EngineMode::Event => net,
            EngineMode::LinearTimeline => net.with_linear_timeline(),
            EngineMode::FullRecompute => net.with_full_recompute(),
            EngineMode::Sharded => net.with_sharded(),
            EngineMode::ShardedMergeOnly => net.with_sharded_merge_only(),
        }
    }
}

/// Configuration of a [`WhatIfService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Fluid-network parameters (bandwidth/latency) of the served cluster.
    pub params: NetworkParams,
    /// Packet fabric used to measure `Tref(size)` for slowdown
    /// normalisation.
    pub fabric: FabricConfig,
    /// Worker ceiling for query batches (0 = available parallelism).
    pub threads: usize,
    /// Fluid-engine variant (event heaps by default).
    pub mode: EngineMode,
}

impl Default for ServeConfig {
    /// The paper's Gigabit Ethernet cluster, all cores.
    fn default() -> Self {
        ServeConfig {
            params: NetworkParams::gige(),
            fabric: FabricConfig::gige(),
            threads: 0,
            mode: EngineMode::Event,
        }
    }
}

/// A typed refusal from the service. Malformed requests come back as
/// values — a long-running service must never panic on user input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServeError {
    /// The engine refused the flow (non-finite start, or a start before
    /// the current clock).
    Rejected(AddError),
    /// `advance_to(t)` would move the clock backwards (or `t` is NaN).
    NonMonotonicClock {
        /// The requested clock value.
        t: f64,
        /// The service clock at the time of the request.
        now: f64,
    },
    /// A what-if query with no flows.
    EmptyQuery,
    /// The service thread behind a [`crate::ServeHandle`] has shut down.
    ServiceStopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(err) => write!(f, "admission rejected: {err}"),
            ServeError::NonMonotonicClock { t, now } => {
                write!(f, "cannot advance to {t}: clock is already at {now}")
            }
            ServeError::EmptyQuery => write!(f, "what-if query has no flows"),
            ServeError::ServiceStopped => write!(f, "service thread has shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(err) => Some(err),
            _ => None,
        }
    }
}

impl From<AddError> for ServeError {
    fn from(err: AddError) -> Self {
        ServeError::Rejected(err)
    }
}

/// A speculative placement: flows to superimpose on the live cluster
/// state, each starting `offset` seconds after the service clock.
#[derive(Clone, Debug, Default)]
pub struct WhatIfQuery {
    /// `(communication, start offset from now)` pairs; offsets must be
    /// finite and non-negative or the query is [`ServeError::Rejected`].
    pub flows: Vec<(Communication, f64)>,
}

impl WhatIfQuery {
    /// A single-flow query starting `offset` seconds from now.
    pub fn flow(comm: Communication, offset: f64) -> Self {
        WhatIfQuery {
            flows: vec![(comm, offset)],
        }
    }
}

/// Predicted outcome of one speculative flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowAnswer {
    /// Absolute completion time on the service clock.
    pub completion: f64,
    /// Elapsed time from the flow's start to its completion.
    pub elapsed: f64,
    /// Uncontended reference time `Tref(size)` on the service fabric.
    pub tref: f64,
    /// `elapsed / tref` — the paper's penalty, as experienced end to end
    /// (1.0 = the cluster looks idle to this flow).
    pub slowdown: f64,
}

/// Predicted outcome of a [`WhatIfQuery`].
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIfAnswer {
    /// Per-flow outcomes, in query order.
    pub flows: Vec<FlowAnswer>,
    /// Time from now until the last speculative flow completes.
    pub makespan: f64,
}

/// Observability counters of a [`WhatIfService`].
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Transfers admitted into the authoritative engine.
    pub admitted: u64,
    /// Admitted transfers that have completed.
    pub completed: u64,
    /// What-if queries answered through the fork path.
    pub queries: u64,
    /// Snapshot forks taken from the authoritative engine.
    pub snapshot_builds: u64,
    /// Queries served from an already-warm snapshot (every query of a
    /// batch beyond the one that built it, plus whole batches served from
    /// cache). Per-query unit — pairs with [`ServeStats::queries`].
    pub snapshot_reuses: u64,
    /// Batches that found the snapshot cache warm (per-batch unit — pairs
    /// with [`ServeStats::snapshot_builds`]).
    pub snapshot_batch_reuses: u64,
    /// Admission/advance deltas replayed onto the cached snapshot in
    /// place (O(delta)) instead of invalidating it.
    pub rebases: u64,
    /// Re-bases that could not mutate the cached snapshot in place —
    /// it was still aliased by an in-flight batch, so the delta was
    /// applied to a privately re-based successor published in its stead
    /// (paying one fork), or replay was refused and the snapshot dropped.
    pub rebase_fallbacks: u64,
    /// Per-query engine forks that recycled a warm per-worker arena via
    /// `FluidNetwork::fork_into` instead of deep-copying afresh.
    pub fork_reuses: u64,
    /// Executor / arena / `Tref` memo counters of the underlying session.
    pub sweep: SweepStats,
}

impl ServeStats {
    /// Share of *queries* answered without forking the authoritative
    /// engine, in `[0, 1]` — the unit `serve_qps` guards. A batch of `n`
    /// that builds the snapshot still serves `n - 1` queries from it.
    pub fn per_query_snapshot_reuse_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.snapshot_reuses as f64 / self.queries as f64
        }
    }

    /// Share of *batches* that found the snapshot cache warm, in
    /// `[0, 1]`. Counts builds against whole-batch cache hits — the unit
    /// the pre-re-base `snapshot_reuse_rate` conflated with per-query
    /// reuses.
    pub fn per_batch_snapshot_reuse_rate(&self) -> f64 {
        let total = self.snapshot_builds + self.snapshot_batch_reuses;
        if total == 0 {
            0.0
        } else {
            self.snapshot_batch_reuses as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} admitted ({} completed) | {} queries | snapshots: {} built, {} reused \
             ({:.1}% of queries, {:.1}% of batches) | {} rebases ({} fallbacks) | \
             {} fork reuses | {}",
            self.admitted,
            self.completed,
            self.queries,
            self.snapshot_builds,
            self.snapshot_reuses,
            self.per_query_snapshot_reuse_rate() * 100.0,
            self.per_batch_snapshot_reuse_rate() * 100.0,
            self.rebases,
            self.rebase_fallbacks,
            self.fork_reuses,
            self.sweep,
        )
    }
}

/// A cached fork of the authoritative engine, shared by every query of a
/// batch (and across batches until an admission or advance invalidates
/// it). Queries fork *this* instead of the authoritative state, so the
/// authoritative lock is held only for the cache check, never for the
/// speculative settles.
struct Snapshot {
    net: FluidNetwork<ModelHandle>,
    now: f64,
}

/// State behind the authoritative lock: the engine of record, the
/// admission log (for the rebuild ablation), and the snapshot cache.
struct Authoritative {
    net: FluidNetwork<ModelHandle>,
    log: Vec<(TransferKey, Communication, f64)>,
    snapshot: Option<Arc<Snapshot>>,
    next_key: TransferKey,
    completed: u64,
}

/// A long-running what-if service: admit real transfers, advance the
/// clock as they progress, and ask speculative placement questions at any
/// point — answered from forks of the warm engine state, batched on the
/// sweep executor, with `Tref` normalisation deduplicated through the
/// session memo. See the crate docs for the dataflow.
pub struct WhatIfService {
    model: ModelHandle,
    config: ServeConfig,
    session: EvalSession,
    state: Mutex<Authoritative>,
    queries: AtomicU64,
    snapshot_builds: AtomicU64,
    snapshot_reuses: AtomicU64,
    snapshot_batch_reuses: AtomicU64,
    rebases: AtomicU64,
    rebase_fallbacks: AtomicU64,
    fork_reuses: AtomicU64,
}

impl WhatIfService {
    /// A service over the paper's Gigabit Ethernet model.
    pub fn new(config: ServeConfig) -> Self {
        WhatIfService::with_model(Arc::new(GigabitEthernetModel::default()), config)
    }

    /// A service over an explicit penalty model.
    pub fn with_model(model: ModelHandle, config: ServeConfig) -> Self {
        let net = config
            .mode
            .apply(FluidNetwork::new(Arc::clone(&model), config.params));
        WhatIfService {
            model,
            config,
            session: EvalSession::with_threads(config.threads),
            state: Mutex::new(Authoritative {
                net,
                log: Vec::new(),
                snapshot: None,
                next_key: 0,
                completed: 0,
            }),
            queries: AtomicU64::new(0),
            snapshot_builds: AtomicU64::new(0),
            snapshot_reuses: AtomicU64::new(0),
            snapshot_batch_reuses: AtomicU64::new(0),
            rebases: AtomicU64::new(0),
            rebase_fallbacks: AtomicU64::new(0),
            fork_reuses: AtomicU64::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of sweep workers query batches fan out on.
    pub fn threads(&self) -> usize {
        self.session.threads()
    }

    /// The current service clock.
    pub fn now(&self) -> f64 {
        self.state().net.time()
    }

    /// Admitted transfers still in flight.
    pub fn in_flight(&self) -> usize {
        self.state().net.in_flight()
    }

    /// Admits a transfer into the authoritative engine, returning its
    /// key. Rejections are typed values ([`AddError`] routed through
    /// [`ServeError::Rejected`]) — never panics.
    pub fn admit(&self, comm: Communication, start: f64) -> Result<TransferKey, ServeError> {
        let mut st = self.state();
        let key = st.next_key;
        st.net.try_add(key, comm, start)?;
        st.next_key += 1;
        st.log.push((key, comm, start));
        // Re-base instead of invalidating: the same admission that just
        // succeeded on the authoritative engine replays onto the cached
        // snapshot at O(delta), keeping it bitwise equal to a fresh fork.
        self.rebase(&mut st, |snap| snap.net.try_add(key, comm, start).is_ok());
        Ok(key)
    }

    /// Advances the authoritative clock to `t`, returning the transfers
    /// that completed on the way.
    pub fn advance_to(&self, t: f64) -> Result<Vec<CompletedTransfer>, ServeError> {
        let mut st = self.state();
        let now = st.net.time();
        if t.is_nan() || t < now {
            return Err(ServeError::NonMonotonicClock { t, now });
        }
        let done = st.net.advance_to(t);
        st.completed += done.len() as u64;
        // Any real clock movement must reach the snapshot too: its cached
        // `now` (the origin of query offsets) must match the service
        // clock, and latency gates may have opened even when nothing
        // completed. The same `advance_to` replays onto the snapshot at
        // O(affected); a no-op advance (`t == now`) touches nothing.
        if t > now {
            self.rebase(&mut st, |snap| {
                snap.net.advance_to(t);
                snap.now = t;
                true
            });
        }
        Ok(done)
    }

    /// Answers one query (a batch of one).
    pub fn what_if(&self, query: &WhatIfQuery) -> Result<WhatIfAnswer, ServeError> {
        self.what_if_batch(std::slice::from_ref(query))
            .pop()
            .expect("one answer per query")
    }

    /// Answers a batch of speculative queries, fanned out on the session
    /// executor. Each query runs on a private fork of the shared snapshot
    /// (built at most once per batch), so queries neither perturb the
    /// authoritative state nor each other. The fork lands in the worker's
    /// persistent fork arena: after each worker's first query ever, the
    /// deep copy recycles the previous fork's allocations
    /// ([`FluidNetwork::fork_into`]) instead of building a fresh engine.
    pub fn what_if_batch(&self, queries: &[WhatIfQuery]) -> Vec<Result<WhatIfAnswer, ServeError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let snap = self.snapshot_for(queries.len() as u64);
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.session.sweep(queries, |worker, query| {
            // The arena engine is taken *out* of the worker for the
            // query's duration, so `answer_on` can borrow the worker for
            // `Tref` lookups while the engine is live.
            let mut engine = match worker
                .take_fork_arena(FORK_ARENA_KEY)
                .and_then(|warm| warm.downcast::<FluidNetwork<ModelHandle>>().ok())
            {
                Some(mut warm) => {
                    snap.net.fork_into(&mut warm);
                    self.fork_reuses.fetch_add(1, Ordering::Relaxed);
                    warm
                }
                None => Box::new(snap.net.fork()),
            };
            let answer = self.answer_on(&mut engine, snap.now, worker, query);
            worker.put_fork_arena(FORK_ARENA_KEY, engine);
            answer
        })
    }

    /// Ablation baseline: answers the same queries by rebuilding a fresh
    /// engine per query and replaying the full admission log. Bitwise
    /// identical to [`Self::what_if_batch`] (guarded by `serve_smoke` and
    /// the fork-equivalence proptests) — it exists to measure what the
    /// fork path saves, so it deliberately takes none of the shortcuts:
    /// no snapshot, no re-base, no fork arena (pinned by the
    /// `rebuild_ablation_takes_no_shortcuts` test).
    pub fn what_if_batch_via_rebuild(
        &self,
        queries: &[WhatIfQuery],
    ) -> Vec<Result<WhatIfAnswer, ServeError>> {
        let (log, now) = {
            let st = self.state();
            (st.log.clone(), st.net.time())
        };
        self.session.sweep(queries, |worker, query| {
            let mut net = self.config.mode.apply(FluidNetwork::new(
                Arc::clone(&self.model),
                self.config.params,
            ));
            for &(key, comm, start) in &log {
                net.add(key, comm, start);
            }
            net.advance_to(now);
            self.answer_on(&mut net, now, worker, query)
        })
    }

    /// The service counters (includes the underlying session's sweep
    /// stats).
    pub fn stats(&self) -> ServeStats {
        let (admitted, completed) = {
            let st = self.state();
            (st.next_key, st.completed)
        };
        ServeStats {
            admitted,
            completed,
            queries: self.queries.load(Ordering::Relaxed),
            snapshot_builds: self.snapshot_builds.load(Ordering::Relaxed),
            snapshot_reuses: self.snapshot_reuses.load(Ordering::Relaxed),
            snapshot_batch_reuses: self.snapshot_batch_reuses.load(Ordering::Relaxed),
            rebases: self.rebases.load(Ordering::Relaxed),
            rebase_fallbacks: self.rebase_fallbacks.load(Ordering::Relaxed),
            fork_reuses: self.fork_reuses.load(Ordering::Relaxed),
            sweep: self.session.stats(),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, Authoritative> {
        self.state.lock().expect("authoritative state lock")
    }

    /// Replays one authoritative delta onto the cached snapshot (the
    /// re-base lifecycle; runs under the state lock, so batches never
    /// observe a half-applied snapshot). Three paths:
    ///
    /// * the cache is cold — nothing to do, the next batch forks fresh;
    /// * the snapshot is unaliased (`Arc::get_mut`) — `apply` mutates it
    ///   in place at O(delta), counted in [`ServeStats::rebases`];
    /// * the snapshot is still aliased by an in-flight batch (its queries
    ///   hold `Arc` clones and are forking it right now) — mutating it
    ///   would race those forks, so the delta applies to a privately
    ///   re-based successor that is published atomically in its place,
    ///   counted in [`ServeStats::rebase_fallbacks`].
    ///
    /// `apply` returning `false` (replay refused — cannot happen for
    /// deltas the authoritative engine just accepted, kept as a defensive
    /// rail) drops the snapshot, falling back to PR 8's invalidation.
    fn rebase(&self, st: &mut Authoritative, apply: impl FnOnce(&mut Snapshot) -> bool) {
        let Some(arc) = st.snapshot.as_mut() else {
            return;
        };
        if let Some(snap) = Arc::get_mut(arc) {
            if apply(snap) {
                self.rebases.fetch_add(1, Ordering::Relaxed);
            } else {
                st.snapshot = None;
                self.rebase_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let mut next = Snapshot {
            net: arc.net.fork(),
            now: arc.now,
        };
        if apply(&mut next) {
            st.snapshot = Some(Arc::new(next));
        } else {
            st.snapshot = None;
        }
        self.rebase_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// The shared snapshot for a batch of `queries` queries, forking the
    /// authoritative engine only if the cache was invalidated since the
    /// last batch.
    fn snapshot_for(&self, queries: u64) -> Arc<Snapshot> {
        let mut st = self.state();
        if let Some(snap) = &st.snapshot {
            self.snapshot_batch_reuses.fetch_add(1, Ordering::Relaxed);
            self.snapshot_reuses.fetch_add(queries, Ordering::Relaxed);
            return Arc::clone(snap);
        }
        let snap = Arc::new(Snapshot {
            net: st.net.fork(),
            now: st.net.time(),
        });
        st.snapshot = Some(Arc::clone(&snap));
        self.snapshot_builds.fetch_add(1, Ordering::Relaxed);
        self.snapshot_reuses
            .fetch_add(queries.saturating_sub(1), Ordering::Relaxed);
        snap
    }

    /// Superimposes the query's flows on `net` (already positioned at
    /// `now`) and settles until every speculative flow completes. `net`
    /// is a private fork or rebuild — it is left diverged, to be
    /// overwritten by the next `fork_into` (arena path) or dropped
    /// (rebuild path).
    fn answer_on(
        &self,
        net: &mut FluidNetwork<ModelHandle>,
        now: f64,
        worker: &mut SweepWorker<'_>,
        query: &WhatIfQuery,
    ) -> Result<WhatIfAnswer, ServeError> {
        if query.flows.is_empty() {
            return Err(ServeError::EmptyQuery);
        }
        let mut starts = Vec::with_capacity(query.flows.len());
        for (i, &(comm, offset)) in query.flows.iter().enumerate() {
            let start = now + offset;
            net.try_add(SPEC_BASE | i as TransferKey, comm, start)?;
            starts.push(start);
        }
        // Settle event by event until every speculative flow has
        // completed; background flows that finish later stay in flight.
        let mut completions = vec![f64::NAN; query.flows.len()];
        let mut pending = query.flows.len();
        while pending > 0 {
            let t = net
                .next_event_time()
                .expect("speculative flows pending implies a next event");
            for done in net.advance_to(t) {
                if done.key & SPEC_BASE != 0 {
                    completions[(done.key & !SPEC_BASE) as usize] = done.completion;
                    pending -= 1;
                }
            }
        }
        let mut flows = Vec::with_capacity(query.flows.len());
        let mut makespan = 0.0f64;
        for ((&(comm, _), &start), &completion) in query.flows.iter().zip(&starts).zip(&completions)
        {
            let tref = worker.tref(self.config.fabric, comm.size);
            let elapsed = completion - start;
            flows.push(FlowAnswer {
                completion,
                elapsed,
                tref,
                slowdown: elapsed / tref,
            });
            makespan = makespan.max(completion - now);
        }
        Ok(WhatIfAnswer { flows, makespan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::MyrinetModel;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            params: NetworkParams::new(2.0, 0.25),
            fabric: FabricConfig::gige(),
            threads: 2,
            mode: EngineMode::Event,
        }
    }

    #[test]
    fn admission_and_advance_drive_the_authoritative_engine() {
        let service = WhatIfService::new(tiny_config());
        let a = service
            .admit(Communication::new(0u32, 1u32, 100), 0.0)
            .unwrap();
        let b = service
            .admit(Communication::new(2u32, 1u32, 100), 0.0)
            .unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(service.in_flight(), 2);
        let done = service.advance_to(1_000.0).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(service.in_flight(), 0);
        let stats = service.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn malformed_requests_come_back_as_typed_errors() {
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 100), 5.0)
            .unwrap();
        service.advance_to(5.0).unwrap();

        assert!(matches!(
            service.admit(Communication::new(2u32, 3u32, 100), 1.0),
            Err(ServeError::Rejected(AddError::StartInPast { start, now }))
                if start == 1.0 && now == 5.0
        ));
        assert!(matches!(
            service.admit(Communication::new(2u32, 3u32, 100), f64::NAN),
            Err(ServeError::Rejected(AddError::NonFiniteStart { .. }))
        ));
        assert!(matches!(
            service.advance_to(1.0),
            Err(ServeError::NonMonotonicClock { t, now }) if t == 1.0 && now == 5.0
        ));
        assert!(matches!(
            service.advance_to(f64::NAN),
            Err(ServeError::NonMonotonicClock { .. })
        ));
        assert_eq!(
            service.what_if(&WhatIfQuery::default()),
            Err(ServeError::EmptyQuery)
        );
        assert!(matches!(
            service.what_if(&WhatIfQuery::flow(
                Communication::new(2u32, 3u32, 100),
                -1.0
            )),
            Err(ServeError::Rejected(AddError::StartInPast { .. }))
        ));
        // a rejected admission leaves no trace
        assert_eq!(service.stats().admitted, 1);
    }

    #[test]
    fn what_if_matches_a_hand_built_scenario() {
        // Authoritative: one flow of 400 bytes at 2 B/s from t=0. A
        // speculative flow sharing its destination contends with it; one
        // on disjoint nodes does not.
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 400), 0.0)
            .unwrap();
        service.advance_to(10.0).unwrap();

        let free = service
            .what_if(&WhatIfQuery::flow(Communication::new(4u32, 5u32, 400), 0.0))
            .unwrap();
        let contended = service
            .what_if(&WhatIfQuery::flow(Communication::new(2u32, 1u32, 400), 0.0))
            .unwrap();
        // An uncontended flow: latency gate + size/bandwidth.
        assert_eq!(free.flows[0].elapsed, 0.25 + 400.0 / 2.0);
        assert!(contended.flows[0].elapsed > free.flows[0].elapsed);
        assert!(contended.makespan >= contended.flows[0].elapsed);
        assert!(contended.flows[0].slowdown > free.flows[0].slowdown);
        // Speculation must not have perturbed the authoritative engine.
        assert_eq!(service.in_flight(), 1);
        assert_eq!(service.now(), 10.0);
    }

    #[test]
    fn fork_path_is_bitwise_identical_to_rebuild_and_replay() {
        let model: ModelHandle = Arc::new(MyrinetModel::default());
        let service = WhatIfService::with_model(model, tiny_config());
        // Interleave admissions and advances so the rebuild really
        // replays a history, not a single batch.
        for i in 0..12u64 {
            let comm = Communication::new((i % 4) as u32, (4 + i % 3) as u32, 500 + 40 * i);
            service.admit(comm, i as f64 * 0.4).unwrap();
            if i % 3 == 2 {
                service.advance_to(i as f64 * 0.4 + 0.1).unwrap();
            }
        }
        service.advance_to(5.0).unwrap();

        let queries: Vec<WhatIfQuery> = (0..8u64)
            .map(|i| {
                let mut q = WhatIfQuery::flow(
                    Communication::new((i % 5) as u32, (5 + i % 2) as u32, 900 + 10 * i),
                    0.2 * i as f64,
                );
                q.flows.push((Communication::new(7u32, 8u32, 600), 0.0));
                q
            })
            .collect();
        let forked = service.what_if_batch(&queries);
        let rebuilt = service.what_if_batch_via_rebuild(&queries);
        for (f, r) in forked.iter().zip(&rebuilt) {
            let (f, r) = (f.as_ref().unwrap(), r.as_ref().unwrap());
            assert_eq!(f.makespan.to_bits(), r.makespan.to_bits());
            for (ff, rf) in f.flows.iter().zip(&r.flows) {
                assert_eq!(ff.completion.to_bits(), rf.completion.to_bits());
                assert_eq!(ff.slowdown.to_bits(), rf.slowdown.to_bits());
            }
        }
    }

    #[test]
    fn snapshots_are_rebased_not_rebuilt() {
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 1_000), 0.0)
            .unwrap();
        service.advance_to(1.0).unwrap();

        let queries: Vec<WhatIfQuery> = (0..6)
            .map(|i| WhatIfQuery::flow(Communication::new(2u32, 3u32, 100 + i), 0.0))
            .collect();
        service.what_if_batch(&queries);
        service.what_if_batch(&queries);
        let stats = service.stats();
        assert_eq!(stats.snapshot_builds, 1);
        assert_eq!(stats.snapshot_reuses, 11);
        assert_eq!(stats.snapshot_batch_reuses, 1);
        assert_eq!(stats.queries, 12);
        assert_eq!(stats.rebases, 0, "no churn yet, nothing to re-base");

        // Admission re-bases the snapshot in place: the next batch still
        // finds it warm, no new fork of the authoritative engine.
        service
            .admit(Communication::new(4u32, 5u32, 1_000), 2.0)
            .unwrap();
        service.what_if_batch(&queries);
        let stats = service.stats();
        assert_eq!(stats.snapshot_builds, 1);
        assert_eq!(stats.rebases, 1);
        assert_eq!(stats.rebase_fallbacks, 0, "nothing aliased the snapshot");

        // Clock movement re-bases too (offsets are relative to `now`).
        service.advance_to(2.5).unwrap();
        service.what_if_batch(&queries);
        let stats = service.stats();
        assert_eq!(stats.snapshot_builds, 1);
        assert_eq!(stats.rebases, 2);
        // A no-op advance (t == now) touches nothing.
        service.advance_to(2.5).unwrap();
        service.what_if_batch(&queries);
        let stats = service.stats();
        assert_eq!(stats.snapshot_builds, 1);
        assert_eq!(stats.rebases, 2);
        // Per-query reuse now counts every query after the very first
        // build; per-batch reuse counts every batch after the first.
        assert_eq!(stats.per_query_snapshot_reuse_rate(), 29.0 / 30.0);
        assert_eq!(stats.per_batch_snapshot_reuse_rate(), 4.0 / 5.0);
        // Steady-state forks recycle each worker's arena: only the first
        // query of each of the (at most) 2 workers built an engine.
        assert!(stats.fork_reuses >= stats.queries - 2);
    }

    #[test]
    fn rebased_snapshot_answers_like_a_fresh_fork() {
        // Drive churn through the re-base path on one service and compare
        // against a twin that replays the same history with its snapshot
        // cache never populated before the query — the rebased snapshot
        // must be observationally identical to a fresh fork.
        let run = |prewarm: bool| {
            let service = WhatIfService::new(tiny_config());
            for i in 0..10u64 {
                let comm = Communication::new((i % 3) as u32, (3 + i % 4) as u32, 700 + 31 * i);
                service.admit(comm, i as f64 * 0.3).unwrap();
                if prewarm && i == 0 {
                    // Populate the snapshot cache so every later admission
                    // and advance re-bases it.
                    service
                        .what_if(&WhatIfQuery::flow(Communication::new(8u32, 9u32, 100), 0.0))
                        .unwrap();
                }
                if i % 2 == 1 {
                    service.advance_to(i as f64 * 0.3 + 0.05).unwrap();
                }
            }
            service.advance_to(3.2).unwrap();
            let answer = service
                .what_if(&WhatIfQuery::flow(Communication::new(1u32, 3u32, 512), 0.1))
                .unwrap();
            (answer, service.stats())
        };
        let (rebased, warm_stats) = run(true);
        let (fresh, cold_stats) = run(false);
        assert!(warm_stats.rebases > 0, "prewarmed run must re-base");
        assert_eq!(cold_stats.rebases, 0, "cold run must fork fresh");
        assert_eq!(
            rebased.flows[0].completion.to_bits(),
            fresh.flows[0].completion.to_bits()
        );
        assert_eq!(
            rebased.flows[0].slowdown.to_bits(),
            fresh.flows[0].slowdown.to_bits()
        );
    }

    #[test]
    fn rebuild_ablation_takes_no_shortcuts() {
        let service = WhatIfService::new(tiny_config());
        for i in 0..8u64 {
            service
                .admit(
                    Communication::new((i % 4) as u32, (4 + i % 2) as u32, 400 + 10 * i),
                    i as f64 * 0.2,
                )
                .unwrap();
        }
        service.advance_to(2.0).unwrap();
        let queries: Vec<WhatIfQuery> = (0..5)
            .map(|i| WhatIfQuery::flow(Communication::new(6u32, 7u32, 300 + i), 0.0))
            .collect();
        service.what_if_batch_via_rebuild(&queries);
        service.what_if_batch_via_rebuild(&queries);
        let stats = service.stats();
        // An honest ablation: no snapshot, no re-base, no arena recycling
        // — every query paid the full rebuild-and-replay.
        assert_eq!(stats.snapshot_builds, 0);
        assert_eq!(stats.snapshot_reuses, 0);
        assert_eq!(stats.rebases, 0);
        assert_eq!(stats.rebase_fallbacks, 0);
        assert_eq!(stats.fork_reuses, 0);
        assert_eq!(stats.queries, 0, "ablation queries bypass the fork path");
    }

    #[test]
    fn tref_is_deduplicated_across_queries() {
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 1_000), 0.0)
            .unwrap();
        // 16 queries, all the same size: one reference measurement.
        let queries: Vec<WhatIfQuery> = (0..16)
            .map(|i| WhatIfQuery::flow(Communication::new((2 + i % 3) as u32, 6u32, 4_096), 0.0))
            .collect();
        service.what_if_batch(&queries);
        let sweep = service.stats().sweep;
        assert_eq!(sweep.tref_misses, 1);
        assert_eq!(sweep.tref_hits, 15);
    }
}
