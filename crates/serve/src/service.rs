//! The core what-if service: authoritative engine, snapshot cache, and
//! batched speculative evaluation on the sweep executor.

use netbw_core::{GigabitEthernetModel, PenaltyModel};
use netbw_eval::{EvalSession, SweepStats, SweepWorker};
use netbw_fluid::{AddError, CompletedTransfer, FluidNetwork, NetworkParams, TransferKey};
use netbw_graph::Communication;
use netbw_packet::FabricConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Key bit marking a speculative (what-if) flow inside a fork. Admitted
/// transfers take keys counting up from zero, so the two namespaces can
/// never collide in practice.
const SPEC_BASE: TransferKey = 1 << 63;

/// Shared penalty model handle: the authoritative engine, its snapshot
/// and every per-query fork alias one model allocation.
type ModelHandle = Arc<dyn PenaltyModel>;

/// Configuration of a [`WhatIfService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Fluid-network parameters (bandwidth/latency) of the served cluster.
    pub params: NetworkParams,
    /// Packet fabric used to measure `Tref(size)` for slowdown
    /// normalisation.
    pub fabric: FabricConfig,
    /// Worker ceiling for query batches (0 = available parallelism).
    pub threads: usize,
}

impl Default for ServeConfig {
    /// The paper's Gigabit Ethernet cluster, all cores.
    fn default() -> Self {
        ServeConfig {
            params: NetworkParams::gige(),
            fabric: FabricConfig::gige(),
            threads: 0,
        }
    }
}

/// A typed refusal from the service. Malformed requests come back as
/// values — a long-running service must never panic on user input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServeError {
    /// The engine refused the flow (non-finite start, or a start before
    /// the current clock).
    Rejected(AddError),
    /// `advance_to(t)` would move the clock backwards (or `t` is NaN).
    NonMonotonicClock {
        /// The requested clock value.
        t: f64,
        /// The service clock at the time of the request.
        now: f64,
    },
    /// A what-if query with no flows.
    EmptyQuery,
    /// The service thread behind a [`crate::ServeHandle`] has shut down.
    ServiceStopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(err) => write!(f, "admission rejected: {err}"),
            ServeError::NonMonotonicClock { t, now } => {
                write!(f, "cannot advance to {t}: clock is already at {now}")
            }
            ServeError::EmptyQuery => write!(f, "what-if query has no flows"),
            ServeError::ServiceStopped => write!(f, "service thread has shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(err) => Some(err),
            _ => None,
        }
    }
}

impl From<AddError> for ServeError {
    fn from(err: AddError) -> Self {
        ServeError::Rejected(err)
    }
}

/// A speculative placement: flows to superimpose on the live cluster
/// state, each starting `offset` seconds after the service clock.
#[derive(Clone, Debug, Default)]
pub struct WhatIfQuery {
    /// `(communication, start offset from now)` pairs; offsets must be
    /// finite and non-negative or the query is [`ServeError::Rejected`].
    pub flows: Vec<(Communication, f64)>,
}

impl WhatIfQuery {
    /// A single-flow query starting `offset` seconds from now.
    pub fn flow(comm: Communication, offset: f64) -> Self {
        WhatIfQuery {
            flows: vec![(comm, offset)],
        }
    }
}

/// Predicted outcome of one speculative flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowAnswer {
    /// Absolute completion time on the service clock.
    pub completion: f64,
    /// Elapsed time from the flow's start to its completion.
    pub elapsed: f64,
    /// Uncontended reference time `Tref(size)` on the service fabric.
    pub tref: f64,
    /// `elapsed / tref` — the paper's penalty, as experienced end to end
    /// (1.0 = the cluster looks idle to this flow).
    pub slowdown: f64,
}

/// Predicted outcome of a [`WhatIfQuery`].
#[derive(Clone, Debug, PartialEq)]
pub struct WhatIfAnswer {
    /// Per-flow outcomes, in query order.
    pub flows: Vec<FlowAnswer>,
    /// Time from now until the last speculative flow completes.
    pub makespan: f64,
}

/// Observability counters of a [`WhatIfService`].
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Transfers admitted into the authoritative engine.
    pub admitted: u64,
    /// Admitted transfers that have completed.
    pub completed: u64,
    /// What-if queries answered through the fork path.
    pub queries: u64,
    /// Snapshot forks taken from the authoritative engine.
    pub snapshot_builds: u64,
    /// Queries served from an already-warm snapshot.
    pub snapshot_reuses: u64,
    /// Executor / arena / `Tref` memo counters of the underlying session.
    pub sweep: SweepStats,
}

impl ServeStats {
    /// Share of queries that did not force a snapshot rebuild, in `[0, 1]`.
    pub fn snapshot_reuse_rate(&self) -> f64 {
        let total = self.snapshot_builds + self.snapshot_reuses;
        if total == 0 {
            0.0
        } else {
            self.snapshot_reuses as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} admitted ({} completed) | {} queries | snapshots: {} built, {} reused \
             ({:.1}% reuse) | {}",
            self.admitted,
            self.completed,
            self.queries,
            self.snapshot_builds,
            self.snapshot_reuses,
            self.snapshot_reuse_rate() * 100.0,
            self.sweep,
        )
    }
}

/// A cached fork of the authoritative engine, shared by every query of a
/// batch (and across batches until an admission or advance invalidates
/// it). Queries fork *this* instead of the authoritative state, so the
/// authoritative lock is held only for the cache check, never for the
/// speculative settles.
struct Snapshot {
    net: FluidNetwork<ModelHandle>,
    now: f64,
}

/// State behind the authoritative lock: the engine of record, the
/// admission log (for the rebuild ablation), and the snapshot cache.
struct Authoritative {
    net: FluidNetwork<ModelHandle>,
    log: Vec<(TransferKey, Communication, f64)>,
    snapshot: Option<Arc<Snapshot>>,
    next_key: TransferKey,
    completed: u64,
}

/// A long-running what-if service: admit real transfers, advance the
/// clock as they progress, and ask speculative placement questions at any
/// point — answered from forks of the warm engine state, batched on the
/// sweep executor, with `Tref` normalisation deduplicated through the
/// session memo. See the crate docs for the dataflow.
pub struct WhatIfService {
    model: ModelHandle,
    config: ServeConfig,
    session: EvalSession,
    state: Mutex<Authoritative>,
    queries: AtomicU64,
    snapshot_builds: AtomicU64,
    snapshot_reuses: AtomicU64,
}

impl WhatIfService {
    /// A service over the paper's Gigabit Ethernet model.
    pub fn new(config: ServeConfig) -> Self {
        WhatIfService::with_model(Arc::new(GigabitEthernetModel::default()), config)
    }

    /// A service over an explicit penalty model.
    pub fn with_model(model: ModelHandle, config: ServeConfig) -> Self {
        let net = FluidNetwork::new(Arc::clone(&model), config.params);
        WhatIfService {
            model,
            config,
            session: EvalSession::with_threads(config.threads),
            state: Mutex::new(Authoritative {
                net,
                log: Vec::new(),
                snapshot: None,
                next_key: 0,
                completed: 0,
            }),
            queries: AtomicU64::new(0),
            snapshot_builds: AtomicU64::new(0),
            snapshot_reuses: AtomicU64::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The current service clock.
    pub fn now(&self) -> f64 {
        self.state().net.time()
    }

    /// Admitted transfers still in flight.
    pub fn in_flight(&self) -> usize {
        self.state().net.in_flight()
    }

    /// Admits a transfer into the authoritative engine, returning its
    /// key. Rejections are typed values ([`AddError`] routed through
    /// [`ServeError::Rejected`]) — never panics.
    pub fn admit(&self, comm: Communication, start: f64) -> Result<TransferKey, ServeError> {
        let mut st = self.state();
        let key = st.next_key;
        st.net.try_add(key, comm, start)?;
        st.next_key += 1;
        st.log.push((key, comm, start));
        st.snapshot = None;
        Ok(key)
    }

    /// Advances the authoritative clock to `t`, returning the transfers
    /// that completed on the way.
    pub fn advance_to(&self, t: f64) -> Result<Vec<CompletedTransfer>, ServeError> {
        let mut st = self.state();
        let now = st.net.time();
        if t.is_nan() || t < now {
            return Err(ServeError::NonMonotonicClock { t, now });
        }
        let done = st.net.advance_to(t);
        st.completed += done.len() as u64;
        // Any real clock movement invalidates the snapshot: its cached
        // `now` (the origin of query offsets) must match the service
        // clock, and latency gates may have opened even when nothing
        // completed. A no-op advance (`t == now`) keeps it warm.
        if t > now {
            st.snapshot = None;
        }
        Ok(done)
    }

    /// Answers one query (a batch of one).
    pub fn what_if(&self, query: &WhatIfQuery) -> Result<WhatIfAnswer, ServeError> {
        self.what_if_batch(std::slice::from_ref(query))
            .pop()
            .expect("one answer per query")
    }

    /// Answers a batch of speculative queries, fanned out on the session
    /// executor. Each query runs on a private fork of the shared snapshot
    /// (built at most once per batch), so queries neither perturb the
    /// authoritative state nor each other.
    pub fn what_if_batch(&self, queries: &[WhatIfQuery]) -> Vec<Result<WhatIfAnswer, ServeError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let snap = self.snapshot_for(queries.len() as u64);
        self.queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.session.sweep(queries, |worker, query| {
            self.answer_on(snap.net.fork(), snap.now, worker, query)
        })
    }

    /// Ablation baseline: answers the same queries by rebuilding a fresh
    /// engine per query and replaying the full admission log. Bitwise
    /// identical to [`Self::what_if_batch`] (guarded by `serve_smoke` and
    /// the fork-equivalence proptests) — it exists to measure what the
    /// fork path saves.
    pub fn what_if_batch_via_rebuild(
        &self,
        queries: &[WhatIfQuery],
    ) -> Vec<Result<WhatIfAnswer, ServeError>> {
        let (log, now) = {
            let st = self.state();
            (st.log.clone(), st.net.time())
        };
        self.session.sweep(queries, |worker, query| {
            let mut net = FluidNetwork::new(Arc::clone(&self.model), self.config.params);
            for &(key, comm, start) in &log {
                net.add(key, comm, start);
            }
            net.advance_to(now);
            self.answer_on(net, now, worker, query)
        })
    }

    /// The service counters (includes the underlying session's sweep
    /// stats).
    pub fn stats(&self) -> ServeStats {
        let (admitted, completed) = {
            let st = self.state();
            (st.next_key, st.completed)
        };
        ServeStats {
            admitted,
            completed,
            queries: self.queries.load(Ordering::Relaxed),
            snapshot_builds: self.snapshot_builds.load(Ordering::Relaxed),
            snapshot_reuses: self.snapshot_reuses.load(Ordering::Relaxed),
            sweep: self.session.stats(),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, Authoritative> {
        self.state.lock().expect("authoritative state lock")
    }

    /// The shared snapshot for a batch of `queries` queries, forking the
    /// authoritative engine only if the cache was invalidated since the
    /// last batch.
    fn snapshot_for(&self, queries: u64) -> Arc<Snapshot> {
        let mut st = self.state();
        if let Some(snap) = &st.snapshot {
            self.snapshot_reuses.fetch_add(queries, Ordering::Relaxed);
            return Arc::clone(snap);
        }
        let snap = Arc::new(Snapshot {
            net: st.net.fork(),
            now: st.net.time(),
        });
        st.snapshot = Some(Arc::clone(&snap));
        self.snapshot_builds.fetch_add(1, Ordering::Relaxed);
        self.snapshot_reuses
            .fetch_add(queries.saturating_sub(1), Ordering::Relaxed);
        snap
    }

    /// Superimposes the query's flows on `net` (already positioned at
    /// `now`) and settles until every speculative flow completes. `net`
    /// is consumed: it is a throwaway fork or rebuild.
    fn answer_on(
        &self,
        mut net: FluidNetwork<ModelHandle>,
        now: f64,
        worker: &mut SweepWorker<'_>,
        query: &WhatIfQuery,
    ) -> Result<WhatIfAnswer, ServeError> {
        if query.flows.is_empty() {
            return Err(ServeError::EmptyQuery);
        }
        let mut starts = Vec::with_capacity(query.flows.len());
        for (i, &(comm, offset)) in query.flows.iter().enumerate() {
            let start = now + offset;
            net.try_add(SPEC_BASE | i as TransferKey, comm, start)?;
            starts.push(start);
        }
        // Settle event by event until every speculative flow has
        // completed; background flows that finish later stay in flight.
        let mut completions = vec![f64::NAN; query.flows.len()];
        let mut pending = query.flows.len();
        while pending > 0 {
            let t = net
                .next_event_time()
                .expect("speculative flows pending implies a next event");
            for done in net.advance_to(t) {
                if done.key & SPEC_BASE != 0 {
                    completions[(done.key & !SPEC_BASE) as usize] = done.completion;
                    pending -= 1;
                }
            }
        }
        let mut flows = Vec::with_capacity(query.flows.len());
        let mut makespan = 0.0f64;
        for ((&(comm, _), &start), &completion) in query.flows.iter().zip(&starts).zip(&completions)
        {
            let tref = worker.tref(self.config.fabric, comm.size);
            let elapsed = completion - start;
            flows.push(FlowAnswer {
                completion,
                elapsed,
                tref,
                slowdown: elapsed / tref,
            });
            makespan = makespan.max(completion - now);
        }
        Ok(WhatIfAnswer { flows, makespan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_core::MyrinetModel;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            params: NetworkParams::new(2.0, 0.25),
            fabric: FabricConfig::gige(),
            threads: 2,
        }
    }

    #[test]
    fn admission_and_advance_drive_the_authoritative_engine() {
        let service = WhatIfService::new(tiny_config());
        let a = service
            .admit(Communication::new(0u32, 1u32, 100), 0.0)
            .unwrap();
        let b = service
            .admit(Communication::new(2u32, 1u32, 100), 0.0)
            .unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(service.in_flight(), 2);
        let done = service.advance_to(1_000.0).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(service.in_flight(), 0);
        let stats = service.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn malformed_requests_come_back_as_typed_errors() {
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 100), 5.0)
            .unwrap();
        service.advance_to(5.0).unwrap();

        assert!(matches!(
            service.admit(Communication::new(2u32, 3u32, 100), 1.0),
            Err(ServeError::Rejected(AddError::StartInPast { start, now }))
                if start == 1.0 && now == 5.0
        ));
        assert!(matches!(
            service.admit(Communication::new(2u32, 3u32, 100), f64::NAN),
            Err(ServeError::Rejected(AddError::NonFiniteStart { .. }))
        ));
        assert!(matches!(
            service.advance_to(1.0),
            Err(ServeError::NonMonotonicClock { t, now }) if t == 1.0 && now == 5.0
        ));
        assert!(matches!(
            service.advance_to(f64::NAN),
            Err(ServeError::NonMonotonicClock { .. })
        ));
        assert_eq!(
            service.what_if(&WhatIfQuery::default()),
            Err(ServeError::EmptyQuery)
        );
        assert!(matches!(
            service.what_if(&WhatIfQuery::flow(
                Communication::new(2u32, 3u32, 100),
                -1.0
            )),
            Err(ServeError::Rejected(AddError::StartInPast { .. }))
        ));
        // a rejected admission leaves no trace
        assert_eq!(service.stats().admitted, 1);
    }

    #[test]
    fn what_if_matches_a_hand_built_scenario() {
        // Authoritative: one flow of 400 bytes at 2 B/s from t=0. A
        // speculative flow sharing its destination contends with it; one
        // on disjoint nodes does not.
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 400), 0.0)
            .unwrap();
        service.advance_to(10.0).unwrap();

        let free = service
            .what_if(&WhatIfQuery::flow(Communication::new(4u32, 5u32, 400), 0.0))
            .unwrap();
        let contended = service
            .what_if(&WhatIfQuery::flow(Communication::new(2u32, 1u32, 400), 0.0))
            .unwrap();
        // An uncontended flow: latency gate + size/bandwidth.
        assert_eq!(free.flows[0].elapsed, 0.25 + 400.0 / 2.0);
        assert!(contended.flows[0].elapsed > free.flows[0].elapsed);
        assert!(contended.makespan >= contended.flows[0].elapsed);
        assert!(contended.flows[0].slowdown > free.flows[0].slowdown);
        // Speculation must not have perturbed the authoritative engine.
        assert_eq!(service.in_flight(), 1);
        assert_eq!(service.now(), 10.0);
    }

    #[test]
    fn fork_path_is_bitwise_identical_to_rebuild_and_replay() {
        let model: ModelHandle = Arc::new(MyrinetModel::default());
        let service = WhatIfService::with_model(model, tiny_config());
        // Interleave admissions and advances so the rebuild really
        // replays a history, not a single batch.
        for i in 0..12u64 {
            let comm = Communication::new((i % 4) as u32, (4 + i % 3) as u32, 500 + 40 * i);
            service.admit(comm, i as f64 * 0.4).unwrap();
            if i % 3 == 2 {
                service.advance_to(i as f64 * 0.4 + 0.1).unwrap();
            }
        }
        service.advance_to(5.0).unwrap();

        let queries: Vec<WhatIfQuery> = (0..8u64)
            .map(|i| {
                let mut q = WhatIfQuery::flow(
                    Communication::new((i % 5) as u32, (5 + i % 2) as u32, 900 + 10 * i),
                    0.2 * i as f64,
                );
                q.flows.push((Communication::new(7u32, 8u32, 600), 0.0));
                q
            })
            .collect();
        let forked = service.what_if_batch(&queries);
        let rebuilt = service.what_if_batch_via_rebuild(&queries);
        for (f, r) in forked.iter().zip(&rebuilt) {
            let (f, r) = (f.as_ref().unwrap(), r.as_ref().unwrap());
            assert_eq!(f.makespan.to_bits(), r.makespan.to_bits());
            for (ff, rf) in f.flows.iter().zip(&r.flows) {
                assert_eq!(ff.completion.to_bits(), rf.completion.to_bits());
                assert_eq!(ff.slowdown.to_bits(), rf.slowdown.to_bits());
            }
        }
    }

    #[test]
    fn snapshots_are_reused_until_invalidated() {
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 1_000), 0.0)
            .unwrap();
        service.advance_to(1.0).unwrap();

        let queries: Vec<WhatIfQuery> = (0..6)
            .map(|i| WhatIfQuery::flow(Communication::new(2u32, 3u32, 100 + i), 0.0))
            .collect();
        service.what_if_batch(&queries);
        service.what_if_batch(&queries);
        let stats = service.stats();
        assert_eq!(stats.snapshot_builds, 1);
        assert_eq!(stats.snapshot_reuses, 11);
        assert_eq!(stats.queries, 12);

        // Admission invalidates; the next batch rebuilds exactly once.
        service
            .admit(Communication::new(4u32, 5u32, 1_000), 2.0)
            .unwrap();
        service.what_if_batch(&queries);
        let stats = service.stats();
        assert_eq!(stats.snapshot_builds, 2);
        assert!(stats.snapshot_reuse_rate() > 0.8);

        // Any real clock movement invalidates too: query offsets are
        // relative to `now`, so a stale snapshot would shift them.
        service.advance_to(2.5).unwrap();
        service.what_if_batch(&queries);
        assert_eq!(service.stats().snapshot_builds, 3);
        // A no-op advance (t == now) keeps the snapshot warm.
        service.advance_to(2.5).unwrap();
        service.what_if_batch(&queries);
        assert_eq!(service.stats().snapshot_builds, 3);
    }

    #[test]
    fn tref_is_deduplicated_across_queries() {
        let service = WhatIfService::new(tiny_config());
        service
            .admit(Communication::new(0u32, 1u32, 1_000), 0.0)
            .unwrap();
        // 16 queries, all the same size: one reference measurement.
        let queries: Vec<WhatIfQuery> = (0..16)
            .map(|i| WhatIfQuery::flow(Communication::new((2 + i % 3) as u32, 6u32, 4_096), 0.0))
            .collect();
        service.what_if_batch(&queries);
        let sweep = service.stats().sweep;
        assert_eq!(sweep.tref_misses, 1);
        assert_eq!(sweep.tref_hits, 15);
    }
}
