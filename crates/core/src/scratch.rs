//! Opaque, caller-owned model scratch state.
//!
//! The penalty models themselves are shared across threads (`PenaltyModel:
//! Send + Sync`), so they cannot accumulate per-population state — but the
//! incremental patch machinery wants exactly that: GigE and InfiniBand keep
//! an endpoint index alive across settles, Myrinet its union–find conflict
//! components plus a cached Moon–Moser budget certification. The solution
//! is to move the state *out* of the model and into whoever issues the
//! queries: a [`ModelScratch`] is created once per penalty cache by
//! [`PenaltyModel::new_scratch`](crate::PenaltyModel::new_scratch), handed
//! back on every
//! [`penalties_with_scratch`](crate::PenaltyModel::penalties_with_scratch)
//! call, and downcast by the owning model to its concrete scratch type.
//! A model must treat an unexpected scratch type as empty — correctness
//! can never depend on what the scratch holds, only speed can.
//!
//! Every query also reports a [`QueryOutcome`], which is how patch
//! behaviour becomes observable: the fluid engine's `CacheStats`
//! distinguishes deltas *offered* from patches *performed*, and counts
//! scratch rebuilds and Myrinet budget fallbacks from these flags.

use std::any::Any;

/// Opaque per-cache scratch state, owned by the query issuer (the fluid
/// engine's `PenaltyCache`) and interpreted only by the model that created
/// it. The blanket impl makes any `Any + Send` type usable as a scratch.
pub trait ModelScratch: Any + Send {
    /// Upcast for downcasting to the concrete scratch type.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for downcasting to the concrete scratch type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any + Send> ModelScratch for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The scratch of models that keep no state between queries (the
/// baselines, and the default trait implementations).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoScratch;

/// How a scratch-backed query was answered — the observability half of the
/// scratch machinery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The penalties were *patched* in O(affected) from the previous
    /// settle (survivors outside the change's reach kept their values
    /// verbatim). `false` means a full recompute answered the query.
    pub patched: bool,
    /// The model rebuilt (or first built, or re-seeded from the `previous`
    /// hint) its scratch state with a full O(n) pass this query.
    pub scratch_rebuilt: bool,
    /// A budget certification refused penalty reuse, or the state-set
    /// enumeration hit its budget (Myrinet only; always `false` for the
    /// closed-form models).
    pub budget_fallback: bool,
}

impl QueryOutcome {
    /// An O(affected) patch over warm scratch state.
    pub fn patch() -> Self {
        QueryOutcome {
            patched: true,
            ..QueryOutcome::default()
        }
    }

    /// A full recompute that also rebuilt the scratch.
    pub fn rebuild() -> Self {
        QueryOutcome {
            scratch_rebuilt: true,
            ..QueryOutcome::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_send_type_is_a_scratch() {
        // Downcasting must go through `&dyn ModelScratch` (as the models
        // do) — calling `as_any` on the `Box` itself would upcast the box,
        // not its contents.
        let mut boxed: Box<dyn ModelScratch> = Box::new(42usize);
        assert_eq!(*(*boxed).as_any().downcast_ref::<usize>().unwrap(), 42);
        *(*boxed).as_any_mut().downcast_mut::<usize>().unwrap() += 1;
        assert_eq!(*(*boxed).as_any().downcast_ref::<usize>().unwrap(), 43);
        assert!((*boxed).as_any().downcast_ref::<NoScratch>().is_none());
    }

    #[test]
    fn outcome_constructors() {
        assert!(QueryOutcome::patch().patched);
        assert!(!QueryOutcome::patch().scratch_rebuilt);
        assert!(QueryOutcome::rebuild().scratch_rebuilt);
        assert!(!QueryOutcome::rebuild().patched);
        assert!(!QueryOutcome::default().budget_fallback);
    }
}
