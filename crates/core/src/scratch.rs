//! Opaque, caller-owned model scratch state.
//!
//! The penalty models themselves are shared across threads (`PenaltyModel:
//! Send + Sync`), so they cannot accumulate per-population state — but the
//! incremental patch machinery wants exactly that: GigE and InfiniBand keep
//! an endpoint index alive across settles, Myrinet its union–find conflict
//! components plus a cached Moon–Moser budget certification. The solution
//! is to move the state *out* of the model and into whoever issues the
//! queries: a [`ModelScratch`] is created once per penalty cache by
//! [`PenaltyModel::new_scratch`](crate::PenaltyModel::new_scratch), handed
//! back on every
//! [`penalties_with_scratch`](crate::PenaltyModel::penalties_with_scratch)
//! call, and downcast by the owning model to its concrete scratch type.
//! A model must treat an unexpected scratch type as empty — correctness
//! can never depend on what the scratch holds, only speed can.
//!
//! Every query also reports a [`QueryOutcome`], which is how patch
//! behaviour becomes observable: the fluid engine's `CacheStats`
//! distinguishes deltas *offered* from patches *performed*, and counts
//! scratch rebuilds and Myrinet budget fallbacks from these flags.

use std::any::Any;

/// Opaque per-cache scratch state, owned by the query issuer (the fluid
/// engine's `PenaltyCache`) and interpreted only by the model that created
/// it. The blanket impl makes any `Any + Send + Clone` type usable as a
/// scratch.
pub trait ModelScratch: Any + Send {
    /// Upcast for downcasting to the concrete scratch type.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for downcasting to the concrete scratch type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// An independent deep copy of the scratch, behaviourally identical to
    /// the original: a forked cache must answer the exact same queries with
    /// the exact same bits. This is what lets a warm `FluidNetwork` be
    /// forked for speculative what-if queries without a rebuild.
    fn fork(&self) -> Box<dyn ModelScratch>;
    /// [`fork`](Self::fork) into an existing scratch, reusing its
    /// allocations where the concrete type allows. Returns `false` when
    /// `target` holds a different concrete type (the caller falls back to
    /// a fresh `fork`); on `true`, `target` is bitwise-behaviourally equal
    /// to what `fork` would have produced.
    fn fork_into(&self, target: &mut dyn ModelScratch) -> bool;
}

impl<T: Any + Send + Clone> ModelScratch for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn fork(&self) -> Box<dyn ModelScratch> {
        Box::new(self.clone())
    }
    fn fork_into(&self, target: &mut dyn ModelScratch) -> bool {
        match target.as_any_mut().downcast_mut::<T>() {
            Some(t) => {
                t.clone_from(self);
                true
            }
            None => false,
        }
    }
}

/// The scratch of models that keep no state between queries (the
/// baselines, and the default trait implementations).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoScratch;

/// Which positions of the *answered* population may hold a penalty that
/// differs from the flow's previously settled value.
///
/// Patching models report exactly the positions they re-evaluated (every
/// arrival plus the survivors the change's reach touched); all other
/// survivors kept their previous penalty **verbatim** — bitwise, not just
/// numerically — so a caller tracking per-flow derived state (the fluid
/// engine's cached finish times) can skip them entirely. `All` is the
/// conservative answer of full recomputes: any position may have moved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum AffectedSet {
    /// Any penalty may differ from its previous value (full recompute,
    /// rebuild, or a model without patch support).
    #[default]
    All,
    /// Only these positions (strictly increasing, indexing the new
    /// population) were re-evaluated; every other survivor's penalty is
    /// bitwise identical to its previous settle.
    Positions(Vec<usize>),
}

impl AffectedSet {
    /// The number of re-evaluated positions, or `None` for [`Self::All`].
    pub fn len(&self) -> Option<usize> {
        match self {
            AffectedSet::All => None,
            AffectedSet::Positions(p) => Some(p.len()),
        }
    }

    /// True when the set is `Positions` and names no position at all.
    pub fn is_empty(&self) -> bool {
        matches!(self, AffectedSet::Positions(p) if p.is_empty())
    }
}

/// How a scratch-backed query was answered — the observability half of the
/// scratch machinery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The penalties were *patched* in O(affected) from the previous
    /// settle (survivors outside the change's reach kept their values
    /// verbatim). `false` means a full recompute answered the query.
    pub patched: bool,
    /// The model rebuilt (or first built, or re-seeded from the `previous`
    /// hint) its scratch state with a full O(n) pass this query.
    pub scratch_rebuilt: bool,
    /// A budget certification refused penalty reuse, or the state-set
    /// enumeration hit its budget (Myrinet only; always `false` for the
    /// closed-form models).
    pub budget_fallback: bool,
    /// The positions whose penalty may differ from the previous settle;
    /// everything else was copied bitwise. Drives the fluid engine's
    /// event-timeline re-anchoring, so a patch touching 3 flows re-pushes
    /// 3 heap entries instead of rescanning the population.
    pub affected: AffectedSet,
}

impl QueryOutcome {
    /// An O(affected) patch over warm scratch state: exactly `affected`
    /// positions (strictly increasing, into the new population) were
    /// re-evaluated.
    pub fn patch(affected: Vec<usize>) -> Self {
        QueryOutcome {
            patched: true,
            affected: AffectedSet::Positions(affected),
            ..QueryOutcome::default()
        }
    }

    /// A full recompute that also rebuilt the scratch.
    pub fn rebuild() -> Self {
        QueryOutcome {
            scratch_rebuilt: true,
            affected: AffectedSet::All,
            ..QueryOutcome::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_send_type_is_a_scratch() {
        // Downcasting must go through `&dyn ModelScratch` (as the models
        // do) — calling `as_any` on the `Box` itself would upcast the box,
        // not its contents.
        let mut boxed: Box<dyn ModelScratch> = Box::new(42usize);
        assert_eq!(*(*boxed).as_any().downcast_ref::<usize>().unwrap(), 42);
        *(*boxed).as_any_mut().downcast_mut::<usize>().unwrap() += 1;
        assert_eq!(*(*boxed).as_any().downcast_ref::<usize>().unwrap(), 43);
        assert!((*boxed).as_any().downcast_ref::<NoScratch>().is_none());
    }

    #[test]
    fn fork_deep_copies_the_scratch() {
        let boxed: Box<dyn ModelScratch> = Box::new(vec![1u64, 2, 3]);
        let mut forked = (*boxed).fork();
        (*forked)
            .as_any_mut()
            .downcast_mut::<Vec<u64>>()
            .unwrap()
            .push(4);
        assert_eq!(
            (*boxed).as_any().downcast_ref::<Vec<u64>>().unwrap().len(),
            3,
            "mutating the fork must not touch the original"
        );
        assert_eq!(
            (*forked).as_any().downcast_ref::<Vec<u64>>().unwrap().len(),
            4
        );
    }

    #[test]
    fn fork_into_reuses_on_type_match_and_refuses_on_mismatch() {
        let src: Box<dyn ModelScratch> = Box::new(vec![7u64, 8, 9]);
        let mut tgt: Box<dyn ModelScratch> = Box::new(vec![0u64; 16]);
        assert!(
            (*src).fork_into(&mut *tgt),
            "same concrete type must clone into"
        );
        assert_eq!(
            (*tgt).as_any().downcast_ref::<Vec<u64>>().unwrap(),
            &vec![7u64, 8, 9]
        );
        let mut wrong: Box<dyn ModelScratch> = Box::new(NoScratch);
        assert!(
            !(*src).fork_into(&mut *wrong),
            "a type mismatch must report failure, not panic"
        );
    }

    #[test]
    fn outcome_constructors() {
        let patch = QueryOutcome::patch(vec![0, 2]);
        assert!(patch.patched);
        assert!(!patch.scratch_rebuilt);
        assert_eq!(patch.affected, AffectedSet::Positions(vec![0, 2]));
        assert!(QueryOutcome::rebuild().scratch_rebuilt);
        assert!(!QueryOutcome::rebuild().patched);
        assert_eq!(QueryOutcome::rebuild().affected, AffectedSet::All);
        assert!(!QueryOutcome::default().budget_fallback);
        assert_eq!(QueryOutcome::default().affected, AffectedSet::All);
    }

    #[test]
    fn affected_set_reports_size_and_emptiness() {
        assert_eq!(AffectedSet::All.len(), None);
        assert!(!AffectedSet::All.is_empty());
        assert_eq!(AffectedSet::Positions(vec![1, 4]).len(), Some(2));
        assert!(AffectedSet::Positions(Vec::new()).is_empty());
    }
}
