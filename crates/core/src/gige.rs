//! The Gigabit Ethernet congestion model (§V.A).
//!
//! Gigabit Ethernet with TCP shares bandwidth *sub-linearly*: one 20 MB
//! stream does not saturate the link (single-stream efficiency `β ≈ 0.75`
//! for the paper's MPICH/e326 cluster), so two concurrent streams suffer a
//! penalty of `2β = 1.5` each rather than 2. On top of this quantitative
//! base, the model corrects for asymmetry inside a conflict: within the
//! communications leaving one node, the one whose *destination* is the most
//! congested (the "strongly slowed" set `Cmo`) is further penalised by
//! `γo`, and the others are slightly relieved; symmetrically for arrivals
//! with `Cmi`/`γi`.
//!
//! For a communication `ci = (vs → vd)` with outgoing degree `Δo` (active
//! comms leaving `vs`) and incoming degree `Δi` (active comms entering
//! `vd`):
//!
//! ```text
//! po = 1                                    if Δo == 1
//!    = Δo·β·(1 + γo·(Δo − |Cmo|))           if ci ∈ Cmo
//!    = Δo·β·(1 − γo / |Cmo|)                otherwise
//! pi = (same with Δi, γi, Cmi)
//! p  = max(po, pi)
//! ```
//!
//! `ci ∈ Cmo` iff `Δi(ci) = max{Δi(cj) | cj leaves vs}`; `|Cmo|` counts the
//! comms achieving that maximum. Defaults are the paper's calibrated
//! parameters (β = 0.75, γo = 0.115, γi = 0.036), which reproduce the
//! predicted column of Fig. 4 — see `calibrate` for re-estimating them
//! from measurements.

use crate::model::{scatter_penalties, split_intra_node, PenaltyModel};
use crate::penalty::Penalty;
use netbw_graph::Communication;

/// The paper's quantitative Gigabit Ethernet model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GigabitEthernetModel {
    /// Single-stream efficiency: fraction of the link one TCP stream
    /// achieves (`β`). The paper measures 0.75 on the IBM e326 cluster.
    pub beta: f64,
    /// Emission-side asymmetry correction (`γo`), estimated 0.115.
    pub gamma_o: f64,
    /// Reception-side asymmetry correction (`γi`), estimated 0.036.
    pub gamma_i: f64,
}

impl Default for GigabitEthernetModel {
    fn default() -> Self {
        GigabitEthernetModel {
            beta: 0.75,
            gamma_o: 0.115,
            gamma_i: 0.036,
        }
    }
}

impl GigabitEthernetModel {
    /// Builds a model with explicit parameters.
    ///
    /// # Panics
    /// If `beta` is not in `(0, 1]` or a `γ` is not in `[0, 1)`.
    pub fn new(beta: f64, gamma_o: f64, gamma_i: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "beta must be in (0,1], got {beta}"
        );
        assert!(
            (0.0..1.0).contains(&gamma_o),
            "gamma_o must be in [0,1), got {gamma_o}"
        );
        assert!(
            (0.0..1.0).contains(&gamma_i),
            "gamma_i must be in [0,1), got {gamma_i}"
        );
        GigabitEthernetModel {
            beta,
            gamma_o,
            gamma_i,
        }
    }

    /// The emission-side penalty `po` of communication `i` in `comms`.
    pub fn po(&self, comms: &[Communication], i: usize) -> f64 {
        let ci = &comms[i];
        let delta_o = comms.iter().filter(|c| c.src == ci.src).count();
        if delta_o == 1 {
            return 1.0;
        }
        // Δi of each comm leaving vs; the max defines Cmo.
        let din = |c: &Communication| comms.iter().filter(|o| o.dst == c.dst).count();
        let co: Vec<&Communication> = comms.iter().filter(|c| c.src == ci.src).collect();
        let max_di = co.iter().map(|c| din(c)).max().unwrap_or(1);
        let card_cmo = co.iter().filter(|c| din(c) == max_di).count();
        let in_cmo = din(ci) == max_di;
        let base = delta_o as f64 * self.beta;
        if in_cmo {
            base * (1.0 + self.gamma_o * (delta_o as f64 - card_cmo as f64))
        } else {
            base * (1.0 - self.gamma_o / card_cmo as f64)
        }
    }

    /// The reception-side penalty `pi` of communication `i` in `comms`.
    pub fn pi(&self, comms: &[Communication], i: usize) -> f64 {
        let ci = &comms[i];
        let delta_i = comms.iter().filter(|c| c.dst == ci.dst).count();
        if delta_i == 1 {
            return 1.0;
        }
        let dout = |c: &Communication| comms.iter().filter(|o| o.src == c.src).count();
        let cin: Vec<&Communication> = comms.iter().filter(|c| c.dst == ci.dst).collect();
        let max_do = cin.iter().map(|c| dout(c)).max().unwrap_or(1);
        let card_cmi = cin.iter().filter(|c| dout(c) == max_do).count();
        let in_cmi = dout(ci) == max_do;
        let base = delta_i as f64 * self.beta;
        if in_cmi {
            base * (1.0 + self.gamma_i * (delta_i as f64 - card_cmi as f64))
        } else {
            base * (1.0 - self.gamma_i / card_cmi as f64)
        }
    }
}

impl PenaltyModel for GigabitEthernetModel {
    fn name(&self) -> &'static str {
        "gige"
    }

    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        let (indices, network) = split_intra_node(comms);
        let net: Vec<Penalty> = (0..network.len())
            .map(|i| Penalty::new(self.po(&network, i).max(self.pi(&network, i))))
            .collect();
        scatter_penalties(comms.len(), &indices, &net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;
    use netbw_graph::units::MB;

    const TOL: f64 = 1e-9;

    fn default_penalties(g: &netbw_graph::CommGraph) -> Vec<f64> {
        GigabitEthernetModel::default()
            .penalties(g.comms())
            .iter()
            .map(|p| p.value())
            .collect()
    }

    #[test]
    fn single_comm_is_reference() {
        assert_eq!(default_penalties(&schemes::single()), vec![1.0]);
    }

    #[test]
    fn outgoing_ladder_matches_fig2() {
        // Fig. 2: 2 comms → 1.5 each; 3 comms → 2.25 each (β = 0.75).
        let p2 = default_penalties(&schemes::outgoing_ladder(2));
        assert!(p2.iter().all(|&p| (p - 1.5).abs() < TOL), "{p2:?}");
        let p3 = default_penalties(&schemes::outgoing_ladder(3));
        assert!(p3.iter().all(|&p| (p - 2.25).abs() < TOL), "{p3:?}");
    }

    #[test]
    fn incoming_ladder_is_symmetric() {
        let p3 = default_penalties(&schemes::incoming_ladder(3));
        assert!(p3.iter().all(|&p| (p - 2.25).abs() < TOL), "{p3:?}");
    }

    #[test]
    fn fig4_predictions_match_paper() {
        // Predicted column of Fig. 4 in penalty units (tref = 0.0477 s):
        // a,b = 1.99125, c = 2.412, d = 1.4465, e,f = 2.169.
        let g = schemes::fig4(4 * MB);
        let m = GigabitEthernetModel::default();
        let comms = g.comms();
        let p: Vec<f64> = m.penalties(comms).iter().map(|p| p.value()).collect();

        // a: po = 3β(1−γo) (a ∉ Cmo, |Cmo| = 1 = {c}); pi = 1.
        let expect_a = 3.0 * 0.75 * (1.0 - 0.115);
        assert!((p[0] - expect_a).abs() < TOL, "a: {} vs {}", p[0], expect_a);
        // b: same po; pi = 2β(1+γi(2−1)) = 1.554 < po.
        assert!((p[1] - expect_a).abs() < TOL, "b");
        // c ∈ Cmo and ∈ Cmi: pi = 3β(1+γi·2) = 2.412 > po = 3β(1+2γo)? No:
        // po(c) = 2.25·1.23 = 2.7675 — wait, c IS in Cmo (Δi(c)=3 is max).
        // p(c) = max(2.7675, 2.412) = 2.7675? The paper's table says 0.113
        // = 2.369·tref. Actual check below on po/pi pieces:
        let po_c = m.po(comms, 2);
        let pi_c = m.pi(comms, 2);
        assert!((pi_c - 3.0 * 0.75 * (1.0 + 0.036 * 2.0)).abs() < TOL);
        assert!((po_c - 3.0 * 0.75 * (1.0 + 0.115 * 2.0)).abs() < TOL);
        // d: po = 2β(1−γo), pi = 2β(1−γi) → max = 2β(1−γi) = 1.446.
        let expect_d = 2.0 * 0.75 * (1.0 - 0.036);
        assert!((p[3] - expect_d).abs() < TOL, "d: {}", p[3]);
        // e: po = 2β(1+γo), pi = 3β(1−γi) = 2.169 → max = 2.169.
        let expect_e = 3.0 * 0.75 * (1.0 - 0.036);
        assert!((p[4] - expect_e).abs() < TOL, "e: {}", p[4]);
        // f: pi = 3β(1−γi) (f ∉ Cmi), po = 1 (Δo(2) = 1).
        assert!((p[5] - expect_e).abs() < TOL, "f: {}", p[5]);
    }

    #[test]
    fn fig4_times_match_paper_within_rounding() {
        // Multiply penalties by tref = 0.0477 s and compare to the printed
        // predicted column: a,b = 0.095, d = 0.069, e,f = 0.103.
        let g = schemes::fig4(4 * MB);
        let p = default_penalties(&g);
        let tref = 0.0477;
        let predicted: Vec<f64> = p.iter().map(|p| p * tref).collect();
        let paper = [0.095, 0.095, f64::NAN, 0.069, 0.103, 0.103];
        for (i, (&got, &want)) in predicted.iter().zip(paper.iter()).enumerate() {
            if want.is_nan() {
                continue; // c discussed in DESIGN.md: paper prints max-form 0.113
            }
            assert!(
                (got - want).abs() < 0.0015,
                "comm {i}: predicted {got:.4}, paper {want:.4}"
            );
        }
    }

    #[test]
    fn duplex_conflicts_are_invisible_to_this_model() {
        // Fig. 2 scheme 4: d(4→0) does not change a,b,c under the model
        // (the model only sees same-direction conflicts).
        let p3 = default_penalties(&schemes::fig2_scheme(3));
        let p4 = default_penalties(&schemes::fig2_scheme(4));
        assert_eq!(&p3[..3], &p4[..3]);
        assert_eq!(p4[3], 1.0); // d alone on its direction
    }

    #[test]
    fn penalties_floor_at_one() {
        // β small enough that Δ·β(1−γ) < 1: the Penalty type clamps.
        let m = GigabitEthernetModel::new(0.4, 0.1, 0.1);
        let g = schemes::outgoing_ladder(2);
        for p in m.penalties(g.comms()) {
            assert!(p.value() >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1]")]
    fn rejects_bad_beta() {
        GigabitEthernetModel::new(0.0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "gamma_o must be in [0,1)")]
    fn rejects_bad_gamma() {
        GigabitEthernetModel::new(0.75, 1.0, 0.1);
    }

    #[test]
    fn intra_node_comms_are_transparent() {
        let m = GigabitEthernetModel::default();
        let mut comms = schemes::outgoing_ladder(3).comms().to_vec();
        comms.push(Communication::new(0u32, 0u32, 1));
        let p = m.penalties(&comms);
        assert_eq!(p[3].value(), 1.0);
        assert!((p[0].value() - 2.25).abs() < TOL);
    }

    #[test]
    fn po_pi_maximum_selection() {
        // incast of 2 + outcast of 2 sharing a comm: p = max(po, pi).
        let mut g = netbw_graph::CommGraph::new();
        g.add("x", 0u32, 1u32, MB); // shares src with y, dst with z
        g.add("y", 0u32, 2u32, MB);
        g.add("z", 3u32, 1u32, MB);
        let m = GigabitEthernetModel::default();
        let comms = g.comms();
        let po = m.po(comms, 0);
        let pi = m.pi(comms, 0);
        let p = m.penalties(comms)[0].value();
        assert!((p - po.max(pi)).abs() < TOL);
    }
}
