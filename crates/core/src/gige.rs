//! The Gigabit Ethernet congestion model (§V.A).
//!
//! Gigabit Ethernet with TCP shares bandwidth *sub-linearly*: one 20 MB
//! stream does not saturate the link (single-stream efficiency `β ≈ 0.75`
//! for the paper's MPICH/e326 cluster), so two concurrent streams suffer a
//! penalty of `2β = 1.5` each rather than 2. On top of this quantitative
//! base, the model corrects for asymmetry inside a conflict: within the
//! communications leaving one node, the one whose *destination* is the most
//! congested (the "strongly slowed" set `Cmo`) is further penalised by
//! `γo`, and the others are slightly relieved; symmetrically for arrivals
//! with `Cmi`/`γi`.
//!
//! For a communication `ci = (vs → vd)` with outgoing degree `Δo` (active
//! comms leaving `vs`) and incoming degree `Δi` (active comms entering
//! `vd`):
//!
//! ```text
//! po = 1                                    if Δo == 1
//!    = Δo·β·(1 + γo·(Δo − |Cmo|))           if ci ∈ Cmo
//!    = Δo·β·(1 − γo / |Cmo|)                otherwise
//! pi = (same with Δi, γi, Cmi)
//! p  = max(po, pi)
//! ```
//!
//! `ci ∈ Cmo` iff `Δi(ci) = max{Δi(cj) | cj leaves vs}`; `|Cmo|` counts the
//! comms achieving that maximum. Defaults are the paper's calibrated
//! parameters (β = 0.75, γo = 0.115, γi = 0.036), which reproduce the
//! predicted column of Fig. 4 — see `calibrate` for re-estimating them
//! from measurements.

use crate::incremental::{endpoint_scratch_query, EndpointIndex, EndpointScratch};
use crate::model::{scatter_penalties, split_intra_node, PenaltyModel, PopulationDelta};
use crate::penalty::Penalty;
use crate::scratch::{ModelScratch, QueryOutcome};
use netbw_graph::Communication;

/// The paper's quantitative Gigabit Ethernet model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GigabitEthernetModel {
    /// Single-stream efficiency: fraction of the link one TCP stream
    /// achieves (`β`). The paper measures 0.75 on the IBM e326 cluster.
    pub beta: f64,
    /// Emission-side asymmetry correction (`γo`), estimated 0.115.
    pub gamma_o: f64,
    /// Reception-side asymmetry correction (`γi`), estimated 0.036.
    pub gamma_i: f64,
}

impl Default for GigabitEthernetModel {
    fn default() -> Self {
        GigabitEthernetModel {
            beta: 0.75,
            gamma_o: 0.115,
            gamma_i: 0.036,
        }
    }
}

impl GigabitEthernetModel {
    /// Builds a model with explicit parameters.
    ///
    /// # Panics
    /// If `beta` is not in `(0, 1]` or a `γ` is not in `[0, 1)`.
    pub fn new(beta: f64, gamma_o: f64, gamma_i: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "beta must be in (0,1], got {beta}"
        );
        assert!(
            (0.0..1.0).contains(&gamma_o),
            "gamma_o must be in [0,1), got {gamma_o}"
        );
        assert!(
            (0.0..1.0).contains(&gamma_i),
            "gamma_i must be in [0,1), got {gamma_i}"
        );
        GigabitEthernetModel {
            beta,
            gamma_o,
            gamma_i,
        }
    }

    /// The emission-side penalty `po` of communication `i` in `comms`.
    /// `comms` must be the network (inter-node) subset of a population;
    /// intra-node entries never contribute to NIC degrees.
    pub fn po(&self, comms: &[Communication], i: usize) -> f64 {
        self.po_indexed(&comms[i], &EndpointIndex::build(comms))
    }

    /// The reception-side penalty `pi` of communication `i` in `comms`
    /// (network subset, as for [`Self::po`]).
    pub fn pi(&self, comms: &[Communication], i: usize) -> f64 {
        self.pi_indexed(&comms[i], &EndpointIndex::build(comms))
    }

    /// `po` over an endpoint index — the O(group) hot path shared by the
    /// batch evaluation and the incremental patch (and by the InfiniBand
    /// extension, which reuses the closed form with `γ = 0`). The index
    /// hands out counterpart multisets, so no slice positions are needed —
    /// which is what lets the scratch keep one index alive across settles.
    pub(crate) fn po_indexed(&self, ci: &Communication, index: &EndpointIndex) -> f64 {
        let group = index.outgoing(ci.src);
        let delta_o = group.len();
        if delta_o == 1 {
            return 1.0;
        }
        // Δi of each comm leaving vs; the max defines Cmo.
        let max_di = group.iter().map(|&d| index.in_degree(d)).max().unwrap_or(1);
        let card_cmo = group
            .iter()
            .filter(|&&d| index.in_degree(d) == max_di)
            .count();
        let in_cmo = index.in_degree(ci.dst) == max_di;
        let base = delta_o as f64 * self.beta;
        if in_cmo {
            base * (1.0 + self.gamma_o * (delta_o as f64 - card_cmo as f64))
        } else {
            base * (1.0 - self.gamma_o / card_cmo as f64)
        }
    }

    /// `pi` over an endpoint index; see [`Self::po_indexed`].
    pub(crate) fn pi_indexed(&self, ci: &Communication, index: &EndpointIndex) -> f64 {
        let group = index.incoming(ci.dst);
        let delta_i = group.len();
        if delta_i == 1 {
            return 1.0;
        }
        let max_do = group
            .iter()
            .map(|&s| index.out_degree(s))
            .max()
            .unwrap_or(1);
        let card_cmi = group
            .iter()
            .filter(|&&s| index.out_degree(s) == max_do)
            .count();
        let in_cmi = index.out_degree(ci.src) == max_do;
        let base = delta_i as f64 * self.beta;
        if in_cmi {
            base * (1.0 + self.gamma_i * (delta_i as f64 - card_cmi as f64))
        } else {
            base * (1.0 - self.gamma_i / card_cmi as f64)
        }
    }

    /// `max(po, pi)` of one network communication via the index.
    fn penalty_indexed(&self, c: &Communication, index: &EndpointIndex) -> Penalty {
        Penalty::new(self.po_indexed(c, index).max(self.pi_indexed(c, index)))
    }
}

impl PenaltyModel for GigabitEthernetModel {
    fn name(&self) -> &'static str {
        "gige"
    }

    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        let (indices, network) = split_intra_node(comms);
        let index = EndpointIndex::build(&network);
        let net: Vec<Penalty> = network
            .iter()
            .map(|c| self.penalty_indexed(c, &index))
            .collect();
        scatter_penalties(comms.len(), &indices, &net)
    }

    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        Box::new(EndpointScratch::default())
    }

    /// O(affected) patch over the per-cache [`EndpointScratch`]: the
    /// endpoint index survives between settles, and only communications
    /// whose source group or destination group was reached by the change
    /// (the two-hop endpoint neighbourhood — see
    /// [`crate::incremental::affected_endpoints`]) are re-evaluated; every
    /// other survivor keeps its previous penalty bit-for-bit.
    fn penalties_with_scratch(
        &self,
        comms: &[Communication],
        delta: &PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
        scratch: &mut dyn ModelScratch,
    ) -> (Vec<Penalty>, QueryOutcome) {
        endpoint_scratch_query(
            comms,
            delta,
            previous,
            scratch,
            |aff, c| aff.touches(c),
            |c, index| self.penalty_indexed(c, index),
            || self.penalties(comms),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbw_graph::schemes;
    use netbw_graph::units::MB;

    const TOL: f64 = 1e-9;

    fn default_penalties(g: &netbw_graph::CommGraph) -> Vec<f64> {
        GigabitEthernetModel::default()
            .penalties(g.comms())
            .iter()
            .map(|p| p.value())
            .collect()
    }

    #[test]
    fn single_comm_is_reference() {
        assert_eq!(default_penalties(&schemes::single()), vec![1.0]);
    }

    #[test]
    fn outgoing_ladder_matches_fig2() {
        // Fig. 2: 2 comms → 1.5 each; 3 comms → 2.25 each (β = 0.75).
        let p2 = default_penalties(&schemes::outgoing_ladder(2));
        assert!(p2.iter().all(|&p| (p - 1.5).abs() < TOL), "{p2:?}");
        let p3 = default_penalties(&schemes::outgoing_ladder(3));
        assert!(p3.iter().all(|&p| (p - 2.25).abs() < TOL), "{p3:?}");
    }

    #[test]
    fn incoming_ladder_is_symmetric() {
        let p3 = default_penalties(&schemes::incoming_ladder(3));
        assert!(p3.iter().all(|&p| (p - 2.25).abs() < TOL), "{p3:?}");
    }

    #[test]
    fn fig4_predictions_match_paper() {
        // Predicted column of Fig. 4 in penalty units (tref = 0.0477 s):
        // a,b = 1.99125, c = 2.412, d = 1.4465, e,f = 2.169.
        let g = schemes::fig4(4 * MB);
        let m = GigabitEthernetModel::default();
        let comms = g.comms();
        let p: Vec<f64> = m.penalties(comms).iter().map(|p| p.value()).collect();

        // a: po = 3β(1−γo) (a ∉ Cmo, |Cmo| = 1 = {c}); pi = 1.
        let expect_a = 3.0 * 0.75 * (1.0 - 0.115);
        assert!((p[0] - expect_a).abs() < TOL, "a: {} vs {}", p[0], expect_a);
        // b: same po; pi = 2β(1+γi(2−1)) = 1.554 < po.
        assert!((p[1] - expect_a).abs() < TOL, "b");
        // c ∈ Cmo and ∈ Cmi: pi = 3β(1+γi·2) = 2.412 > po = 3β(1+2γo)? No:
        // po(c) = 2.25·1.23 = 2.7675 — wait, c IS in Cmo (Δi(c)=3 is max).
        // p(c) = max(2.7675, 2.412) = 2.7675? The paper's table says 0.113
        // = 2.369·tref. Actual check below on po/pi pieces:
        let po_c = m.po(comms, 2);
        let pi_c = m.pi(comms, 2);
        assert!((pi_c - 3.0 * 0.75 * (1.0 + 0.036 * 2.0)).abs() < TOL);
        assert!((po_c - 3.0 * 0.75 * (1.0 + 0.115 * 2.0)).abs() < TOL);
        // d: po = 2β(1−γo), pi = 2β(1−γi) → max = 2β(1−γi) = 1.446.
        let expect_d = 2.0 * 0.75 * (1.0 - 0.036);
        assert!((p[3] - expect_d).abs() < TOL, "d: {}", p[3]);
        // e: po = 2β(1+γo), pi = 3β(1−γi) = 2.169 → max = 2.169.
        let expect_e = 3.0 * 0.75 * (1.0 - 0.036);
        assert!((p[4] - expect_e).abs() < TOL, "e: {}", p[4]);
        // f: pi = 3β(1−γi) (f ∉ Cmi), po = 1 (Δo(2) = 1).
        assert!((p[5] - expect_e).abs() < TOL, "f: {}", p[5]);
    }

    #[test]
    fn fig4_times_match_paper_within_rounding() {
        // Multiply penalties by tref = 0.0477 s and compare to the printed
        // predicted column: a,b = 0.095, d = 0.069, e,f = 0.103.
        let g = schemes::fig4(4 * MB);
        let p = default_penalties(&g);
        let tref = 0.0477;
        let predicted: Vec<f64> = p.iter().map(|p| p * tref).collect();
        let paper = [0.095, 0.095, f64::NAN, 0.069, 0.103, 0.103];
        for (i, (&got, &want)) in predicted.iter().zip(paper.iter()).enumerate() {
            if want.is_nan() {
                continue; // c: the paper prints the max-form 0.113; see the comment above
            }
            assert!(
                (got - want).abs() < 0.0015,
                "comm {i}: predicted {got:.4}, paper {want:.4}"
            );
        }
    }

    #[test]
    fn duplex_conflicts_are_invisible_to_this_model() {
        // Fig. 2 scheme 4: d(4→0) does not change a,b,c under the model
        // (the model only sees same-direction conflicts).
        let p3 = default_penalties(&schemes::fig2_scheme(3));
        let p4 = default_penalties(&schemes::fig2_scheme(4));
        assert_eq!(&p3[..3], &p4[..3]);
        assert_eq!(p4[3], 1.0); // d alone on its direction
    }

    #[test]
    fn penalties_floor_at_one() {
        // β small enough that Δ·β(1−γ) < 1: the Penalty type clamps.
        let m = GigabitEthernetModel::new(0.4, 0.1, 0.1);
        let g = schemes::outgoing_ladder(2);
        for p in m.penalties(g.comms()) {
            assert!(p.value() >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1]")]
    fn rejects_bad_beta() {
        GigabitEthernetModel::new(0.0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "gamma_o must be in [0,1)")]
    fn rejects_bad_gamma() {
        GigabitEthernetModel::new(0.75, 1.0, 0.1);
    }

    #[test]
    fn intra_node_comms_are_transparent() {
        let m = GigabitEthernetModel::default();
        let mut comms = schemes::outgoing_ladder(3).comms().to_vec();
        comms.push(Communication::new(0u32, 0u32, 1));
        let p = m.penalties(&comms);
        assert_eq!(p[3].value(), 1.0);
        assert!((p[0].value() - 2.25).abs() < TOL);
    }

    #[test]
    fn patch_reuses_unaffected_penalties_verbatim() {
        // Two conflict islands; an arrival on island A must not re-evaluate
        // island B. Poison B's previous penalties: if the patch reused them
        // (as it must), the poison shows up verbatim in the output.
        let model = GigabitEthernetModel::default();
        let prev = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(5u32, 6u32, 10),
            Communication::new(5u32, 7u32, 10),
        ];
        let mut prev_pens = model.penalties(&prev);
        prev_pens[2] = Penalty::new(9.0);
        prev_pens[3] = Penalty::new(9.5);
        let mut comms = prev.clone();
        comms.push(Communication::new(0u32, 3u32, 10));
        let patched = model.penalties_after_change(
            &comms,
            crate::model::PopulationDelta::Arrived(vec![4]),
            Some((&prev, &prev_pens)),
        );
        assert_eq!(
            patched[2].value(),
            9.0,
            "island B must be reused, not recomputed"
        );
        assert_eq!(patched[3].value(), 9.5);
        // island A (and the arrival) are recomputed exactly
        let full = model.penalties(&comms);
        assert_eq!(patched[0], full[0]);
        assert_eq!(patched[1], full[1]);
        assert_eq!(patched[4], full[4]);
    }

    #[test]
    fn po_pi_maximum_selection() {
        // incast of 2 + outcast of 2 sharing a comm: p = max(po, pi).
        let mut g = netbw_graph::CommGraph::new();
        g.add("x", 0u32, 1u32, MB); // shares src with y, dst with z
        g.add("y", 0u32, 2u32, MB);
        g.add("z", 3u32, 1u32, MB);
        let m = GigabitEthernetModel::default();
        let comms = g.comms();
        let po = m.po(comms, 0);
        let pi = m.pi(comms, 0);
        let p = m.penalties(comms)[0].value();
        assert!((p - po.max(pi)).abs() < TOL);
    }
}
