//! The [`PenaltyModel`] abstraction shared by all predictive models.

use crate::penalty::Penalty;
use netbw_graph::Communication;

/// An instantaneous bandwidth-sharing model.
///
/// Given the set of communications in flight *right now*, a model assigns
/// each a [`Penalty`] — the factor by which its transfer rate is reduced
/// relative to running alone. The fluid solver (`netbw-fluid`) integrates
/// these instantaneous penalties over time, re-querying the model whenever
/// a communication completes or a new one starts.
///
/// # Contract
///
/// * The returned vector is aligned with (and as long as) the input slice.
/// * Intra-node communications (`src == dst`) never cross the NIC; models
///   must give them penalty 1 and exclude them from degree counts. The
///   helper [`split_intra_node`] implements this policy.
/// * Penalties are `>= 1` and finite ([`Penalty`] enforces this).
/// * A single inter-node communication with no conflict has penalty 1
///   (`Tref` is *defined* as its time).
pub trait PenaltyModel: Send + Sync {
    /// A short stable name for reports and tables.
    fn name(&self) -> &'static str;

    /// Penalties for the given set of concurrent communications.
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty>;

    /// Penalties for a population that evolved from the previously queried
    /// one as described by `delta` — the batch-delta entry point of the
    /// incremental fluid engine.
    ///
    /// `previous` carries the last-queried population and its penalties
    /// (`None` on the first query), so models stay stateless: everything
    /// needed to patch instead of recompute arrives with the call. The
    /// default implementation recomputes from scratch; models whose
    /// penalties are cheap to patch override this to update only the
    /// communications the change can affect — the GigE closed form touches
    /// one source and one destination group per changed flow, the Myrinet
    /// model re-enumerates only the conflict components the changed flows
    /// belong to. See [`crate::incremental`] for the shared alignment and
    /// affected-set machinery.
    ///
    /// The contract is identical to [`Self::penalties`]: the result must
    /// equal `self.penalties(comms)` bit-for-bit. Implementations must
    /// treat `delta`/`previous` as *hints*: when they are inconsistent with
    /// `comms` (see the invariants on [`PopulationDelta`]) the model falls
    /// back to a full recompute rather than producing wrong penalties.
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        let _ = (delta, previous);
        self.penalties(comms)
    }

    /// Penalty of one communication inside a population. Convenience used
    /// by tests and spot checks; index must be in range.
    fn penalty_of(&self, comms: &[Communication], index: usize) -> Penalty {
        self.penalties(comms)[index]
    }
}

/// How an in-flight population evolved since a model was last queried.
///
/// Produced by the incremental fluid engine (`netbw-fluid`, which derives
/// it from stable slab keys) and consumed by
/// [`PenaltyModel::penalties_after_change`] specializations. The positional
/// variants let a model pair every surviving communication with its
/// previous penalty in one linear merge scan, then recompute only the
/// communications a change can actually affect.
///
/// # Invariants
///
/// * [`PopulationDelta::Arrived`] holds **strictly increasing** positions
///   into the *new* population slice; every entry not at one of those
///   positions appeared in the previous population, in the same relative
///   order.
/// * [`PopulationDelta::Departed`] holds **strictly increasing** positions
///   into the *previous* population slice; the survivors make up the new
///   slice exactly, in the same relative order.
///
/// Consumers must not trust these invariants blindly:
/// [`crate::incremental::align`] verifies them (including per-entry
/// equality of the paired communications) and returns `None` on any
/// inconsistency, which models answer with a full recompute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PopulationDelta {
    /// Positions (in the new population) of freshly arrived communications
    /// — new transfers or opened latency gates. May be empty: an empty
    /// arrival delta asserts the population is unchanged.
    Arrived(Vec<usize>),
    /// Positions (in the previous population) of departed communications
    /// (completions).
    Departed(Vec<usize>),
    /// First query, or an arbitrary mix of arrivals and departures.
    Rebuilt,
}

impl PopulationDelta {
    /// True when the delta asserts the population did not change at all.
    pub fn is_empty(&self) -> bool {
        match self {
            PopulationDelta::Arrived(idx) | PopulationDelta::Departed(idx) => idx.is_empty(),
            PopulationDelta::Rebuilt => false,
        }
    }
}

impl<M: PenaltyModel + ?Sized> PenaltyModel for &M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        (**self).penalties(comms)
    }
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        (**self).penalties_after_change(comms, delta, previous)
    }
}

impl<M: PenaltyModel + ?Sized> PenaltyModel for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn penalties(&self, comms: &[Communication]) -> Vec<Penalty> {
        (**self).penalties(comms)
    }
    fn penalties_after_change(
        &self,
        comms: &[Communication],
        delta: PopulationDelta,
        previous: Option<(&[Communication], &[Penalty])>,
    ) -> Vec<Penalty> {
        (**self).penalties_after_change(comms, delta, previous)
    }
}

/// Splits a communication population into network communications (returned
/// with their original indices) and intra-node ones. Models compute on the
/// former; the latter get [`Penalty::ONE`].
pub fn split_intra_node(comms: &[Communication]) -> (Vec<usize>, Vec<Communication>) {
    let mut indices = Vec::with_capacity(comms.len());
    let mut network = Vec::with_capacity(comms.len());
    for (i, c) in comms.iter().enumerate() {
        if !c.is_intra_node() {
            indices.push(i);
            network.push(*c);
        }
    }
    (indices, network)
}

/// Scatters penalties computed on the network subset back into a
/// full-length vector, filling intra-node slots with penalty 1.
pub fn scatter_penalties(
    total_len: usize,
    indices: &[usize],
    network_penalties: &[Penalty],
) -> Vec<Penalty> {
    debug_assert_eq!(indices.len(), network_penalties.len());
    let mut out = vec![Penalty::ONE; total_len];
    for (&i, &p) in indices.iter().zip(network_penalties) {
        out[i] = p;
    }
    out
}

/// Identifies a model family; useful for command-line harnesses and
/// experiment configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's Gigabit Ethernet model (§V.A).
    GigabitEthernet,
    /// The paper's Myrinet 2000 state-set model (§V.B).
    Myrinet,
    /// Our InfiniBand extension model (paper future work).
    Infiniband,
    /// Contention-blind LogP/LogGP-style baseline.
    Linear,
    /// Kim & Lee max-conflict-multiplier baseline.
    MaxConflict,
}

impl ModelKind {
    /// All kinds, in presentation order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::GigabitEthernet,
        ModelKind::Myrinet,
        ModelKind::Infiniband,
        ModelKind::Linear,
        ModelKind::MaxConflict,
    ];

    /// Builds the model with its default (paper-calibrated) parameters.
    pub fn build(self) -> Box<dyn PenaltyModel> {
        match self {
            ModelKind::GigabitEthernet => Box::new(crate::GigabitEthernetModel::default()),
            ModelKind::Myrinet => Box::new(crate::MyrinetModel::default()),
            ModelKind::Infiniband => Box::new(crate::InfinibandModel::default()),
            ModelKind::Linear => Box::new(crate::baseline::LinearModel),
            ModelKind::MaxConflict => Box::new(crate::baseline::MaxConflictModel),
        }
    }

    /// Parses a user-facing name (`gige`, `myrinet`, `infiniband`,
    /// `linear`, `maxconflict`).
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "gige" | "gigabit" | "ethernet" | "gigabit-ethernet" => {
                Some(ModelKind::GigabitEthernet)
            }
            "myrinet" | "mx" => Some(ModelKind::Myrinet),
            "infiniband" | "ib" => Some(ModelKind::Infiniband),
            "linear" | "logp" | "loggp" => Some(ModelKind::Linear),
            "maxconflict" | "max-conflict" | "kimlee" | "kim-lee" => Some(ModelKind::MaxConflict),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::GigabitEthernet => "gige",
            ModelKind::Myrinet => "myrinet",
            ModelKind::Infiniband => "infiniband",
            ModelKind::Linear => "linear",
            ModelKind::MaxConflict => "maxconflict",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_scatter_round_trip() {
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(2u32, 2u32, 10), // intra-node
            Communication::new(0u32, 3u32, 10),
        ];
        let (idx, net) = split_intra_node(&comms);
        assert_eq!(idx, vec![0, 2]);
        assert_eq!(net.len(), 2);
        let out = scatter_penalties(3, &idx, &[Penalty::new(2.0), Penalty::new(3.0)]);
        assert_eq!(out[0].value(), 2.0);
        assert_eq!(out[1].value(), 1.0);
        assert_eq!(out[2].value(), 3.0);
    }

    #[test]
    fn model_kind_parse_and_display() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(ModelKind::parse("GigE"), Some(ModelKind::GigabitEthernet));
        assert_eq!(ModelKind::parse("kim-lee"), Some(ModelKind::MaxConflict));
        assert_eq!(ModelKind::parse("token-ring"), None);
    }

    #[test]
    fn build_produces_named_models() {
        for kind in ModelKind::ALL {
            let m = kind.build();
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn delta_is_empty_only_for_empty_positional_variants() {
        use PopulationDelta::*;
        assert!(Arrived(vec![]).is_empty());
        assert!(Departed(vec![]).is_empty());
        assert!(!Arrived(vec![0]).is_empty());
        assert!(!Rebuilt.is_empty());
    }

    #[test]
    fn penalties_after_change_matches_penalties_even_on_garbage_hints() {
        // The delta/previous pair below is deliberately inconsistent with
        // `comms` (wrong lengths, wrong pairings): every model must detect
        // that and fall back to a full recompute.
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(3u32, 2u32, 10),
        ];
        let prior = [Communication::new(0u32, 1u32, 10)];
        for kind in ModelKind::ALL {
            let model = kind.build();
            let full = model.penalties(&comms);
            let prior_penalties = model.penalties(&prior);
            for previous in [None, Some((prior.as_slice(), prior_penalties.as_slice()))] {
                for delta in [
                    PopulationDelta::Arrived(vec![1]),
                    PopulationDelta::Departed(vec![0, 2]),
                    PopulationDelta::Rebuilt,
                ] {
                    assert_eq!(
                        model.penalties_after_change(&comms, delta, previous),
                        full,
                        "{kind}"
                    );
                }
            }
        }
    }

    #[test]
    fn penalties_after_change_honours_consistent_arrival_hints() {
        // comms[1] arrived; comms[0] and comms[2] survive from `prior` in
        // order. Patched answers must equal the full evaluation.
        let comms = vec![
            Communication::new(0u32, 1u32, 10),
            Communication::new(0u32, 2u32, 10),
            Communication::new(3u32, 2u32, 10),
        ];
        let prior = [comms[0], comms[2]];
        for kind in ModelKind::ALL {
            let model = kind.build();
            let full = model.penalties(&comms);
            let prior_penalties = model.penalties(&prior);
            let got = model.penalties_after_change(
                &comms,
                PopulationDelta::Arrived(vec![1]),
                Some((prior.as_slice(), prior_penalties.as_slice())),
            );
            assert_eq!(got, full, "{kind}");
        }
    }
}
